"""Bulletin board (§4(i)) and billing (§4(iii))."""

import pytest

from repro.actions.status import Outcome
from repro.apps.billing import MeteredService
from repro.apps.bulletin import BulletinBoard, BulletinService
from repro.errors import ObjectNotFound
from repro.stdobjects import Account
from repro.structures import CompensationScope


# -- bulletin board ------------------------------------------------------------

def test_post_and_read(runtime):
    board = BulletinBoard(runtime, "dev")
    service = BulletinService(runtime, board)
    post_id = service.post("ann", "meeting at noon")
    posts = service.read_all()
    assert posts == [{"id": post_id, "author": "ann", "text": "meeting at noon"}]


def test_post_survives_invoker_abort(runtime):
    board = BulletinBoard(runtime, "dev")
    service = BulletinService(runtime, board)
    with pytest.raises(RuntimeError):
        with runtime.top_level(name="app"):
            service.post("ann", "important notice")
            raise RuntimeError("app aborts")
    assert len(service.read_all()) == 1


def test_post_with_compensation_retracted_on_abort(runtime):
    board = BulletinBoard(runtime, "dev")
    service = BulletinService(runtime, board)
    with pytest.raises(RuntimeError):
        with runtime.top_level(name="app") as app:
            comp = CompensationScope(runtime, app)
            service.post("ann", "tentative", compensation=comp)
            raise RuntimeError("app aborts")
    assert service.read_all() == []


def test_compensated_post_stays_on_commit(runtime):
    board = BulletinBoard(runtime, "dev")
    service = BulletinService(runtime, board)
    with runtime.top_level(name="app") as app:
        comp = CompensationScope(runtime, app)
        service.post("ann", "final", compensation=comp)
    assert len(service.read_all()) == 1


def test_async_post(runtime):
    board = BulletinBoard(runtime, "dev")
    service = BulletinService(runtime, board)
    task = service.post_async("bob", "background note")
    assert task.wait(3) is Outcome.COMMITTED
    assert any(p["text"] == "background note" for p in service.read_all())


def test_read_post_and_retract(runtime):
    board = BulletinBoard(runtime, "dev")
    service = BulletinService(runtime, board)
    post_id = service.post("ann", "x")
    with runtime.top_level():
        assert board.read_post(post_id)["author"] == "ann"
        assert board.retract(post_id)
        with pytest.raises(ObjectNotFound):
            board.read_post(post_id)


def test_board_state_roundtrip(runtime):
    board = BulletinBoard(runtime, "dev")
    with runtime.top_level():
        board.post("ann", "one")
        board.post("bob", "two")
    clone = BulletinBoard(runtime, persist=False)
    clone.restore_snapshot(board.snapshot())
    assert clone.next_id == 3
    assert [p["author"] for p in clone.posts] == ["ann", "bob"]


# -- billing --------------------------------------------------------------------

def test_charge_survives_caller_abort(runtime):
    customer = Account(runtime, "cust", balance=100)
    provider = Account(runtime, "prov", balance=0)
    service = MeteredService(runtime, "compile", fee=10,
                             provider_account=provider)
    work_done = Account(runtime, "work", balance=0)
    with pytest.raises(RuntimeError):
        with runtime.top_level(name="job"):
            service.call(customer, lambda: work_done.deposit(1, "result"))
            raise RuntimeError("job aborts")
    assert customer.balance == 90    # billed anyway
    assert provider.balance == 10
    assert work_done.balance == 0    # the work itself was undone


def test_charge_and_work_on_commit(runtime):
    customer = Account(runtime, "cust", balance=100)
    service = MeteredService(runtime, "compile", fee=10)
    result = Account(runtime, "out", balance=0)
    with runtime.top_level(name="job"):
        service.call(customer, lambda: result.deposit(5, "answer"))
    assert customer.balance == 90
    assert result.balance == 5
    assert service.calls_billed == 1


def test_multiple_calls_accumulate_charges(runtime):
    customer = Account(runtime, "cust", balance=100)
    service = MeteredService(runtime, "lookup", fee=3)
    with pytest.raises(RuntimeError):
        with runtime.top_level(name="job"):
            for _ in range(4):
                service.call(customer, lambda: None)
            raise RuntimeError
    assert customer.balance == 100 - 4 * 3
    descriptions = [entry[0] for entry in customer.statement]
    assert len(descriptions) == 4 and all("lookup" in d for d in descriptions)


def test_refund_policy_via_compensation(runtime):
    customer = Account(runtime, "cust", balance=50)
    service = MeteredService(runtime, "render", fee=20)
    with pytest.raises(RuntimeError):
        with runtime.top_level(name="job") as job:
            refunds = CompensationScope(runtime, job)
            service.call(customer, lambda: None, refund_on_abort=refunds)
            raise RuntimeError("job aborts")
    assert customer.balance == 50            # charged 20, refunded 20
    kinds = [entry[0] for entry in customer.statement]
    assert any("refund" in k for k in kinds)


def test_no_refund_on_commit(runtime):
    customer = Account(runtime, "cust", balance=50)
    service = MeteredService(runtime, "render", fee=20)
    with runtime.top_level(name="job") as job:
        refunds = CompensationScope(runtime, job)
        service.call(customer, lambda: None, refund_on_abort=refunds)
    assert customer.balance == 30
