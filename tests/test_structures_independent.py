"""Top-level independent actions (figs. 7/13) and compensation (§3.4)."""

import threading

import pytest

from repro.errors import LockTimeout
from repro.locking.modes import LockMode
from repro.structures import AsyncIndependent, CompensationScope, independent_top_level
from repro.stdobjects import Counter


def test_sync_independent_commit_survives_invoker_abort(runtime):
    board = Counter(runtime, value=0)
    with pytest.raises(RuntimeError):
        with runtime.top_level(name="app"):
            with independent_top_level(runtime, name="post") as post:
                board.increment(1, action=post)
            raise RuntimeError("app aborts")
    assert board.value == 1
    assert runtime.store.read_committed(board.uid).payload == board.snapshot()


def test_sync_independent_abort_leaves_invoker_running(runtime):
    board = Counter(runtime, value=0)
    own = Counter(runtime, value=0)
    with runtime.top_level(name="app"):
        own.increment(5)
        with pytest.raises(ValueError):
            with independent_top_level(runtime, name="post") as post:
                board.increment(1, action=post)
                raise ValueError("post fails")
        # invoker continues; its own work is unaffected
        own.increment(5)
    assert board.value == 0
    assert own.value == 10


def test_invoker_can_consult_outcome(runtime):
    """Fig. 7(a): 'subsequent activities of A can be made to depend upon the
    outcome of B' — e.g. A aborts if B aborted."""
    from repro.actions.status import Outcome
    board = Counter(runtime, value=0)
    own = Counter(runtime, value=0)
    with pytest.raises(RuntimeError):
        with runtime.top_level(name="app"):
            own.increment(5)
            scope = independent_top_level(runtime, name="post")
            try:
                with scope as post:
                    board.increment(1, action=post)
                    raise ValueError("post fails")
            except ValueError:
                pass
            assert scope.outcome is Outcome.ABORTED
            raise RuntimeError("A aborts because B aborted")
    assert own.value == 0


def test_independent_commits_are_permanent_immediately(runtime):
    board = Counter(runtime, value=0)
    with runtime.top_level(name="app"):
        with independent_top_level(runtime, name="post") as post:
            board.increment(1, action=post)
        assert runtime.store.read_committed(board.uid).payload == board.snapshot()


def test_fig13b_no_deadlock_with_invoker_held_object(runtime):
    """Invoker A holds locks B needs: the coloured implementation grants B
    (A is B's ancestor) where true top-levels would deadlock — fig. 13.

    Grantable conflicts: B reads what A wrote, and B writes what A read.
    (WRITE over an ancestor's WRITE in a different colour stays blocked —
    §5.2's rule 3 parenthetical — so write responsibility is unambiguous.)
    """
    written_by_a = Counter(runtime, value=0)
    read_by_a = Counter(runtime, value=0)
    with runtime.top_level(name="A") as a:
        written_by_a.increment(1)          # A write-locks
        read_by_a.get()                    # A read-locks
        with independent_top_level(runtime, name="B") as b:
            # B reads past A's WRITE lock (A is an ancestor)...
            assert written_by_a.get(action=b) == 1
            # ...and writes past A's READ lock.
            read_by_a.increment(10, action=b)
    assert read_by_a.value == 10
    assert written_by_a.value == 1


def test_fig13b_write_over_invoker_write_stays_blocked(runtime):
    """The documented exception: write-over-write in another colour waits."""
    shared = Counter(runtime, value=0)
    with runtime.top_level(name="A") as a:
        shared.increment(1)
        with independent_top_level(runtime, name="B") as b:
            with pytest.raises(LockTimeout):
                runtime.acquire(b, shared, LockMode.WRITE, timeout=0.05)
            runtime.abort_action(b)


def test_fig13a_true_top_levels_do_conflict(runtime):
    """The contrast case: a *non-nested* top-level B blocks on A's lock."""
    shared = Counter(runtime, value=0)
    with runtime.top_level(name="A") as a:
        shared.increment(1)
        with independent_top_level(runtime, use_ambient_parent=False, name="B") as b:
            with pytest.raises(LockTimeout):
                runtime.acquire(b, shared, LockMode.WRITE, timeout=0.05)
            runtime.abort_action(b)


def test_async_independent_runs_concurrently_and_commits(runtime):
    board = Counter(runtime, value=0)
    started = threading.Event()
    release = threading.Event()

    def body(action):
        started.set()
        release.wait(2)
        board.increment(1, action=action)

    with runtime.top_level(name="app") as app:
        task = AsyncIndependent(runtime, body, parent=app, name="bg")
        assert started.wait(2)
        release.set()
        assert task.wait(2) is not None
    assert board.value == 1


def test_async_independent_survives_invoker_abort(runtime):
    from repro.actions.status import Outcome
    board = Counter(runtime, value=0)
    release = threading.Event()

    def body(action):
        release.wait(2)
        board.increment(7, action=action)

    with pytest.raises(RuntimeError):
        with runtime.top_level(name="app") as app:
            task = AsyncIndependent(runtime, body, parent=app, name="bg")
            raise RuntimeError("invoker aborts while B still running")
    release.set()
    assert task.wait(3) is Outcome.COMMITTED
    assert board.value == 7


def test_async_independent_reports_body_error(runtime):
    from repro.actions.status import Outcome

    def body(action):
        raise ValueError("bg failure")

    with runtime.top_level(name="app") as app:
        task = AsyncIndependent(runtime, body, parent=app, name="bg")
        assert task.wait(2) is Outcome.ABORTED
    assert isinstance(task.error, ValueError)


def test_compensation_runs_on_governing_abort(runtime):
    """Bulletin-board pattern: the independent post commits; if the invoking
    action aborts, a compensating top-level action retracts it."""
    board = Counter(runtime, value=0)
    with pytest.raises(RuntimeError):
        with runtime.top_level(name="app") as app:
            comp = CompensationScope(runtime, app)
            with independent_top_level(runtime, name="post") as post:
                board.increment(1, action=post)
            comp.register("retract post",
                          lambda action: board.decrement(1, action=action))
            raise RuntimeError("app aborts")
    assert board.value == 0  # posted then compensated
    assert comp.records == []


def test_compensation_not_run_on_commit(runtime):
    board = Counter(runtime, value=0)
    with runtime.top_level(name="app") as app:
        comp = CompensationScope(runtime, app)
        with independent_top_level(runtime, name="post") as post:
            board.increment(1, action=post)
        comp.register("retract", lambda action: board.decrement(1, action=action))
    assert board.value == 1


def test_compensators_run_in_reverse_order(runtime):
    order = []
    with pytest.raises(RuntimeError):
        with runtime.top_level(name="app") as app:
            comp = CompensationScope(runtime, app)
            comp.register("first", lambda a: order.append("first"))
            comp.register("second", lambda a: order.append("second"))
            raise RuntimeError
    assert order == ["second", "first"]


def test_failing_compensator_does_not_stop_the_rest(runtime):
    from repro.actions.status import Outcome
    order = []

    def bad(action):
        raise ValueError("compensator broken")

    with pytest.raises(RuntimeError):
        with runtime.top_level(name="app") as app:
            comp = CompensationScope(runtime, app)
            comp.register("ok-one", lambda a: order.append("one"))
            comp.register("bad", bad)
            comp.register("ok-two", lambda a: order.append("two"))
            raise RuntimeError
    assert order == ["two", "one"]


def test_discarded_compensator_does_not_run(runtime):
    ran = []
    with pytest.raises(RuntimeError):
        with runtime.top_level(name="app") as app:
            comp = CompensationScope(runtime, app)
            record = comp.register("noop", lambda a: ran.append(True))
            comp.discard(record)
            raise RuntimeError
    assert ran == []
