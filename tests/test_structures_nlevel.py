"""N-level independent actions through the structures API (figs. 14/15)."""

import pytest

from repro.errors import ColourError
from repro.structures import independence_markers, independent_relative_to
from repro.stdobjects import Counter


def test_second_level_independent_full_fig14(runtime):
    """E survives B's abort; A's abort undoes E (automatic marker choice)."""
    (marker,) = independence_markers(runtime, 1, name="blue")
    red = runtime.colours.fresh("red")
    oe = Counter(runtime, value=0)
    with pytest.raises(RuntimeError):
        with runtime.coloured([red, marker], name="A") as a:
            with pytest.raises(ValueError):
                with runtime.coloured([red], parent=a, name="B") as b:
                    with independent_relative_to(runtime, a, parent=b, name="E") as e:
                        oe.increment(1, action=e)
                    raise ValueError("B aborts")
            assert oe.value == 1   # E survived B
            raise RuntimeError("A aborts")
    assert oe.value == 0           # ... but fell with A


def test_anchor_commit_makes_effects_permanent(runtime):
    (marker,) = independence_markers(runtime, 1)
    red = runtime.colours.fresh("red")
    oe = Counter(runtime, value=0)
    with runtime.coloured([red, marker], name="A") as a:
        with runtime.coloured([red], parent=a, name="B") as b:
            with independent_relative_to(runtime, a, parent=b, name="E") as e:
                oe.increment(1, action=e)
    assert oe.value == 1
    assert runtime.store.read_committed(oe.uid).payload == oe.snapshot()


def test_explicit_marker_selection(runtime):
    markers = independence_markers(runtime, 2)
    red = runtime.colours.fresh("red")
    counter = Counter(runtime, value=0)
    with runtime.coloured([red] + markers, name="A") as a:
        with runtime.coloured([red], parent=a, name="B") as b:
            scope = independent_relative_to(runtime, a, parent=b, marker=markers[1])
            with scope as e:
                assert e.colours == frozenset((markers[1],))
                counter.increment(1, action=e)
    assert counter.value == 1


def test_marker_not_possessed_by_anchor_rejected(runtime):
    red = runtime.colours.fresh("red")
    stray = runtime.colours.fresh("stray")
    with runtime.coloured([red], name="A") as a:
        with runtime.coloured([red], parent=a, name="B") as b:
            with pytest.raises(ColourError):
                independent_relative_to(runtime, a, parent=b, marker=stray)
            runtime.abort_action(b)
            runtime.abort_action(a)


def test_marker_held_by_intermediate_rejected(runtime):
    """A colour the intermediate also holds would stop the routing there."""
    red = runtime.colours.fresh("red")
    with runtime.coloured([red], name="A") as a:
        with runtime.coloured([red], parent=a, name="B") as b:
            with pytest.raises(ColourError):
                independent_relative_to(runtime, a, parent=b, marker=red)
            runtime.abort_action(b)
            runtime.abort_action(a)


def test_no_usable_marker_raises_with_guidance(runtime):
    red = runtime.colours.fresh("red")
    with runtime.coloured([red], name="A") as a:
        with runtime.coloured([red], parent=a, name="B") as b:
            with pytest.raises(ColourError):
                independent_relative_to(runtime, a, parent=b)
            runtime.abort_action(b)
            runtime.abort_action(a)


def test_anchor_must_be_ancestor(runtime):
    (marker,) = independence_markers(runtime, 1)
    red = runtime.colours.fresh("red")
    with runtime.coloured([red, marker], name="A") as a:
        pass
    with runtime.coloured([red], name="unrelated") as other:
        with pytest.raises(ColourError):
            independent_relative_to(runtime, a, parent=other)
        runtime.abort_action(other)


def test_three_level_chain(runtime):
    """Independence anchored two levels up a three-deep chain."""
    (marker,) = independence_markers(runtime, 1)
    red = runtime.colours.fresh("red")
    green = runtime.colours.fresh("green")
    counter = Counter(runtime, value=0)
    with pytest.raises(RuntimeError):
        with runtime.coloured([red, marker], name="A") as a:
            with runtime.coloured([red], parent=a, name="B") as b:
                with runtime.coloured([green], parent=b, name="C") as c:
                    with independent_relative_to(runtime, a, parent=c, name="E") as e:
                        counter.increment(1, action=e)
                # C commits; E's work is anchored at A
            raise RuntimeError("A aborts")
    assert counter.value == 0
