"""Action lifecycle: status transitions, scopes, listeners, errors."""

import pytest

from repro.actions.action import Action
from repro.actions.status import ActionStatus, Outcome
from repro.errors import InvalidActionState, NoCurrentAction
from repro.runtime.context import current_action, require_current_action
from repro.stdobjects import Counter


def test_scope_commits_on_clean_exit(runtime):
    scope = runtime.top_level(name="t")
    with scope as action:
        assert action.status is ActionStatus.ACTIVE
    assert action.status is ActionStatus.COMMITTED
    assert scope.outcome is Outcome.COMMITTED


def test_scope_aborts_on_exception_and_reraises(runtime):
    scope = runtime.top_level(name="t")
    with pytest.raises(ValueError):
        with scope as action:
            raise ValueError("app error")
    assert action.status is ActionStatus.ABORTED
    assert scope.outcome is Outcome.ABORTED


def test_manual_commit_inside_scope_respected(runtime):
    scope = runtime.top_level(name="t")
    with scope as action:
        runtime.commit_action(action)
    assert scope.outcome is Outcome.COMMITTED


def test_manual_abort_inside_scope_respected(runtime):
    scope = runtime.top_level(name="t")
    with scope as action:
        runtime.abort_action(action)
    assert scope.outcome is Outcome.ABORTED


def test_commit_twice_raises(runtime):
    with runtime.top_level() as action:
        pass
    with pytest.raises(InvalidActionState):
        action.commit()


def test_abort_after_commit_raises(runtime):
    with runtime.top_level() as action:
        pass
    with pytest.raises(InvalidActionState):
        action.abort()


def test_abort_is_idempotent(runtime):
    scope = runtime.top_level()
    with scope as action:
        runtime.abort_action(action)
    assert runtime.abort_action(action) is Outcome.ABORTED


def test_ambient_context_tracks_nesting(runtime):
    assert current_action() is None
    with runtime.top_level(name="outer") as outer:
        assert current_action() is outer
        with runtime.atomic(name="inner") as inner:
            assert current_action() is inner
        assert current_action() is outer
    assert current_action() is None


def test_require_current_action_raises_outside_scope():
    with pytest.raises(NoCurrentAction):
        require_current_action()


def test_action_needs_at_least_one_colour(runtime):
    with pytest.raises(InvalidActionState):
        Action(runtime, [], parent=None)


def test_cannot_nest_under_terminated_action(runtime):
    with runtime.top_level() as action:
        pass
    with pytest.raises(InvalidActionState):
        Action(runtime, list(action.colours), parent=action)


def test_path_encodes_ancestry(runtime):
    with runtime.top_level() as a:
        with runtime.atomic() as b:
            with runtime.atomic() as c:
                assert c.path == (a.uid, b.uid, c.uid)
                assert a.is_ancestor_of(c)
                assert c.is_ancestor_of(c)
                assert not c.is_ancestor_of(a)
                assert c.root() is a
                assert c.depth() == 2


def test_outcome_listener_fires_once(runtime):
    seen = []
    with runtime.top_level() as action:
        action.on_outcome(lambda a, o: seen.append(o))
    assert seen == [Outcome.COMMITTED]


def test_outcome_listener_on_abort(runtime):
    seen = []
    with pytest.raises(RuntimeError):
        with runtime.top_level() as action:
            action.on_outcome(lambda a, o: seen.append(o))
            raise RuntimeError
    assert seen == [Outcome.ABORTED]


def test_record_write_requires_possessed_colour(runtime):
    foreign = runtime.colours.fresh("foreign")
    counter = Counter(runtime, value=0)
    with runtime.top_level() as action:
        with pytest.raises(InvalidActionState):
            action.record_write(counter, foreign)
        runtime.abort_action(action)


def test_single_colour_helper(runtime):
    red, blue = runtime.colours.fresh("red"), runtime.colours.fresh("blue")
    with runtime.coloured([red]) as one:
        assert one.single_colour() == red
        runtime.abort_action(one)
    with runtime.coloured([red, blue]) as two:
        with pytest.raises(InvalidActionState):
            two.single_colour()
        runtime.abort_action(two)


def test_lock_colour_resolution_order(runtime):
    red, blue = runtime.colours.fresh("red"), runtime.colours.fresh("blue")
    with runtime.coloured([red, blue]) as action:
        assert action.lock_colour(red) == red
        action.default_colour = blue
        assert action.lock_colour() == blue
        runtime.abort_action(action)
