"""Gate, Semaphore, Channel primitives."""

from repro.sim.kernel import Kernel, Timeout
from repro.sim.primitives import Channel, Gate, Semaphore


def test_gate_releases_current_waiters_only():
    kernel = Kernel()
    gate = Gate(kernel)
    woken = []

    def waiter(label):
        yield gate.wait()
        woken.append((kernel.now, label))

    kernel.spawn(waiter("a"))
    kernel.spawn(waiter("b"))
    kernel.schedule(5, lambda: gate.open())
    kernel.run()
    assert woken == [(5, "a"), (5, "b")]
    # a late waiter needs the *next* open
    kernel.spawn(waiter("late"))
    kernel.run()
    assert len(woken) == 2
    gate.open()
    kernel.run()
    assert woken[-1][1] == "late"


def test_semaphore_limits_concurrency():
    kernel = Kernel()
    sem = Semaphore(kernel, permits=2)
    active = {"now": 0, "max": 0}

    def worker():
        yield sem.acquire()
        active["now"] += 1
        active["max"] = max(active["max"], active["now"])
        yield Timeout(10)
        active["now"] -= 1
        sem.release()

    for _ in range(6):
        kernel.spawn(worker())
    kernel.run()
    assert active["max"] == 2
    assert sem.available == 2


def test_semaphore_fifo_order():
    kernel = Kernel()
    sem = Semaphore(kernel, permits=1)
    order = []

    def worker(label):
        yield sem.acquire()
        order.append(label)
        yield Timeout(1)
        sem.release()

    for label in "abcd":
        kernel.spawn(worker(label))
    kernel.run()
    assert order == ["a", "b", "c", "d"]


def test_semaphore_holding_releases_on_exception():
    kernel = Kernel()
    sem = Semaphore(kernel, permits=1)

    def failing_body():
        yield Timeout(1)
        raise ValueError("inner")

    def holder():
        try:
            yield from sem.holding(failing_body())
        except ValueError:
            pass
        return sem.available

    handle = kernel.spawn(holder())
    kernel.run()
    assert handle.result == 1  # permit restored despite the exception


def test_channel_put_before_get():
    kernel = Kernel()
    chan = Channel(kernel)
    chan.put("x")

    def getter():
        item = yield chan.get()
        return item

    handle = kernel.spawn(getter())
    kernel.run()
    assert handle.result == "x"


def test_channel_get_before_put_blocks_until_put():
    kernel = Kernel()
    chan = Channel(kernel)

    def getter():
        item = yield chan.get()
        return (kernel.now, item)

    handle = kernel.spawn(getter())
    kernel.schedule(7, lambda: chan.put("late"))
    kernel.run()
    assert handle.result == (7, "late")


def test_channel_fifo_across_getters():
    kernel = Kernel()
    chan = Channel(kernel)
    results = []

    def getter(label):
        item = yield chan.get()
        results.append((label, item))

    kernel.spawn(getter("g1"))
    kernel.spawn(getter("g2"))
    kernel.schedule(1, lambda: (chan.put("first"), chan.put("second")))
    kernel.run()
    assert results == [("g1", "first"), ("g2", "second")]


def test_channel_drain():
    kernel = Kernel()
    chan = Channel(kernel)
    chan.put(1)
    chan.put(2)
    assert chan.drain() == [1, 2]
    assert len(chan) == 0
