"""Distributed compensation (§3.4) and the bulletin board over the cluster."""

from repro.actions.status import Outcome
from repro.apps.bulletin import BulletinBoard
from repro.cluster.cluster import Cluster
from repro.cluster.compensation import ClusterCompensationScope


def make_cluster():
    cluster = Cluster(seed=0)
    cluster.classes[BulletinBoard.type_name] = BulletinBoard
    for name in ("app-node", "board-node"):
        cluster.add_node(name)
    return cluster


def test_compensation_runs_on_abort():
    cluster = make_cluster()
    client = cluster.client("app-node")

    def app():
        board = yield from client.create("board-node", "bulletin_board",
                                         name="dev")
        app_action = client.top_level("app")
        scope = ClusterCompensationScope(client, app_action)
        # the post commits independently of the application action
        post = client.independent_top_level(app_action, name="post")
        post_id = yield from client.invoke(post, board, "post", "ann",
                                           "release at 5pm")
        yield from client.commit(post)

        def retract(action, pid=post_id):
            yield from client.invoke(action, board, "retract", pid)

        scope.register(f"retract {post_id}", lambda a: retract(a))
        yield from client.abort(app_action)
        records = yield from scope.settle()
        reader = client.top_level("r")
        posts = yield from client.invoke(reader, board, "read_all")
        yield from client.commit(reader)
        return records, posts

    records, posts = cluster.run_process("app-node", app())
    assert len(records) == 1 and records[0].outcome is Outcome.COMMITTED
    assert posts == []  # posted then compensated


def test_compensation_skipped_on_commit():
    cluster = make_cluster()
    client = cluster.client("app-node")

    def app():
        board = yield from client.create("board-node", "bulletin_board",
                                         name="dev")
        app_action = client.top_level("app")
        scope = ClusterCompensationScope(client, app_action)
        post = client.independent_top_level(app_action, name="post")
        post_id = yield from client.invoke(post, board, "post", "bob", "hi")
        yield from client.commit(post)

        def retract(action, pid=post_id):
            yield from client.invoke(action, board, "retract", pid)

        scope.register("retract", lambda a: retract(a))
        yield from client.commit(app_action)
        records = yield from scope.settle()
        reader = client.top_level("r")
        posts = yield from client.invoke(reader, board, "read_all")
        yield from client.commit(reader)
        return records, posts

    records, posts = cluster.run_process("app-node", app())
    assert records == []
    assert len(posts) == 1


def test_failing_compensator_does_not_stop_rest():
    cluster = make_cluster()
    client = cluster.client("app-node")
    ran = []

    def app():
        app_action = client.top_level("app")
        scope = ClusterCompensationScope(client, app_action)

        def good(action, label):
            ran.append(label)
            return
            yield  # pragma: no cover - keep it a generator

        def bad(action):
            raise ValueError("broken compensator")
            yield  # pragma: no cover

        scope.register("one", lambda a: good(a, "one"))
        scope.register("bad", lambda a: bad(a))
        scope.register("two", lambda a: good(a, "two"))
        yield from client.abort(app_action)
        records = yield from scope.settle()
        return [(r.description, r.outcome) for r in records]

    results = cluster.run_process("app-node", app())
    assert ran == ["two", "one"]  # reverse order, bad one skipped over
    outcomes = dict(results)
    assert outcomes["bad"] is Outcome.ABORTED
    assert outcomes["one"] is Outcome.COMMITTED


def test_bulletin_board_posts_survive_invoker_abort_cluster():
    """§4(i) across the wire: the post is in the board node's stable store
    even though the invoking application aborted."""
    cluster = make_cluster()
    client = cluster.client("app-node")

    def app():
        board = yield from client.create("board-node", "bulletin_board",
                                         name="dev")
        app_action = client.top_level("app")
        post = client.independent_top_level(app_action, name="post")
        yield from client.invoke(post, board, "post", "ann", "notice")
        yield from client.commit(post)
        yield from client.abort(app_action)
        return board

    board = cluster.run_process("app-node", app())
    stored = cluster.nodes["board-node"].stable_store.read_committed(board.uid)
    fresh = BulletinBoard.__new__(BulletinBoard)
    from repro.objects.state import ObjectState
    fresh.restore_state(ObjectState.from_bytes(stored.payload))
    assert [p["text"] for p in fresh.posts] == ["notice"]
