"""Type-specific concurrency control over the cluster."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.structures import ClusterSerializingAction
from repro.errors import LockTimeout
from repro.objects.state import ObjectState
from repro.sim.kernel import Timeout


def make_cluster(lock_wait_timeout=20.0):
    cluster = Cluster(seed=0, lock_wait_timeout=lock_wait_timeout)
    for name in ("c1", "c2", "server"):
        cluster.add_node(name)
    return cluster


def committed_int(cluster, ref):
    stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
    return ObjectState.from_bytes(stored.payload).unpack_int()


def test_remote_commuting_updates_do_not_block():
    """Two clients on different nodes add to one counter concurrently;
    neither waits for the other."""
    cluster = make_cluster()
    c1 = cluster.client("c1", "c1")
    c2 = cluster.client("c2", "c2")
    refs = {}
    times = {}

    def setup():
        refs["ctr"] = yield from c1.create("server", "commuting_counter", value=0)

    def updater(client, label, amount, hold):
        action = client.top_level(label)
        yield from client.invoke(action, refs["ctr"], "add", amount)
        times[f"{label}-locked"] = cluster.kernel.now
        yield Timeout(hold)
        yield from client.commit(action)
        times[f"{label}-done"] = cluster.kernel.now

    cluster.run_process("c1", setup())
    cluster.spawn("c1", updater(c1, "u1", 1, hold=50.0))
    cluster.spawn("c2", updater(c2, "u2", 10, hold=5.0))
    cluster.run()
    # u2 locked while u1 still held its update lock: no blocking
    assert times["u2-locked"] < times["u1-done"]
    assert committed_int(cluster, refs["ctr"]) == 11


def test_remote_abort_compensates_only_own_operations():
    cluster = make_cluster()
    c1 = cluster.client("c1", "c1")
    c2 = cluster.client("c2", "c2")
    refs = {}

    def setup():
        refs["ctr"] = yield from c1.create("server", "commuting_counter", value=100)

    cluster.run_process("c1", setup())

    def scenario():
        a = c1.top_level("a")
        yield from c1.invoke(a, refs["ctr"], "add", 1)
        b = c2.top_level("b")
        yield from c2.invoke(b, refs["ctr"], "add", 10)
        yield from c2.commit(b)          # B's +10 committed
        yield from c1.abort(a)           # A compensates only its +1
        reader = c1.top_level("r")
        value = yield from c1.invoke(reader, refs["ctr"], "get")
        yield from c1.commit(reader)
        return value

    assert cluster.run_process("c1", scenario()) == 110


def test_remote_observer_conflicts_with_updater():
    cluster = make_cluster(lock_wait_timeout=5.0)
    c1 = cluster.client("c1", "c1")
    c2 = cluster.client("c2", "c2")
    refs = {}

    def setup():
        refs["ctr"] = yield from c1.create("server", "commuting_counter", value=0)

    cluster.run_process("c1", setup())

    def scenario():
        updater = c1.top_level("u")
        yield from c1.invoke(updater, refs["ctr"], "add", 1)
        reader = c2.top_level("r")
        try:
            yield from c2.invoke(reader, refs["ctr"], "get")
            blocked = False
        except LockTimeout:
            blocked = True
            yield from c2.abort(reader)
        yield from c1.commit(updater)
        return blocked

    assert cluster.run_process("c1", scenario()) is True


def test_remote_semantic_in_serializing_action_retained():
    """The companion retain-group pin works across the wire."""
    cluster = make_cluster(lock_wait_timeout=5.0)
    c1 = cluster.client("c1", "c1")
    c2 = cluster.client("c2", "c2")
    refs = {}

    def setup():
        refs["ctr"] = yield from c1.create("server", "commuting_counter", value=0)

    cluster.run_process("c1", setup())

    def scenario():
        ser = ClusterSerializingAction(c1, name="ser")
        constituent = ser.constituent("B")

        def body():
            yield from c1.invoke(constituent, refs["ctr"], "add", 5)

        yield from ser.run_constituent(constituent, body())
        # even another *updater* is blocked: the retain pin conflicts with
        # everything, not just observers
        outsider = c2.top_level("out")
        try:
            yield from c2.invoke(outsider, refs["ctr"], "add", 1)
            blocked = False
        except LockTimeout:
            blocked = True
            yield from c2.abort(outsider)
        yield from ser.close()
        after = c2.top_level("after")
        yield from c2.invoke(after, refs["ctr"], "add", 1)
        yield from c2.commit(after)
        return blocked

    assert cluster.run_process("c1", scenario()) is True
    assert committed_int(cluster, refs["ctr"]) == 6


def test_remote_commuting_counter_survives_crash_of_committed_state():
    cluster = make_cluster()
    c1 = cluster.client("c1", "c1")
    refs = {}

    def setup_and_commit():
        refs["ctr"] = yield from c1.create("server", "commuting_counter", value=0)
        action = c1.top_level("t")
        yield from c1.invoke(action, refs["ctr"], "add", 7)
        yield from c1.commit(action)

    cluster.run_process("c1", setup_and_commit())
    cluster.crash("server")
    cluster.restart("server")

    def read():
        action = c1.top_level("r")
        value = yield from c1.invoke(action, refs["ctr"], "get")
        yield from c1.commit(action)
        return value

    assert cluster.run_process("c1", read()) == 7
