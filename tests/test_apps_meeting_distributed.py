"""The distributed meeting scheduler (fig. 9 across object servers)."""

import pytest

from repro.apps.meeting.distributed import (
    DistributedMeetingScheduler,
    SchedulerCrashRemote,
)
from repro.apps.meeting.scheduler import NoCommonDate
from repro.cluster.cluster import Cluster
from repro.errors import LockTimeout
from repro.objects.state import ObjectState

DATES = [f"d{i}" for i in range(5)]
PEOPLE = {"ann": "ws-ann", "bob": "ws-bob", "cat": "ws-cat"}


def make_scheduler(lock_wait_timeout=60.0):
    cluster = Cluster(seed=0, lock_wait_timeout=lock_wait_timeout)
    cluster.add_node("coordinator")
    for node in PEOPLE.values():
        cluster.add_node(node)
    client = cluster.client("coordinator")
    scheduler = DistributedMeetingScheduler(cluster, client)
    cluster.run_process("coordinator", scheduler.create_diaries(PEOPLE, DATES))
    return cluster, scheduler


def booked_in_stable_store(cluster, scheduler, date):
    """Check the booking reached every participant's stable store."""
    booked = []
    for diary in scheduler.diaries:
        ref = diary.slots[date]
        stored = cluster.nodes[diary.node].stable_store.read_committed(ref.uid)
        state = ObjectState.from_bytes(stored.payload)
        state.unpack_string()           # owner
        state.unpack_string()           # date
        booked.append(state.unpack_bool())
    return booked


def test_distributed_scheduling_books_common_date():
    cluster, scheduler = make_scheduler()

    def app():
        chosen = yield from scheduler.schedule(
            "review", [DATES[1:4], DATES[2:5], [DATES[2]]]
        )
        return chosen

    chosen = cluster.run_process("coordinator", app())
    assert chosen == DATES[2]
    assert booked_in_stable_store(cluster, scheduler, chosen) == [True] * 3


def test_rounds_narrow_monotonically():
    cluster, scheduler = make_scheduler()

    def app():
        return (yield from scheduler.schedule(
            "m", [DATES[:4], DATES[1:3]]
        ))

    cluster.run_process("coordinator", app())
    kept = [len(r.kept) for r in scheduler.rounds]
    assert all(a >= b for a, b in zip(kept, kept[1:]))
    assert kept[-1] == 1


def test_no_common_date_raises_and_releases():
    cluster, scheduler = make_scheduler()

    def app():
        try:
            yield from scheduler.schedule("m", [[DATES[0]], [DATES[1]]])
            return "scheduled"
        except NoCommonDate:
            return "no-date"

    assert cluster.run_process("coordinator", app()) == "no-date"
    # nothing is left pinned: an outsider can lock any slot
    outsider = cluster.client("coordinator", "outsider")

    def probe():
        action = outsider.top_level("probe")
        ref = scheduler.diaries[0].slots[DATES[0]]
        yield from outsider.invoke(action, ref, "book", "other meeting")
        yield from outsider.commit(action)
        return True

    assert cluster.run_process("coordinator", probe())


def test_crash_between_rounds_preserves_committed_narrowing():
    cluster, scheduler = make_scheduler(lock_wait_timeout=10.0)

    def app():
        try:
            yield from scheduler.schedule(
                "m", [DATES[:3], DATES[1:3]], fail_after_round=1,
            )
            return "finished"
        except SchedulerCrashRemote:
            return "crashed"

    assert cluster.run_process("coordinator", app()) == "crashed"
    assert scheduler.rounds[-1].kept == DATES[:3]
    # survivors still pinned...
    other = cluster.client("ws-ann", "other")

    def probe_pinned():
        action = other.top_level("probe")
        ref = scheduler.diaries[0].slots[DATES[0]]
        try:
            yield from other.invoke(action, ref, "book", "steal the slot")
            yield from other.commit(action)
            return "stole"
        except LockTimeout:
            yield from other.abort(action)
            return "pinned"

    assert cluster.run_process("ws-ann", probe_pinned()) == "pinned"
    # ... until released; then a fresh run resumes from the narrowing
    def finish():
        yield from scheduler.release_pins()
        chosen = yield from scheduler.schedule("m", [scheduler.rounds[-1].kept])
        return chosen

    chosen = cluster.run_process("coordinator", finish())
    assert chosen in DATES[:3]
    assert booked_in_stable_store(cluster, scheduler, chosen) == [True] * 3


def test_rejected_slots_freed_while_running():
    cluster, scheduler = make_scheduler()
    probe_result = {}

    def app():
        chosen = yield from scheduler.schedule(
            "m", [DATES[:2], [DATES[0]]]
        )
        return chosen

    def prober():
        from repro.sim.kernel import Timeout
        # wait until round 2 has released DATES[2:]
        while len(scheduler.rounds) < 2:
            yield Timeout(2.0)
        other = cluster.client("ws-bob", "prober")
        action = other.top_level("probe")
        ref = scheduler.diaries[1].slots[DATES[4]]  # rejected in round 1
        yield from other.invoke(action, ref, "book", "free slot")
        yield from other.commit(action)
        probe_result["booked"] = True

    handle_app = cluster.spawn("coordinator", app())
    handle_probe = cluster.spawn("ws-bob", prober())
    cluster.run()
    assert handle_app.result == DATES[0]
    assert probe_result.get("booked") is True
