"""Property: random multi-coloured action trees never leak.

Hypothesis drives random stack-disciplined programs against a
LocalRuntime: open children with random colour subsets (or fresh colours),
write objects in randomly chosen owned colours (try-lock semantics —
refused writes are skipped), and commit/abort randomly until the whole
tree has unwound.  Afterwards:

- no lock table holds any record (no lock leaks through any combination
  of per-colour inheritance and release);
- every object's live value equals its stable-store value (no undo leaks,
  no missed permanence);
- the runtime can run a fresh ordinary action over every object (the
  system is still live).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.actions.action import Action
from repro.actions.status import ActionStatus
from repro.locking.modes import LockMode
from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Counter

N_OBJECTS = 3
COLOUR_POOL = 3

ops = st.lists(
    st.tuples(
        st.sampled_from(["push", "write", "commit", "abort"]),
        st.integers(0, 7),    # colour-subset selector / object selector
        st.integers(0, N_OBJECTS - 1),
    ),
    min_size=1, max_size=60,
)


def try_write(runtime, action, obj, colour):
    outcome = {}

    def complete(request):
        outcome["granted"] = request.status.value == "granted"

    request = runtime.locks.request(action, obj.uid, LockMode.WRITE,
                                    colour, complete)
    if not request.settled:
        runtime.locks.cancel_request(request, "try-lock")
        return False
    if outcome.get("granted"):
        action.record_write(obj, colour)
        return True
    return False


@settings(max_examples=150, deadline=None)
@given(ops)
def test_random_coloured_trees_never_leak(operations):
    runtime = LocalRuntime(deadlock_detection=False)
    pool = [runtime.colours.fresh(f"p{i}") for i in range(COLOUR_POOL)]
    counters = [Counter(runtime, value=0) for _ in range(N_OBJECTS)]
    stack = []

    def colours_for(selector, parent):
        """A colour set: subset of the pool bits, else a fresh colour."""
        chosen = [pool[i] for i in range(COLOUR_POOL) if selector & (1 << i)]
        if not chosen:
            chosen = [runtime.colours.fresh()]
        return chosen

    for op, selector, obj_index in operations:
        if op == "push" and len(stack) < 6:
            parent = stack[-1] if stack else None
            action = Action(runtime, colours_for(selector, parent),
                            parent=parent)
            stack.append(action)
        elif op == "write" and stack:
            action = stack[-1]
            colour = sorted(action.colours, key=lambda c: c.uid)[
                selector % len(action.colours)
            ]
            counter = counters[obj_index]
            if try_write(runtime, action, counter, colour):
                counter.value += 1
        elif op == "commit" and stack:
            stack.pop().commit()
        elif op == "abort" and stack:
            stack.pop().abort()

    # unwind whatever remains (alternate commit/abort deterministically)
    while stack:
        action = stack.pop()
        if not action.status.terminated:
            if action.uid.sequence % 2 == 0:
                action.commit()
            else:
                action.abort()

    # 1. no lock leaks
    assert list(runtime.locks.tables()) == []
    # 2. live state agrees with stable state
    for counter in counters:
        stored = runtime.store.read_committed(counter.uid)
        assert stored.payload == counter.snapshot()
    # 3. still live
    with runtime.top_level():
        for counter in counters:
            counter.increment(1)


@settings(max_examples=80, deadline=None)
@given(ops)
def test_random_trees_with_detached_independents(operations):
    """Same harness, but aborts may detach colour-disjoint children; the
    leak-freedom invariants must still hold after everything unwinds."""
    runtime = LocalRuntime(deadlock_detection=False)
    pool = [runtime.colours.fresh(f"p{i}") for i in range(COLOUR_POOL)]
    counters = [Counter(runtime, value=0) for _ in range(N_OBJECTS)]
    live = []   # all actions ever created, for final unwinding
    stack = []

    for op, selector, obj_index in operations:
        if op == "push" and len(stack) < 6:
            chosen = [pool[i] for i in range(COLOUR_POOL) if selector & (1 << i)]
            if not chosen:
                chosen = [runtime.colours.fresh()]
            parent = stack[-1] if stack else None
            action = Action(runtime, chosen, parent=parent)
            stack.append(action)
            live.append(action)
        elif op == "write" and stack:
            action = stack[-1]
            colour = sorted(action.colours, key=lambda c: c.uid)[
                selector % len(action.colours)
            ]
            if try_write(runtime, action, counters[obj_index], colour):
                counters[obj_index].value += 1
        elif op == "commit" and stack:
            stack.pop().commit()
        elif op == "abort" and stack:
            # aborting mid-stack detaches disjoint descendants: drop the
            # whole suffix from our stack; detached ones stay in `live`.
            victim = stack.pop()
            while stack and victim.status.terminated:
                break
            victim.abort()
            stack = [a for a in stack if not a.status.terminated]

    for action in reversed(live):
        if not action.status.terminated:
            action.abort()

    assert list(runtime.locks.tables()) == []
    for counter in counters:
        stored = runtime.store.read_committed(counter.uid)
        assert stored.payload == counter.snapshot()
