"""Distributed tracing + metrics over a real 2-node cluster run.

These are the acceptance tests for the observability layer: one committed
distributed action must yield (a) a metrics dump with per-colour commit
counts and a populated 2PC prepare-latency histogram, and (b) a span set
forming one connected parent/child tree spanning client and server nodes.
"""

from repro.cluster.cluster import Cluster


def two_node_cluster(seed=3):
    cluster = Cluster(seed=seed)
    cluster.add_node("alpha")
    cluster.add_node("beta")
    return cluster


def run_one_commit(cluster):
    client = cluster.client("alpha")

    def app():
        ref = yield from client.create("beta", "counter", value=0)
        action = client.top_level("transfer")
        yield from client.invoke(action, ref, "increment", 5)
        yield from client.commit(action)
        return ref

    return cluster.run_process("alpha", app())


def test_metrics_dump_has_per_colour_commits_and_2pc_histogram():
    cluster = two_node_cluster()
    run_one_commit(cluster)
    dump = cluster.metrics_dump()

    commits = [row for row in dump["counters"]
               if row["name"] == "actions_committed_total"]
    assert commits, "no per-colour commit counters recorded"
    assert all("colour" in row["labels"] for row in commits)
    assert sum(row["value"] for row in commits) >= 1

    prepare = [row for row in dump["histograms"]
               if row["name"] == "twopc_prepare_time"]
    assert prepare, "no 2PC prepare-latency histogram recorded"
    assert prepare[0]["count"] >= 1
    assert prepare[0]["p50"] is not None
    assert "colour" in prepare[0]["labels"]


def test_spans_form_connected_tree_across_both_nodes():
    cluster = two_node_cluster()
    run_one_commit(cluster)
    spans = cluster.obs.tracer.snapshot()

    action_spans = [s for s in spans if s.name == "action:transfer"]
    assert len(action_spans) == 1
    root = action_spans[0]
    trace = [s for s in spans if s.trace_id == root.trace_id]

    # connectivity: every span in the trace reaches the root via parent_id
    by_id = {s.span_id: s for s in trace}
    for span in trace:
        hops = 0
        cursor = span
        while cursor.parent_id is not None:
            cursor = by_id[cursor.parent_id]  # KeyError == disconnected tree
            hops += 1
            assert hops < 50
        assert cursor.span_id == root.span_id

    # the tree crosses the network: client-side rpc spans on alpha,
    # server-side handler spans on beta, parented onto each other.
    nodes = {s.node for s in trace}
    assert {"alpha", "beta"} <= nodes
    serve_invoke = [s for s in trace
                    if s.name == "serve:invoke" and s.node == "beta"]
    assert serve_invoke
    parent = by_id[serve_invoke[0].parent_id]
    assert parent.name == "rpc:invoke"
    assert parent.node == "alpha"

    # commit hangs the 2PC machinery under the action span
    twopc = [s for s in trace if s.name.startswith("2pc:")]
    assert twopc
    assert twopc[0].attrs.get("outcome") == "committed"
    # every span of a finished run is closed
    assert all(s.finished for s in trace)


def test_nested_action_spans_mirror_action_structure():
    cluster = two_node_cluster(seed=5)
    client = cluster.client("alpha")

    def app():
        ref = yield from client.create("beta", "counter", value=0)
        outer = client.top_level("outer")
        inner = client.atomic(outer, "inner")
        yield from client.invoke(inner, ref, "increment", 1)
        yield from client.commit(inner)
        yield from client.commit(outer)

    cluster.run_process("alpha", app())
    spans = cluster.obs.tracer.snapshot()
    outer_span = next(s for s in spans if s.name == "action:outer")
    inner_span = next(s for s in spans if s.name == "action:inner")
    assert inner_span.parent_id == outer_span.span_id
    assert inner_span.trace_id == outer_span.trace_id
    assert outer_span.attrs.get("outcome") == "committed"


def test_aborts_count_per_colour_and_close_the_span():
    cluster = two_node_cluster(seed=7)
    client = cluster.client("alpha")

    def app():
        ref = yield from client.create("beta", "counter", value=0)
        action = client.top_level("doomed")
        yield from client.invoke(action, ref, "increment", 1)
        yield from client.abort(action)
        return ref

    cluster.run_process("alpha", app())
    dump = cluster.metrics_dump()
    aborts = [row for row in dump["counters"]
              if row["name"] == "actions_aborted_total"]
    assert aborts and sum(row["value"] for row in aborts) >= 1
    doomed = next(s for s in cluster.obs.tracer.snapshot()
                  if s.name == "action:doomed")
    assert doomed.finished
    assert doomed.attrs.get("outcome") == "aborted"


def test_traces_are_deterministic_for_a_fixed_seed():
    def span_signature(cluster):
        return [(s.name, s.node, s.trace_id, s.span_id, s.parent_id,
                 s.start, s.end)
                for s in cluster.obs.tracer.snapshot()]

    first = two_node_cluster(seed=11)
    run_one_commit(first)
    second = two_node_cluster(seed=11)
    run_one_commit(second)
    assert span_signature(first) == span_signature(second)
    assert first.metrics_dump() == second.metrics_dump()


def test_rpc_latency_and_message_counters_populate():
    cluster = two_node_cluster()
    run_one_commit(cluster)
    dump = cluster.metrics_dump()
    latency = [row for row in dump["histograms"]
               if row["name"] == "rpc_latency"]
    assert latency and sum(row["count"] for row in latency) >= 3
    sent = [row for row in dump["counters"]
            if row["name"] == "messages_sent_total"]
    kinds = {row["labels"]["kind"] for row in sent}
    assert {"create", "invoke"} <= kinds
    # the facade folds kernel/network totals in as gauges
    gauges = {row["name"]: row["value"] for row in dump["gauges"]}
    assert gauges["network_sent_total"] >= sum(row["value"] for row in sent)
    assert gauges["kernel_callbacks_run"] > 0


def test_server_grant_path_notifies_observers():
    """Satellite: on_lock_granted must fire for *distributed* grants."""
    granted = []

    class Listener:
        def on_action_created(self, action):
            pass

        def on_action_terminated(self, action):
            pass

        def on_lock_granted(self, action, object_uid, mode, colour):
            granted.append((action.name, str(object_uid), mode))

    cluster = two_node_cluster()
    cluster.add_observer(Listener())
    run_one_commit(cluster)
    assert granted, "server grant path never notified observers"
    names = {name for name, _, _ in granted}
    assert any(name.startswith("caction") for name in names)
