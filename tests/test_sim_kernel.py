"""Discrete-event kernel: time, events, processes, determinism."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Kernel, ProcessKilled, Timeout, all_of, any_of


def test_timeout_advances_simulated_time():
    kernel = Kernel()
    seen = []

    def proc():
        yield Timeout(5.0)
        seen.append(kernel.now)
        yield Timeout(2.5)
        seen.append(kernel.now)

    kernel.spawn(proc())
    kernel.run()
    assert seen == [5.0, 7.5]


def test_process_result_available_after_run():
    kernel = Kernel()

    def proc():
        yield Timeout(1)
        return "answer"

    handle = kernel.spawn(proc())
    kernel.run()
    assert handle.result == "answer"
    assert not handle.alive


def test_result_before_completion_raises():
    kernel = Kernel()

    def proc():
        yield Timeout(10)

    handle = kernel.spawn(proc())
    with pytest.raises(SimulationError):
        handle.result


def test_event_wait_and_trigger_passes_value():
    kernel = Kernel()
    event = kernel.event()
    got = []

    def waiter():
        value = yield event
        got.append(value)

    def firer():
        yield Timeout(3)
        event.trigger("payload")

    kernel.spawn(waiter())
    kernel.spawn(firer())
    kernel.run()
    assert got == ["payload"]


def test_waiting_on_settled_event_resumes_immediately():
    kernel = Kernel()
    event = kernel.event()
    event.trigger(99)

    def waiter():
        value = yield event
        return value

    handle = kernel.spawn(waiter())
    kernel.run()
    assert handle.result == 99


def test_failed_event_throws_into_waiter():
    kernel = Kernel()
    event = kernel.event()

    def waiter():
        try:
            yield event
        except ValueError as error:
            return f"caught {error}"

    handle = kernel.spawn(waiter())
    kernel.schedule(1, lambda: event.fail(ValueError("bad")))
    kernel.run()
    assert handle.result == "caught bad"


def test_event_cannot_settle_twice():
    kernel = Kernel()
    event = kernel.event()
    event.trigger()
    with pytest.raises(SimulationError):
        event.trigger()


def test_join_returns_child_result():
    kernel = Kernel()

    def child():
        yield Timeout(2)
        return 7

    def parent():
        handle = kernel.spawn(child())
        value = yield handle.join()
        return value + 1

    handle = kernel.spawn(parent())
    kernel.run()
    assert handle.result == 8


def test_yielding_process_handle_joins_it():
    kernel = Kernel()

    def child():
        yield Timeout(1)
        return "c"

    def parent():
        value = yield kernel.spawn(child())
        return value

    handle = kernel.spawn(parent())
    kernel.run()
    assert handle.result == "c"


def test_process_failure_propagates_to_joiner():
    kernel = Kernel()

    def child():
        yield Timeout(1)
        raise RuntimeError("child blew up")

    def parent():
        try:
            yield kernel.spawn(child()).join()
        except RuntimeError as error:
            return str(error)

    handle = kernel.spawn(parent())
    kernel.run()
    assert handle.result == "child blew up"


def test_kill_runs_finally_blocks_and_fails_joiners():
    kernel = Kernel()
    cleaned = []

    def victim():
        try:
            yield Timeout(100)
        finally:
            cleaned.append(True)

    def killer(handle):
        yield Timeout(5)
        handle.kill()

    def joiner(handle):
        try:
            yield handle.join()
        except ProcessKilled:
            return "saw kill"

    victim_handle = kernel.spawn(victim())
    kernel.spawn(killer(victim_handle))
    join_handle = kernel.spawn(joiner(victim_handle))
    kernel.run()
    assert cleaned == [True]
    assert victim_handle.killed
    assert join_handle.result == "saw kill"


def test_kill_finished_process_is_noop():
    kernel = Kernel()

    def quick():
        yield Timeout(1)
        return "done"

    handle = kernel.spawn(quick())
    kernel.run()
    handle.kill()
    assert handle.result == "done"
    assert not handle.killed


def test_run_until_limit_stops_early():
    kernel = Kernel()
    fired = []
    kernel.schedule(10, lambda: fired.append(10))
    kernel.schedule(50, lambda: fired.append(50))
    kernel.run(until=20)
    assert fired == [10]
    assert kernel.now == 20
    kernel.run()
    assert fired == [10, 50]


def test_same_instant_events_fire_fifo():
    kernel = Kernel()
    order = []
    for label in "abc":
        kernel.schedule(5, lambda l=label: order.append(l))
    kernel.run()
    assert order == ["a", "b", "c"]


def test_any_of_reports_winner_index_and_value():
    kernel = Kernel()
    slow, fast = kernel.event(), kernel.event()
    kernel.schedule(10, lambda: slow.settled or slow.trigger("slow"))
    kernel.schedule(2, lambda: fast.trigger("fast"))

    def proc():
        index, value = yield any_of(kernel, [slow, fast])
        return (index, value)

    handle = kernel.spawn(proc())
    kernel.run()
    assert handle.result == (1, "fast")


def test_all_of_collects_all_values():
    kernel = Kernel()
    events = [kernel.event() for _ in range(3)]
    for i, event in enumerate(events):
        kernel.schedule(i + 1, lambda e=event, i=i: e.trigger(i * 10))

    def proc():
        values = yield all_of(kernel, events)
        return values

    handle = kernel.spawn(proc())
    kernel.run()
    assert handle.result == [0, 10, 20]


def test_timeout_event_fires_by_itself():
    kernel = Kernel()

    def proc():
        yield kernel.timeout_event(4, "tick")
        return kernel.now

    handle = kernel.spawn(proc())
    kernel.run()
    assert handle.result == 4


def test_spawn_requires_a_generator():
    kernel = Kernel()
    with pytest.raises(SimulationError):
        kernel.spawn(lambda: None)  # type: ignore[arg-type]


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-1)


def test_run_until_settled_raises_if_drained():
    kernel = Kernel()
    event = kernel.event()
    with pytest.raises(SimulationError):
        kernel.run_until_settled(event)


def test_determinism_two_identical_runs():
    def build():
        kernel = Kernel()
        trace = []

        def worker(label, delay):
            yield Timeout(delay)
            trace.append((kernel.now, label))
            yield Timeout(delay)
            trace.append((kernel.now, label))

        for i in range(5):
            kernel.spawn(worker(f"w{i}", 1 + i * 0.5))
        kernel.run()
        return trace

    assert build() == build()


def test_every_immediate_fires_at_the_current_instant():
    kernel = Kernel()
    firings = []

    def keep_alive():
        yield Timeout(25.0)

    kernel.spawn(keep_alive())
    timer = kernel.every(10.0, lambda: firings.append(kernel.now),
                         immediate=True)
    kernel.run()
    # first firing at t=0, then one interval apart; the timer is a daemon,
    # so nothing fires once the last real process is gone
    assert firings == [0.0, 10.0, 20.0]
    timer.cancel()


def test_every_without_immediate_waits_one_interval():
    kernel = Kernel()
    firings = []

    def keep_alive():
        yield Timeout(25.0)

    kernel.spawn(keep_alive())
    kernel.every(10.0, lambda: firings.append(kernel.now))
    kernel.run()
    assert firings == [10.0, 20.0]
