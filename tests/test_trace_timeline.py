"""Trace recording and timeline rendering."""

import pytest

from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Counter
from repro.structures import SerializingAction, independent_top_level
from repro.trace import TraceRecorder, render_timeline
from repro.trace.timeline import survival_report


@pytest.fixture
def traced_runtime():
    runtime = LocalRuntime()
    recorder = TraceRecorder()
    runtime.add_observer(recorder)
    return runtime, recorder


def test_begin_and_commit_recorded(traced_runtime):
    runtime, recorder = traced_runtime
    with runtime.top_level(name="T"):
        pass
    kinds = [event.kind for event in recorder.events]
    assert kinds == ["begin", "commit"]
    assert recorder.events[0].action_name == "T"


def test_abort_recorded(traced_runtime):
    runtime, recorder = traced_runtime
    with pytest.raises(RuntimeError):
        with runtime.top_level(name="T"):
            raise RuntimeError
    assert [event.kind for event in recorder.events] == ["begin", "abort"]


def test_lock_events_carry_detail(traced_runtime):
    runtime, recorder = traced_runtime
    counter = Counter(runtime, value=0)
    with runtime.top_level(name="T"):
        counter.increment(1)
    locks = recorder.events_of("lock")
    assert len(locks) == 1
    assert "write" in locks[0].detail


def test_spans_nesting_and_outcomes(traced_runtime):
    runtime, recorder = traced_runtime
    with runtime.top_level(name="A") as a:
        with pytest.raises(ValueError):
            with runtime.atomic(name="B"):
                raise ValueError
    report = survival_report(recorder)
    assert report == {"A": "committed", "B": "aborted"}
    spans = recorder.spans()
    child = next(e for e in spans.values() if e["name"] == "B")
    parent = next(e for e in spans.values() if e["name"] == "A")
    assert child["parent"] is not None
    assert child["begin"] > parent["begin"]
    assert child["end"] < parent["end"]


def test_render_timeline_shape(traced_runtime):
    runtime, recorder = traced_runtime
    counter = Counter(runtime, value=0)
    with runtime.top_level(name="A"):
        with runtime.atomic(name="B"):
            counter.increment(1)
    art = render_timeline(recorder, title="fig check")
    lines = art.splitlines()
    assert lines[0] == "fig check"
    assert any("A [" in line and "committed" in line for line in lines)
    assert any("  B [" in line for line in lines)  # indented child
    a_line = next(line for line in lines if line.lstrip().startswith("A ["))
    b_line = next(line for line in lines if line.lstrip().startswith("B ["))
    assert a_line.index("├") < b_line.index("├")   # A starts first
    assert a_line.rindex("┤") > b_line.rindex("┤")  # A ends last


def test_render_structures_trace(traced_runtime):
    """A serializing action plus an independent action render cleanly and
    report the paper's outcomes."""
    runtime, recorder = traced_runtime
    counter = Counter(runtime, value=0)
    ser = SerializingAction(runtime, name="ser")
    with ser.constituent(name="B") as b:
        counter.increment(1, action=b)
    ser.cancel()
    with runtime.top_level(name="app"):
        with independent_top_level(runtime, name="post") as p:
            counter.increment(1, action=p)
    report = survival_report(recorder)
    assert report["B"] == "committed"
    assert report["ser.A"] == "aborted"
    assert report["post"] == "committed"
    art = render_timeline(recorder)
    assert "ser.A" in art and "post" in art


def test_empty_trace_renders(traced_runtime):
    _, recorder = traced_runtime
    assert "empty" in render_timeline(recorder)


def test_clear_resets(traced_runtime):
    runtime, recorder = traced_runtime
    with runtime.top_level(name="T"):
        pass
    recorder.clear()
    assert recorder.events == []
