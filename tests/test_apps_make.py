"""Make: parser, dependency graph, local and distributed engines (§4(iv))."""

import pytest

from repro.apps.make.distributed import DistributedMakeEngine
from repro.apps.make.engine import LocalMakeEngine, LogicalClock
from repro.apps.make.graph import DependencyGraph
from repro.apps.make.makefile import (
    PAPER_EXAMPLE,
    MakefileError,
    parse_makefile,
)
from repro.cluster.cluster import Cluster
from repro.stdobjects.file import FileObject


# -- parser ----------------------------------------------------------------

def test_parse_paper_example():
    makefile = parse_makefile(PAPER_EXAMPLE)
    assert makefile.default_goal == "Test"
    assert makefile.rule("Test").prerequisites == ["Test0.o", "Test1.o"]
    assert makefile.rule("Test0.o").prerequisites == ["Test0.h", "Test1.h", "Test0.c"]
    assert makefile.rule("Test1.o").commands == ["cc -c Test1.c"]


def test_parse_ignores_comments_and_blanks():
    makefile = parse_makefile("# build\n\na: b\n\tcmd\n# done\n")
    assert makefile.rule("a").commands == ["cmd"]


def test_parse_rejects_command_outside_rule():
    with pytest.raises(MakefileError):
        parse_makefile("\tcc -c x.c\n")


def test_parse_rejects_missing_colon():
    with pytest.raises(MakefileError):
        parse_makefile("just a line\n")


def test_parse_rejects_duplicate_target():
    with pytest.raises(MakefileError):
        parse_makefile("a: b\na: c\n")


def test_parse_rejects_empty():
    with pytest.raises(MakefileError):
        parse_makefile("# nothing\n")


# -- graph ------------------------------------------------------------------

def test_graph_sources_and_needed():
    graph = DependencyGraph(parse_makefile(PAPER_EXAMPLE))
    assert graph.sources() == {"Test0.h", "Test1.h", "Test0.c", "Test1.c"}
    assert graph.needed("Test") == {"Test", "Test0.o", "Test1.o"}


def test_graph_build_order_respects_dependencies():
    graph = DependencyGraph(parse_makefile(PAPER_EXAMPLE))
    order = graph.build_order("Test")
    assert order.index("Test0.o") < order.index("Test")
    assert order.index("Test1.o") < order.index("Test")


def test_graph_levels_expose_concurrency():
    graph = DependencyGraph(parse_makefile(PAPER_EXAMPLE))
    levels = graph.levels("Test")
    assert levels == [["Test0.o", "Test1.o"], ["Test"]]
    assert graph.max_concurrency("Test") == 2


def test_graph_detects_cycles():
    with pytest.raises(MakefileError):
        DependencyGraph(parse_makefile("a: b\n\tx\nb: a\n\ty\n"))


def test_graph_unknown_goal():
    graph = DependencyGraph(parse_makefile(PAPER_EXAMPLE))
    with pytest.raises(MakefileError):
        graph.needed("nonexistent")


# -- local engine ----------------------------------------------------------------

def build_files(runtime, makefile, clock_start=1.0):
    graph = DependencyGraph(makefile)
    files = {}
    for name in sorted(graph.sources()):
        files[name] = FileObject(runtime, name, content=f"// {name}",
                                 timestamp=clock_start)
    for name in makefile.targets():
        files[name] = FileObject(runtime, name, content="", timestamp=0.0)
    return files


def test_local_make_rebuilds_everything_initially(runtime):
    makefile = parse_makefile(PAPER_EXAMPLE)
    files = build_files(runtime, makefile)
    report = LocalMakeEngine(runtime, makefile, files).make()
    assert report.completed
    assert set(report.rebuilt) == {"Test", "Test0.o", "Test1.o"}
    assert files["Test"].timestamp > files["Test0.o"].timestamp


def test_local_make_noop_when_consistent(runtime):
    makefile = parse_makefile(PAPER_EXAMPLE)
    files = build_files(runtime, makefile)
    clock = LogicalClock()
    LocalMakeEngine(runtime, makefile, files, clock=clock).make()
    report = LocalMakeEngine(runtime, makefile, files, clock=clock).make()
    assert report.rebuilt == []
    assert set(report.up_to_date) == {"Test", "Test0.o", "Test1.o"}


def test_local_make_partial_rebuild_after_touch(runtime):
    makefile = parse_makefile(PAPER_EXAMPLE)
    files = build_files(runtime, makefile)
    clock = LogicalClock()
    LocalMakeEngine(runtime, makefile, files, clock=clock).make()
    with runtime.top_level():
        files["Test1.c"].touch(clock.next())
    report = LocalMakeEngine(runtime, makefile, files, clock=clock).make()
    assert set(report.rebuilt) == {"Test1.o", "Test"}
    assert report.up_to_date == ["Test0.o"]


def test_local_make_failure_preserves_consistent_targets(runtime):
    """Requirement (iii): completed targets survive the failure."""
    makefile = parse_makefile(PAPER_EXAMPLE)
    files = build_files(runtime, makefile)
    clock = LogicalClock()
    report = LocalMakeEngine(
        runtime, makefile, files, clock=clock, fail_before="Test"
    ).make()
    assert not report.completed and report.failed_at == "Test"
    assert set(report.rebuilt) == {"Test0.o", "Test1.o"}
    assert files["Test0.o"].timestamp > 0
    # resuming finishes only the remaining work
    resume = LocalMakeEngine(runtime, makefile, files, clock=clock).make()
    assert resume.rebuilt == ["Test"]
    assert set(resume.up_to_date) == {"Test0.o", "Test1.o"}


def test_local_make_persists_results(runtime):
    makefile = parse_makefile(PAPER_EXAMPLE)
    files = build_files(runtime, makefile)
    LocalMakeEngine(runtime, makefile, files).make()
    stored = runtime.store.read_committed(files["Test"].uid)
    assert stored.payload == files["Test"].snapshot()


# -- distributed engine -------------------------------------------------------------

def make_distributed(seed=0, compile_duration=20.0, fail_before=None,
                     nodes=("client", "n1", "n2", "n3")):
    cluster = Cluster(seed=seed)
    for name in nodes:
        cluster.add_node(name)
    client = cluster.client("client")
    makefile = parse_makefile(PAPER_EXAMPLE)
    placement = {
        "Test": "n1", "Test0.o": "n2", "Test1.o": "n3",
        "Test0.c": "n2", "Test0.h": "n2",
        "Test1.c": "n3", "Test1.h": "n2",
    }
    engine = DistributedMakeEngine(
        cluster, client, makefile, placement,
        compile_duration=compile_duration, fail_before=fail_before,
    )
    sources = {name: f"// {name}" for name in
               ("Test0.c", "Test0.h", "Test1.c", "Test1.h")}
    cluster.run_process("client", engine.setup(sources))
    return cluster, engine


def test_distributed_make_builds_goal():
    cluster, engine = make_distributed()
    report = cluster.run_process("client", engine.make())
    assert report.completed
    assert set(report.rebuilt) == {"Test", "Test0.o", "Test1.o"}
    assert engine.consistent_targets() == ["Test", "Test0.o", "Test1.o"]


def test_distributed_make_concurrency_speedup():
    """Test0.o and Test1.o compile concurrently: the makespan is well under
    three sequential compilations (requirement (i))."""
    compile_duration = 500.0
    cluster, engine = make_distributed(compile_duration=compile_duration)
    start = cluster.kernel.now
    report = cluster.run_process("client", engine.make())
    makespan = cluster.kernel.now - start
    assert report.completed
    # two dependency levels => ~2 compilations of wall clock (plus rpc
    # overhead), well under the 3 compilations a serial build needs.
    assert makespan < 3 * compile_duration * 0.9
    assert makespan >= 2 * compile_duration


def test_distributed_make_idempotent_second_run():
    cluster, engine = make_distributed()
    cluster.run_process("client", engine.make())
    report = cluster.run_process("client", engine.make())
    assert report.rebuilt == []
    assert set(report.up_to_date) == {"Test", "Test0.o", "Test1.o"}


def test_distributed_make_failure_preserves_stable_results():
    """Requirement (iii), distributed: after a failure before the final
    link, the object files' new states are already in their nodes' stable
    stores."""
    cluster, engine = make_distributed(fail_before="Test")
    report = cluster.run_process("client", engine.make())
    assert not report.completed and report.failed_at == "Test"
    assert engine.stable_timestamp("Test0.o") > 1.0
    assert engine.stable_timestamp("Test1.o") > 1.0
    assert engine.stable_timestamp("Test") == 0.0
    # a fresh engine run (new client, same files) completes the build
    engine.fail_before = None
    resume = cluster.run_process("client", engine.make())
    assert resume.rebuilt == ["Test"]


def test_distributed_make_retries_past_server_crash():
    """A file server crashes mid-build: the affected target's attempt
    aborts, the engine retries after the restart, and the build completes
    (requirement (iii) plus repair-within-finite-time)."""
    cluster, engine = make_distributed(compile_duration=50.0)
    engine.retry_pause = 40.0
    # n3 hosts Test1.o and Test1.c; crash it mid-compile, restart shortly
    cluster.crash_at("n3", cluster.kernel.now + 30.0)
    cluster.restart_at("n3", cluster.kernel.now + 60.0)
    report = cluster.run_process("client", engine.make())
    assert report.completed, report.failed_at
    assert set(report.rebuilt) >= {"Test", "Test0.o", "Test1.o"}
    assert engine.consistent_targets() == ["Test", "Test0.o", "Test1.o"]


def test_distributed_make_gives_up_after_retries_exhausted():
    cluster, engine = make_distributed(compile_duration=50.0)
    engine.build_retries = 1
    engine.retry_pause = 10.0
    cluster.crash("n3")  # never restarted within the attempts
    report = cluster.run_process("client", engine.make())
    assert not report.completed
    assert report.failed_at is not None


def test_distributed_make_touch_forces_partial_rebuild():
    cluster, engine = make_distributed()
    cluster.run_process("client", engine.make())
    cluster.run_process("client", engine.touch_source("Test1.c"))
    report = cluster.run_process("client", engine.make())
    assert set(report.rebuilt) == {"Test1.o", "Test"}
    assert report.up_to_date == ["Test0.o"]
