"""Property-based tests on the lock table's safety invariants.

Hypothesis generates random operation sequences (requests, commits with
per-colour routing, aborts, cancellations) over a small universe of
actions/objects/colours, and after every step the table must satisfy the
conflict-freedom invariants of §5.2.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.colours.colour import Colour
from repro.locking.lock import LockRecord
from repro.locking.modes import LockMode
from repro.locking.owner import StubOwner, is_ancestor
from repro.locking.registry import LockRegistry
from repro.locking.rules import ColouredRules
from repro.util.uid import UidGenerator


def build_world():
    """A fixed small action forest: two trees of three actions each."""
    auids = UidGenerator("a")
    cuids = UidGenerator("c")
    colours = [Colour(cuids.fresh(), name) for name in ("red", "blue")]

    def make(parent=None, palette=None):
        uid = auids.fresh()
        path = (parent.path if parent else ()) + (uid,)
        return StubOwner(uid=uid, path=path,
                         colours=frozenset(palette or colours))

    owners = []
    for _ in range(2):
        root = make()
        child = make(parent=root)
        grandchild = make(parent=child)
        owners.extend([root, child, grandchild])
    return owners, colours


OWNERS, COLOURS = build_world()
OUIDS = [UidGenerator("obj").fresh() for _ in range(1)]  # placeholder


def check_invariants(table):
    """The §5.2 safety conditions over the granted records."""
    holders = table.holders
    for record in holders:
        for other in holders:
            if record is other:
                continue
            related = (is_ancestor(record.owner, other.owner)
                       or is_ancestor(other.owner, record.owner))
            if record.mode is LockMode.WRITE and other.mode is LockMode.WRITE:
                # concurrent writes only within one ancestry chain, and in
                # one colour
                assert related, "write/write between strangers"
                assert record.colour == other.colour, \
                    "write locks in two colours"
            elif LockMode.WRITE in (record.mode, other.mode) or \
                    LockMode.EXCLUSIVE_READ in (record.mode, other.mode):
                assert related, "exclusive lock shared with a stranger"
    # no owner holds two records of the same colour (they merge)
    seen = set()
    for record in holders:
        key = (record.owner.uid, record.colour)
        assert key not in seen, "duplicate (owner, colour) record"
        seen.add(key)


ops = st.lists(
    st.tuples(
        st.sampled_from(["request", "abort", "commit_release", "commit_up",
                         "cancel_owner"]),
        st.integers(0, len(OWNERS) - 1),          # owner index
        st.sampled_from([m for m in LockMode]),   # mode
        st.integers(0, 1),                        # colour index
    ),
    min_size=1, max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(ops)
def test_table_never_grants_conflicting_locks(operations):
    registry = LockRegistry(ColouredRules())
    obj_uid = UidGenerator("obj").fresh()
    table = registry.table(obj_uid)
    for op, owner_index, mode, colour_index in operations:
        owner = OWNERS[owner_index]
        colour = COLOURS[colour_index]
        if op == "request":
            registry.request(owner, obj_uid, mode, colour)
        elif op == "abort":
            registry.release_action(owner.uid)
        elif op == "cancel_owner":
            registry.cancel_waiting(owner.uid, "test")
        elif op == "commit_release":
            registry.transfer_on_commit(owner.uid, lambda c: None)
        elif op == "commit_up":
            # route every colour to the owner's parent, when one exists
            parent_uid = owner.path[-2] if len(owner.path) > 1 else None
            parent = next(
                (o for o in OWNERS if o.uid == parent_uid), None
            )
            registry.transfer_on_commit(owner.uid, lambda c: parent)
        live_table = registry._tables.get(obj_uid)
        if live_table is not None:
            check_invariants(live_table)


@settings(max_examples=100, deadline=None)
@given(ops)
def test_granted_plus_queued_requests_conserved(operations):
    """Every request eventually ends in exactly one terminal state (granted
    record, queued, or settled negatively) — none vanish silently."""
    registry = LockRegistry(ColouredRules())
    obj_uid = UidGenerator("obj").fresh()
    outcomes = []
    submitted = 0
    for op, owner_index, mode, colour_index in operations:
        owner = OWNERS[owner_index]
        colour = COLOURS[colour_index]
        if op == "request":
            submitted += 1
            registry.request(owner, obj_uid, mode, colour,
                             on_complete=lambda r: outcomes.append(r.status))
        elif op == "abort":
            registry.release_action(owner.uid)
        elif op == "cancel_owner":
            registry.cancel_waiting(owner.uid, "test")
        elif op in ("commit_release", "commit_up"):
            registry.transfer_on_commit(owner.uid, lambda c: None)
    table = registry._tables.get(obj_uid)
    still_queued = len(table.queue) if table is not None else 0
    assert len(outcomes) + still_queued == submitted
