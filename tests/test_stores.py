"""Object stores: committed states, shadows, crash behaviour."""

import pytest

from repro.errors import ObjectNotFound
from repro.store.interface import StoredState
from repro.store.memory import VolatileStore
from repro.store.stable import StableStore
from repro.util.uid import UidGenerator

uids = UidGenerator("obj")


def _state(uid, payload=b"x", type_name="t"):
    return StoredState(uid, type_name, payload)


@pytest.mark.parametrize("store_cls", [VolatileStore, StableStore])
def test_write_then_read_committed(store_cls):
    store = store_cls()
    uid = uids.fresh()
    store.write_committed(_state(uid, b"hello"))
    assert store.read_committed(uid).payload == b"hello"
    assert store.contains(uid)


@pytest.mark.parametrize("store_cls", [VolatileStore, StableStore])
def test_read_missing_raises(store_cls):
    with pytest.raises(ObjectNotFound):
        store_cls().read_committed(uids.fresh())


@pytest.mark.parametrize("store_cls", [VolatileStore, StableStore])
def test_overwrite_replaces(store_cls):
    store = store_cls()
    uid = uids.fresh()
    store.write_committed(_state(uid, b"v1"))
    store.write_committed(_state(uid, b"v2"))
    assert store.read_committed(uid).payload == b"v2"


@pytest.mark.parametrize("store_cls", [VolatileStore, StableStore])
def test_remove(store_cls):
    store = store_cls()
    uid = uids.fresh()
    store.write_committed(_state(uid))
    assert store.remove(uid)
    assert not store.contains(uid)
    assert not store.remove(uid)


@pytest.mark.parametrize("store_cls", [VolatileStore, StableStore])
def test_shadow_commit_promotes(store_cls):
    store = store_cls()
    uid = uids.fresh()
    store.write_committed(_state(uid, b"old"))
    store.write_shadow(_state(uid, b"new"))
    assert store.read_committed(uid).payload == b"old"  # not yet visible
    assert store.commit_shadow(uid)
    assert store.read_committed(uid).payload == b"new"
    assert store.read_shadow(uid) is None


@pytest.mark.parametrize("store_cls", [VolatileStore, StableStore])
def test_shadow_discard(store_cls):
    store = store_cls()
    uid = uids.fresh()
    store.write_committed(_state(uid, b"old"))
    store.write_shadow(_state(uid, b"new"))
    assert store.discard_shadow(uid)
    assert store.read_committed(uid).payload == b"old"
    assert not store.commit_shadow(uid)  # nothing left to promote


def test_volatile_store_loses_everything_on_crash():
    store = VolatileStore()
    uid = uids.fresh()
    store.write_committed(_state(uid))
    store.write_shadow(_state(uid, b"s"))
    store.crash()
    assert not store.contains(uid)
    assert store.read_shadow(uid) is None


def test_stable_store_survives_crash():
    store = StableStore()
    uid = uids.fresh()
    store.write_committed(_state(uid, b"durable"))
    store.write_shadow(_state(uid, b"prepared"))
    store.crash()
    assert store.read_committed(uid).payload == b"durable"
    assert store.read_shadow(uid).payload == b"prepared"  # shadows are on disk too


def test_uids_listing_is_sorted():
    store = StableStore()
    created = [uids.fresh() for _ in range(5)]
    for uid in reversed(created):
        store.write_committed(_state(uid))
    assert list(store.uids()) == sorted(created)
