"""§5.1's reduction property, tested exhaustively:

"If all the actions in a coloured system possess the same single colour
then the system reverts to being just a normal atomic action system."

Hypothesis drives identical random schedules against a conventional-rules
registry and a coloured-rules registry (everyone one colour); every grant,
queueing decision, refusal, wake-up and final holder set must coincide.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.colours.colour import Colour
from repro.locking.modes import LockMode
from repro.locking.owner import StubOwner
from repro.locking.registry import LockRegistry
from repro.locking.rules import ColouredRules, ConventionalRules
from repro.util.uid import UidGenerator


def build_world():
    auids = UidGenerator("a")
    colour = Colour(UidGenerator("c").fresh(), "only")

    def make(parent=None):
        uid = auids.fresh()
        path = (parent.path if parent else ()) + (uid,)
        return StubOwner(uid=uid, path=path, colours=frozenset((colour,)))

    owners = []
    for _ in range(2):
        root = make()
        mid = make(parent=root)
        owners.extend([root, mid, make(parent=mid)])
    return owners, colour


OWNERS, ONLY = build_world()

ops = st.lists(
    st.tuples(
        st.sampled_from(["request", "abort", "commit"]),
        st.integers(0, len(OWNERS) - 1),
        st.sampled_from(list(LockMode)),
        st.integers(0, 2),   # object index
    ),
    min_size=1, max_size=80,
)


def run_schedule(rules, operations):
    registry = LockRegistry(rules)
    object_uids = [UidGenerator(f"o{i}").fresh() for i in range(3)]
    trace = []
    for op, owner_index, mode, obj_index in operations:
        owner = OWNERS[owner_index]
        obj_uid = object_uids[obj_index]
        if op == "request":
            registry.request(
                owner, obj_uid, mode, ONLY,
                on_complete=lambda r, o=owner_index: trace.append(
                    ("settle", o, r.status.value)
                ),
            )
        elif op == "abort":
            registry.release_action(owner.uid)
            trace.append(("abort", owner_index))
        elif op == "commit":
            parent_uid = owner.path[-2] if len(owner.path) > 1 else None
            parent = next((o for o in OWNERS if o.uid == parent_uid), None)
            registry.transfer_on_commit(owner.uid, lambda c: parent)
            trace.append(("commit", owner_index))
    # final holder fingerprint
    fingerprint = []
    for obj_uid in object_uids:
        table = registry._tables.get(obj_uid)
        if table is None:
            continue
        fingerprint.append((
            str(obj_uid),
            sorted((str(r.owner.uid), r.mode.value) for r in table.holders),
            [str(q.owner.uid) for q in table.queue],
        ))
    return trace, fingerprint


@settings(max_examples=200, deadline=None)
@given(ops)
def test_single_colour_system_equals_conventional(operations):
    coloured = run_schedule(ColouredRules(), operations)
    conventional = run_schedule(ConventionalRules(), operations)
    assert coloured == conventional
