"""Tracing cluster actions on simulated time."""

from repro.apps.make.distributed import DistributedMakeEngine
from repro.apps.make.makefile import PAPER_EXAMPLE, parse_makefile
from repro.cluster.cluster import Cluster
from repro.trace import TraceRecorder, render_timeline
from repro.trace.timeline import survival_report


def test_cluster_actions_traced_on_sim_time():
    cluster = Cluster(seed=0)
    for name in ("home", "server"):
        cluster.add_node(name)
    client = cluster.client("home")
    recorder = TraceRecorder(tick_source=lambda: cluster.kernel.now)
    client.add_observer(recorder)

    def app():
        ref = yield from client.create("server", "counter", value=0)
        action = client.top_level("T")
        yield from client.invoke(action, ref, "increment", 1)
        yield from client.commit(action)

    cluster.run_process("home", app())
    begin = next(e for e in recorder.events if e.kind == "begin")
    commit = next(e for e in recorder.events if e.kind == "commit")
    assert commit.tick > begin.tick           # real simulated duration
    assert survival_report(recorder) == {"T": "committed"}


def test_distributed_make_timeline_shows_concurrent_builds():
    """The fig. 8 picture, from a real run: the two .o targets' serializing
    actions overlap in simulated time; the link follows them."""
    cluster = Cluster(seed=0)
    for node in ("ws", "n1", "n2", "n3"):
        cluster.add_node(node)
    client = cluster.client("ws")
    recorder = TraceRecorder(tick_source=lambda: cluster.kernel.now)
    client.add_observer(recorder)
    placement = {
        "Test": "n1",
        "Test0.o": "n2", "Test0.c": "n2", "Test0.h": "n2",
        "Test1.o": "n3", "Test1.c": "n3", "Test1.h": "n2",
    }
    engine = DistributedMakeEngine(
        cluster, client, parse_makefile(PAPER_EXAMPLE), placement,
        compile_duration=100.0,
    )
    sources = {n: f"// {n}" for n in
               ("Test0.c", "Test0.h", "Test1.c", "Test1.h")}
    cluster.run_process("ws", engine.setup(sources))
    report = cluster.run_process("ws", engine.make())
    assert report.completed

    spans = recorder.spans()
    def span_of(prefix):
        return next(e for e in spans.values()
                    if e["name"].startswith(prefix) and e["name"].endswith(".A"))

    build0 = span_of("make:Test0.o")
    build1 = span_of("make:Test1.o")
    link = span_of("make:Test.")
    # concurrent object builds: the spans overlap
    assert build0["begin"] < build1["end"] and build1["begin"] < build0["end"]
    # the link starts only after both finished
    assert link["begin"] >= max(build0["end"], build1["end"]) - 1e-9
    art = render_timeline(recorder, title="fig. 8 from execution", width=70)
    assert "make:Test0.o" in art and "make:Test1.o" in art
