"""The soak observatory: bounded retention, segment rotation, chaos arms.

Unit tests pin the retention primitives the soak leans on (tracer ring,
metrics series cap + snapshot-and-diff deltas, sampler point listeners,
flight-recorder drain/freeze).  The module-scoped fixtures then run the
acceptance soaks once each — the faulty two-sim-hour arm rotated and
unrotated (the reference), plus two clean horizons — and every
aggregation / attribution / memory-bound assertion reads from those runs.
"""

import json
import os

import pytest

from repro.obs import Observability
from repro.obs.audit.__main__ import main as audit_main
from repro.obs.metrics import (
    OVERFLOW_LABEL,
    MetricsRegistry,
    dump_delta,
)
from repro.obs.perf import FlightRecorder, TimeSeriesSampler
from repro.obs.perf.recorder import MAX_SNAPSHOTS
from repro.obs.report import aggregate_documents
from repro.obs.report import main as report_main
from repro.obs.slo.__main__ import main as slo_main
from repro.obs.soak import (
    SUMMARY_NAME,
    SoakRunner,
    segment_name,
    segment_paths,
)
from repro.obs.soak.__main__ import main as soak_main
from repro.obs.tracing import Tracer


# -- tracer ring (bounded finished-span retention) -----------------------------

def _spans(tracer, count, finish=True):
    spans = [tracer.start_span(f"s{index}") for index in range(count)]
    if finish:
        for span in spans:
            span.finish()
    return spans


def test_tracer_ring_evicts_oldest_finished_spans():
    dropped_reports = []
    tracer = Tracer(max_finished_spans=4, on_drop=dropped_reports.append)
    _spans(tracer, 10)
    # amortised batches: retention never exceeds 1.5x the cap
    assert len(tracer.spans) <= 6
    assert tracer.dropped == 10 - len(tracer.spans)
    assert sum(dropped_reports) == tracer.dropped
    # eviction is oldest-first: the survivors are the newest spans
    assert [span.name for span in tracer.spans] == [
        f"s{index}" for index in range(10 - len(tracer.spans), 10)]


def test_tracer_ring_never_evicts_open_spans():
    tracer = Tracer(max_finished_spans=2)
    open_span = tracer.start_span("open")
    _spans(tracer, 8)
    assert open_span in tracer.spans
    assert all(span.finished or span is open_span
               for span in tracer.spans)


def test_tracer_under_cap_is_byte_identical_to_unbounded():
    capped, unbounded = Tracer(max_finished_spans=100), Tracer()
    for tracer in (capped, unbounded):
        parent = tracer.start_span("root", kind="action")
        tracer.start_span("child", parent=parent).finish()
        parent.finish()
    assert capped.to_dicts() == unbounded.to_dicts()
    assert capped.dropped == 0


def test_tracer_rejects_silly_cap():
    with pytest.raises(ValueError, match="max_finished_spans"):
        Tracer(max_finished_spans=0)


def test_drain_finished_removes_only_finished_spans():
    tracer = Tracer(max_finished_spans=8)
    open_span = tracer.start_span("open")
    _spans(tracer, 3)
    drained = tracer.drain_finished()
    assert [span.name for span in drained] == ["s0", "s1", "s2"]
    assert tracer.spans == [open_span]
    # the finished count reset: draining re-arms the cap from zero
    _spans(tracer, 3)
    assert tracer.dropped == 0


def test_hub_counts_dropped_spans(tmp_path):
    hub = Observability(max_finished_spans=2)
    for index in range(8):
        hub.span(f"s{index}").finish()
    assert hub.tracer.dropped > 0
    assert hub.metrics.value("spans_dropped_total") == hub.tracer.dropped


# -- metrics series cap + deltas ----------------------------------------------

def test_metrics_cap_folds_overflow_series_preserving_sums():
    registry = MetricsRegistry(max_series_per_metric=2)
    for index in range(6):
        registry.counter("ops_total", colour=f"c{index}").inc(1.0)
    rows = registry.dump()["counters"]
    ops = [row for row in rows if row["name"] == "ops_total"]
    # two real series plus one overflow series, sums exact
    assert len(ops) == 3
    assert sum(row["value"] for row in ops) == 6.0
    overflow = [row for row in ops
                if row["labels"] == {"colour": OVERFLOW_LABEL}]
    assert overflow[0]["value"] == 4.0
    folded = [row for row in rows
              if row["name"] == "metrics_series_folded_total"]
    assert folded == [{"name": "metrics_series_folded_total",
                       "labels": {"kind": "counter", "metric": "ops_total"},
                       "value": 4.0}]
    assert registry.series_count() == 3


def test_uncapped_registry_dump_carries_no_fold_rows():
    registry = MetricsRegistry()
    for index in range(6):
        registry.counter("ops_total", colour=f"c{index}").inc(1.0)
    names = {row["name"] for row in registry.dump()["counters"]}
    assert "metrics_series_folded_total" not in names


def test_unlabelled_series_never_fold():
    registry = MetricsRegistry(max_series_per_metric=1)
    registry.counter("a").inc()
    registry.counter("b").inc()
    assert registry.value("a") == 1.0
    assert registry.value("b") == 1.0


def test_dump_delta_telescopes_back_to_cumulative_totals():
    registry = MetricsRegistry()
    deltas = []
    baseline = registry.dump()
    for window in range(3):
        registry.counter("ops_total", colour="c1").inc(2.0)
        registry.gauge("depth").set(float(window))
        registry.histogram("lat", colour="c1").observe(10.0 * (window + 1))
        current = registry.dump()
        deltas.append({"metrics": dump_delta(current, baseline)})
        baseline = current

    # a window's delta is exactly that window's activity
    window_hist = deltas[1]["metrics"]["histograms"][0]
    assert window_hist["count"] == 1
    assert window_hist["sum"] == 20.0
    assert window_hist["mean"] == 20.0

    merged = aggregate_documents(deltas)["metrics"]
    final = registry.dump()
    counters = {row["name"]: row["value"] for row in merged["counters"]}
    assert counters["ops_total"] == 6.0
    gauges = {row["name"]: row["value"] for row in merged["gauges"]}
    assert gauges["depth"] == 2.0          # gauge deltas telescope too
    hist = merged["histograms"][0]
    reference = final["histograms"][0]
    assert hist["count"] == reference["count"]
    assert hist["sum"] == reference["sum"]
    assert hist["min"] == reference["min"]
    assert hist["max"] == reference["max"]


def test_dump_delta_omits_quiet_rows():
    registry = MetricsRegistry()
    registry.counter("hot").inc()
    registry.counter("cold").inc()
    baseline = registry.dump()
    registry.counter("hot").inc()
    delta = dump_delta(registry.dump(), baseline)
    assert [row["name"] for row in delta["counters"]] == ["hot"]
    assert delta["histograms"] == []


# -- sampler point listeners + windowed means ---------------------------------

def test_sampler_point_listener_sees_every_point_and_windowed_mean():
    hub = Observability()
    sampler = TimeSeriesSampler(hub, interval=1.0)
    seen = []
    sampler.add_point_listener(seen.append)

    hub.observe("commit_latency", 10.0, colour="c1")
    hub.observe("commit_latency", 20.0, colour="c1")
    sampler.sample()
    hub.observe("commit_latency", 90.0, colour="c1")
    sampler.sample()

    assert len(seen) == 2
    first, second = (point["colours"]["c1"] for point in seen)
    assert first["commit_latency_count"] == 2.0
    assert first["commit_latency_mean"] == 15.0
    # the second window's mean covers only the new observation
    assert second["commit_latency_count"] == 1.0
    assert second["commit_latency_mean"] == 90.0


def test_sampler_point_listener_errors_propagate():
    hub = Observability()
    sampler = TimeSeriesSampler(hub, interval=1.0)
    sampler.add_point_listener(
        lambda point: (_ for _ in ()).throw(RuntimeError("boom")))
    with pytest.raises(RuntimeError, match="boom"):
        sampler.sample()


# -- flight recorder drain / freeze -------------------------------------------

def test_recorder_freeze_is_bounded_and_take_snapshots_rearms():
    hub = Observability()
    recorder = FlightRecorder(hub, capacity=8)
    hub.emit("twopc.begin", txn="t1")
    for index in range(MAX_SNAPSHOTS):
        assert recorder.freeze(f"f{index}") is True
    assert recorder.freeze("over") is False
    taken = recorder.take_snapshots()
    assert [snapshot["finding"] for snapshot in taken] == [
        f"f{index}" for index in range(MAX_SNAPSHOTS)]
    assert taken[0]["events"][0]["kind"] == "twopc.begin"
    # cap re-armed: the next segment may freeze its own snapshots
    assert recorder.freeze("next-segment") is True


def test_recorder_drain_empties_ring_but_keeps_counters():
    hub = Observability()
    recorder = FlightRecorder(hub, capacity=2)
    for index in range(5):
        hub.emit("twopc.begin", txn=f"t{index}")
    assert recorder.evicted == 3
    drained = recorder.drain()
    assert [entry["labels"]["txn"] for entry in drained] == ["t3", "t4"]
    assert recorder.ring_events() == []
    assert recorder.evicted == 3
    hub.emit("twopc.begin", txn="t5")
    assert len(recorder.ring_events()) == 1


# -- the acceptance soaks (module-scoped: each runs once) ----------------------

_SOAK = dict(seed=21, horizon=7200.0, segment_every=1800.0,
             sample_interval=20.0)


@pytest.fixture(scope="module")
def faulty_soak(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("soak-faulty"))
    summary = SoakRunner(out_dir=out, arm="faulty", **_SOAK).run()
    return summary, out


@pytest.fixture(scope="module")
def faulty_reference():
    """The same faulty arm, never rotated: the unbounded ground truth."""
    runner = SoakRunner(out_dir=None, arm="faulty", rotate=False, **_SOAK)
    return runner, runner.run()


@pytest.fixture(scope="module")
def clean_soak(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("soak-clean"))
    summary = SoakRunner(out_dir=out, arm="clean", **_SOAK).run()
    return summary, out


@pytest.fixture(scope="module")
def clean_half_soak(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("soak-clean-half"))
    params = dict(_SOAK, horizon=3600.0)
    summary = SoakRunner(out_dir=out, arm="clean", **params).run()
    return summary, out


def _segment_documents(out):
    documents = []
    for path in segment_paths(out):
        with open(path, "r", encoding="utf-8") as handle:
            documents.append(json.load(handle))
    return documents


def test_soak_rejects_bad_configuration(tmp_path):
    with pytest.raises(ValueError, match="unknown arm"):
        SoakRunner(arm="chaotic-good")
    with pytest.raises(ValueError, match="must all be > 0"):
        SoakRunner(horizon=0.0)
    with pytest.raises(ValueError, match="must all be > 0"):
        SoakRunner(segment_every=-1.0)


def test_faulty_soak_streams_at_least_four_segments(faulty_soak):
    summary, out = faulty_soak
    paths = segment_paths(out)
    assert len(paths) >= 4
    assert summary["segments"] == [os.path.basename(path)
                                   for path in paths]
    assert [os.path.basename(path) for path in paths] == [
        segment_name(index) for index in range(len(paths))]
    with open(os.path.join(out, SUMMARY_NAME), encoding="utf-8") as handle:
        on_disk = json.load(handle)
    assert on_disk == summary
    assert summary["format"] == "repro-soak/1"
    # segment windows tile the run: each picks up where the last ended
    documents = _segment_documents(out)
    edges = [(doc["extra"]["segment"]["start_tick"],
              doc["extra"]["segment"]["end_tick"]) for doc in documents]
    assert edges[0][0] == 0.0
    for (_, end), (start, _) in zip(edges, edges[1:]):
        assert start == end


def test_fault_burst_trips_latency_slo_and_is_attributed(faulty_soak):
    summary, _out = faulty_soak
    assert summary["exit_code"] == 2
    assert summary["audit_findings"] == 0
    assert summary["breach_total"] > 0
    assert summary["active_breaches"] == []      # everything recovered
    by_name = {}
    for entry in summary["breaches"]:
        by_name.setdefault(entry["objective"], []).append(entry)
    assert "commit-latency" in by_name
    # the breach window sits inside the fault burst (35%..50% of the
    # horizon) plus the long-window recovery tail
    burst_start = 0.35 * _SOAK["horizon"]
    burst_end = burst_start + 0.15 * _SOAK["horizon"]
    tail = 12 * _SOAK["sample_interval"]
    for entry in by_name["commit-latency"]:
        assert burst_start <= entry["start_tick"] <= burst_end + tail
        assert entry["end_tick"] is not None
        assert entry["end_tick"] <= burst_end + tail
        assert entry["peak_burn"] > 1.0


def test_breach_freezes_the_flight_ring_into_its_segment(faulty_soak):
    _summary, out = faulty_soak
    snapshots = [snapshot
                 for doc in _segment_documents(out)
                 for snapshot in doc["extra"]["flight_recorder"]
                 ["finding_snapshots"]]
    breaches = [s for s in snapshots if s["kind"] == "slo-breach"]
    assert breaches
    assert all(snapshot["events"] for snapshot in breaches)
    # the frozen ring carries the breach context itself
    assert any("commit-latency" in snapshot["finding"]
               for snapshot in breaches)


def test_clean_soak_exits_zero_with_no_breaches(clean_soak):
    summary, _out = clean_soak
    assert summary["exit_code"] == 0
    assert summary["breach_total"] == 0
    assert summary["audit_findings"] == 0
    assert summary["committed"] > 0
    assert all(verdict["breaching"] == []
               for verdict in summary["segment_verdicts"])


def test_segments_aggregate_to_the_unrotated_reference(faulty_soak,
                                                       faulty_reference):
    """Rotation loses nothing: summed segment deltas equal the cumulative
    totals of the identical run that never rotated."""
    _summary, out = faulty_soak
    runner, _reference_summary = faulty_reference
    documents = _segment_documents(out)
    merged = aggregate_documents(documents)["metrics"]
    reference = runner.cluster.obs.metrics.dump()

    def by_key(rows):
        return {(row["name"], tuple(sorted(row["labels"].items()))): row
                for row in rows}

    for section in ("counters", "gauges"):
        merged_rows = by_key(merged[section])
        reference_rows = by_key(reference[section])
        assert set(merged_rows) == set(reference_rows)
        for key, row in reference_rows.items():
            assert merged_rows[key]["value"] == pytest.approx(
                row["value"]), key
    merged_hists = by_key(merged["histograms"])
    for key, row in by_key(reference["histograms"]).items():
        assert merged_hists[key]["count"] == row["count"], key
        assert merged_hists[key]["sum"] == pytest.approx(row["sum"]), key

    # spans and audit events partition exactly across segments
    tracer = runner.cluster.obs.tracer
    segment_spans = sum(len(doc["spans"]) for doc in documents)
    assert segment_spans == len(tracer.finished_spans())
    segment_events = sum(len(doc["events"]) for doc in documents)
    assert segment_events == len(
        runner.cluster.obs.auditor.event_dicts())
    # ... and without overlap: every (segment) event seq is unique
    seqs = [event["seq"] for doc in documents for event in doc["events"]]
    assert len(seqs) == len(set(seqs))


def test_rotation_bounds_peak_retention(faulty_soak, faulty_reference):
    summary, _out = faulty_soak
    runner, reference_summary = faulty_reference
    peaks = summary["peaks"]
    # static caps hold
    assert peaks["flight_ring"] <= 1024
    assert peaks["sampler_points"] <= 1024
    # rotated retention stays well under the unrotated run's final sizes
    assert peaks["spans"] < len(runner.cluster.obs.tracer.spans) / 2
    assert peaks["audit_events"] < len(
        runner.cluster.obs.auditor.event_dicts()) / 2
    assert reference_summary["peaks"]["spans"] > 2 * peaks["spans"]


def test_peak_retention_is_horizon_independent(clean_soak, clean_half_soak):
    """Doubling the horizon must not grow retained memory: peaks are a
    function of the segment period, not the run length."""
    full, _ = clean_soak
    half, _ = clean_half_soak
    for key in ("spans", "audit_events", "flight_ring", "metric_series"):
        assert full["peaks"][key] <= half["peaks"][key] * 1.25, key
    assert full["peaks"]["sampler_points"] <= 1024


def test_consoles_aggregate_a_segment_directory(faulty_soak, clean_soak,
                                                capsys):
    _summary, faulty_out = faulty_soak
    _clean_summary, clean_out = clean_soak
    assert report_main([faulty_out, "--metrics-only"]) == 0
    out = capsys.readouterr().out
    assert "aggregating" in out
    assert "actions_committed_total" in out
    assert audit_main([faulty_out]) == 0
    assert "clean" in capsys.readouterr().out
    assert slo_main([clean_out]) == 0
    capsys.readouterr()
    assert slo_main([faulty_out]) == 2
    assert "commit-latency" in capsys.readouterr().out


def test_directory_without_segments_is_unusable_input(tmp_path, capsys):
    empty = str(tmp_path / "empty")
    os.makedirs(empty)
    for main in (report_main, audit_main, slo_main):
        assert main([empty]) == 1
        assert "without" in capsys.readouterr().err


def test_soak_cli_renders_summary_and_writes_segments(tmp_path, capsys):
    out = str(tmp_path / "out")
    code = soak_main(["--arm", "clean", "--horizon", "300",
                      "--segment-every", "100", "--interval", "10",
                      "--seed", "7", "--out", out])
    assert code == 0
    rendered = capsys.readouterr().out
    assert "arm clean" in rendered
    assert "0 SLO breach(es)" in rendered
    assert segment_paths(out)
    assert os.path.exists(os.path.join(out, SUMMARY_NAME))


def test_soak_cli_json_summary_is_deterministic(tmp_path, capsys):
    argv = ["--arm", "faulty", "--horizon", "400", "--segment-every",
            "150", "--interval", "10", "--no-rotate", "--json"]
    soak_main(list(argv))
    first = json.loads(capsys.readouterr().out)
    soak_main(list(argv))
    second = json.loads(capsys.readouterr().out)
    assert first == second


def test_soak_cli_rejects_out_path_that_is_a_file(tmp_path, capsys):
    target = tmp_path / "occupied"
    target.write_text("x")
    assert soak_main(["--arm", "clean", "--out", str(target)]) == 1
    assert "not a directory" in capsys.readouterr().err
