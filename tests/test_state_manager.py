"""StateManager and the @operation declaration machinery."""

import pytest

from repro.errors import CorruptState, ObjectNotFound
from repro.locking.modes import LockMode
from repro.objects.lockable import operation
from repro.objects.state import ObjectState
from repro.objects.state_manager import StateManager
from repro.stdobjects import Counter, Register
from repro.store.stable import StableStore
from repro.util.uid import UidGenerator

uids = UidGenerator("obj")


class Point(StateManager):
    type_name = "point"

    def __init__(self, uid, x=0, y=0):
        super().__init__(uid)
        self.x, self.y = x, y

    def save_state(self, state: ObjectState) -> None:
        state.pack_int(self.x)
        state.pack_int(self.y)

    def restore_state(self, state: ObjectState) -> None:
        self.x = state.unpack_int()
        self.y = state.unpack_int()


def test_snapshot_restore_roundtrip():
    point = Point(uids.fresh(), 3, -4)
    clone = Point(uids.fresh())
    clone.restore_snapshot(point.snapshot())
    assert (clone.x, clone.y) == (3, -4)


def test_persist_and_activate():
    store = StableStore()
    uid = uids.fresh()
    Point(uid, 7, 8).persist_to(store)
    revived = Point(uid)
    revived.activate_from(store)
    assert (revived.x, revived.y) == (7, 8)


def test_activate_missing_raises():
    with pytest.raises(ObjectNotFound):
        Point(uids.fresh()).activate_from(StableStore())


def test_activate_type_mismatch_raises():
    """Loading a state recorded under a different type must fail loudly."""
    store = StableStore()
    uid = uids.fresh()
    Point(uid, 1, 2).persist_to(store)

    class NotAPoint(StateManager):
        type_name = "not_a_point"

        def save_state(self, state):
            pass

        def restore_state(self, state):
            pass

    with pytest.raises(CorruptState):
        NotAPoint(uid).activate_from(store)


def test_stored_state_carries_identity_and_type():
    point = Point(uids.fresh(), 1, 1)
    stored = point.stored_state()
    assert stored.object_uid == point.uid
    assert stored.type_name == "point"


# -- @operation metadata --------------------------------------------------------

def test_operation_decorator_exposes_mode_and_body():
    assert Counter.increment.__repro_mode__ is LockMode.WRITE
    assert Counter.get.__repro_mode__ is LockMode.READ
    # the undecorated body mutates without locking (server-side use)
    counter = Counter.__new__(Counter)
    counter.value = 5
    assert Counter.increment.__repro_body__(counter, 3) == 8


def test_operation_wrapper_requires_an_action(runtime):
    from repro.errors import NoCurrentAction
    counter = Counter(runtime, value=0)
    with pytest.raises(NoCurrentAction):
        counter.increment(1)   # no ambient action, none passed


def test_lock_convenience_wrappers(runtime):
    register = Register(runtime, value="x")
    with runtime.top_level() as action:
        assert register.read_lock(action=action) is action
        assert runtime.locks.holds(action.uid, register.uid, LockMode.READ)
        register.write_lock(action=action)
        assert runtime.locks.holds(action.uid, register.uid, LockMode.WRITE)


def test_exclusive_read_lock_wrapper(runtime):
    register = Register(runtime, value="x")
    with runtime.top_level() as action:
        register.exclusive_read_lock(action=action)
        assert runtime.locks.holds(action.uid, register.uid,
                                   LockMode.EXCLUSIVE_READ)
