"""Exporters: Chrome trace schema, save/load round-trip, report CLI."""

import json

from repro.cluster.cluster import Cluster
from repro.obs import Tracer, chrome_trace, load_trace, span_tree, text_report
from repro.obs.report import main as report_main


def run_two_node_commit():
    cluster = Cluster(seed=3)
    cluster.add_node("alpha")
    cluster.add_node("beta")
    client = cluster.client("alpha")

    def app():
        ref = yield from client.create("beta", "counter", value=0)
        action = client.top_level("transfer")
        yield from client.invoke(action, ref, "increment", 5)
        yield from client.commit(action)

    cluster.run_process("alpha", app())
    return cluster


def test_chrome_trace_schema_and_roundtrip(tmp_path):
    cluster = run_two_node_commit()
    document = cluster.obs.chrome_trace()

    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    assert events, "empty chrome trace"

    metadata = [e for e in events if e["ph"] == "M"]
    names = {e["args"]["name"] for e in metadata}
    assert {"alpha", "beta"} <= names
    assert all(e["name"] == "process_name" for e in metadata)

    complete = [e for e in events if e["ph"] == "X"]
    for event in complete:
        assert set(event) >= {"name", "cat", "ts", "dur", "pid", "tid", "args"}
        assert event["dur"] >= 0
        assert "span_id" in event["args"]

    # the parent/child tree survives the export: parent ids resolve and the
    # connected tree includes spans from more than one pid (= node).
    by_id = {e["args"]["span_id"]: e for e in complete}
    root = next(e for e in complete if e["name"] == "action:transfer")
    tree_pids = set()
    for event in complete:
        if event["args"]["trace_id"] != root["args"]["trace_id"]:
            continue
        tree_pids.add(event["pid"])
        parent_id = event["args"]["parent_id"]
        if parent_id is not None:
            assert parent_id in by_id
    assert len(tree_pids) >= 2

    # and it is valid JSON end-to-end
    path = tmp_path / "chrome.json"
    path.write_text(json.dumps(document))
    assert json.loads(path.read_text()) == document


def test_save_and_load_trace_roundtrip(tmp_path):
    cluster = run_two_node_commit()
    path = tmp_path / "run.trace.json"
    saved = cluster.obs.save(str(path), extra={"scenario": "unit"})
    loaded = load_trace(str(path))
    assert loaded == saved
    assert loaded["format"] == "repro-obs/1"
    assert loaded["extra"]["scenario"] == "unit"
    assert any(s["name"] == "action:transfer" for s in loaded["spans"])
    assert loaded["metrics"]["counters"]


def test_span_tree_renders_nesting_from_dicts():
    tracer = Tracer()
    root = tracer.start_span("outer", node="n1")
    child = tracer.start_span("inner", parent=root, node="n2")
    child.finish()
    root.finish()
    rendering = span_tree(tracer)
    lines = rendering.splitlines()
    assert lines[0].startswith("outer @n1")
    assert lines[1].startswith("  inner @n2")
    # filters to one trace
    other = tracer.start_span("stray")
    other.finish()
    assert "stray" not in span_tree(tracer, trace_id=root.trace_id)


def test_text_report_formats_all_sections():
    cluster = run_two_node_commit()
    report = text_report(cluster.metrics_dump())
    assert "== counters ==" in report
    assert "== histograms ==" in report
    assert "actions_committed_total" in report
    assert "twopc_prepare_time" in report


def test_report_cli_full_document(tmp_path, capsys):
    cluster = run_two_node_commit()
    path = tmp_path / "run.trace.json"
    cluster.obs.save(str(path))
    assert report_main([str(path), "--timeline"]) == 0
    out = capsys.readouterr().out
    assert "# Metrics" in out
    assert "# Spans" in out
    assert "# Timeline" in out
    assert "action:transfer" in out


def test_report_cli_bare_metrics_dump(tmp_path, capsys):
    cluster = run_two_node_commit()
    path = tmp_path / "metrics.json"
    path.write_text(json.dumps(cluster.metrics_dump()))
    assert report_main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "# Metrics" in out
    assert "# Spans" not in out

