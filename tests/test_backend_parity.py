"""Backend parity: the same protocol stack, sim vs real asyncio.

The contract (docs/BACKENDS.md): on fault-free configurations whose
logical structure is deterministic — sequential workloads, or concurrent
workers acquiring locks in one canonical order — the same seed produces
*identical* commit/abort outcomes, stable state and auditor silence on
both backends.  Under injected faults the asyncio backend's real
scheduling may reassign which message eats which fault draw, so only
statistical invariants are gated there: conservation, terminal
accounting (committed + failed == attempts) and a clean audit.

Every workload below returns a plain outcome dict and is run once per
backend; the asyncio arm uses a small ``time_scale`` so the whole module
stays a few wall seconds.
"""

import random

import pytest

from repro.backend import AsyncioBackend
from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkConfig
from repro.objects.state import ObjectState
from repro.sim.kernel import Timeout

TIME_SCALE = 0.002


def aio():
    return AsyncioBackend(time_scale=TIME_SCALE)


def stable_int(cluster, ref):
    """Committed integer value of a counter object, read off stable store."""
    stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
    return ObjectState.from_bytes(stored.payload).unpack_int()


def audit_findings(cluster):
    return [f.as_dict() for f in cluster.obs.auditor.report()]


# -- workloads ----------------------------------------------------------------


def sequential_mix(backend, seed=29, fast_paths=True):
    """The A/B/C profile mix from the fast-path benchmark, single client.

    Sequential, fault-free: logically deterministic on any backend, so
    commit counts and stable values must match sim exactly.
    """
    cluster = Cluster(seed=seed, backend=backend, fast_paths=fast_paths)
    for name in ("home", "s1", "s2"):
        cluster.add_node(name)
    client = cluster.client("home")
    result = {"commits": 0}

    def app():
        a = yield from client.create("s1", "counter", value=0)
        b = yield from client.create("s2", "counter", value=0)
        for index in range(6):       # profile A: single-server write
            action = client.top_level(f"A{index}")
            yield from client.invoke(action, a, "increment", 1)
            yield from client.commit(action)
            result["commits"] += 1
        for index in range(4):       # profile B: one writer + one reader
            action = client.top_level(f"B{index}")
            yield from client.invoke(action, a, "increment", 1)
            yield from client.invoke(action, b, "get")
            yield from client.commit(action)
            result["commits"] += 1
        for index in range(2):       # profile C: two writers
            action = client.top_level(f"C{index}")
            yield from client.invoke(action, a, "increment", 1)
            yield from client.invoke(action, b, "increment", 1)
            yield from client.commit(action)
            result["commits"] += 1
        result["refs"] = (a, b)

    cluster.run_process("home", app())
    a, b = result["refs"]
    outcome = {
        "commits": result["commits"],
        "a": stable_int(cluster, a),
        "b": stable_int(cluster, b),
        "findings": audit_findings(cluster),
    }
    cluster.close()
    return outcome


def concurrent_contention(backend, seed=11, workers=4, ops=3):
    """Concurrent writers over shared counters, canonical lock order.

    Workers contend on the same two objects but always lock them in the
    same order, so every interleaving serialises to the same totals:
    commit/abort counts and final sums must match across backends even
    though the asyncio arm interleaves for real.
    """
    cluster = Cluster(seed=seed, backend=backend, lock_wait_timeout=60.0)
    nodes = ("n0", "n1", "n2")
    for name in nodes:
        cluster.add_node(name)
    refs = []

    def setup():
        client = cluster.client("n0")
        for host in ("n1", "n2"):
            ref = yield from client.create(host, "counter", value=0)
            refs.append(ref)

    cluster.run_process("n0", setup())
    outcomes = {"committed": 0, "aborted": 0}

    def worker(wid):
        client = cluster.client(nodes[wid % len(nodes)], name=f"w{wid}")
        rng = random.Random(seed * 1000 + wid)
        for op in range(ops):
            action = client.top_level(f"w{wid}.op{op}")
            try:
                for ref in refs:                 # canonical order
                    yield from client.invoke(action, ref, "increment", 1)
                yield from client.commit(action)
                outcomes["committed"] += 1
            except Exception:
                outcomes["aborted"] += 1
                if not action.status.terminated:
                    yield from client.abort(action)
            yield Timeout(1.0 + rng.random())

    for wid in range(workers):
        cluster.spawn(nodes[wid % len(nodes)], worker(wid),
                      name=f"worker{wid}")
    cluster.run()
    outcome = {
        "committed": outcomes["committed"],
        "aborted": outcomes["aborted"],
        "total": sum(stable_int(cluster, ref) for ref in refs),
        "findings": audit_findings(cluster),
    }
    cluster.close()
    return outcome


def commute_contention(backend, seed=37, workers=4, ops=3):
    """Concurrent adds on commuting counters with the commute path on.

    Commuting operations never conflict, so no aborts anywhere and the
    commute fast path must carry every commit — on both backends.
    """
    cluster = Cluster(seed=seed, backend=backend, commute=True,
                      lock_wait_timeout=60.0)
    nodes = ("n0", "n1", "n2")
    for name in nodes:
        cluster.add_node(name)
    refs = []

    def setup():
        client = cluster.client("n0")
        for host in ("n1", "n2"):
            ref = yield from client.create(host, "commuting_counter", value=0)
            refs.append(ref)

    cluster.run_process("n0", setup())
    outcomes = {"committed": 0, "aborted": 0}

    def worker(wid):
        client = cluster.client(nodes[wid % len(nodes)], name=f"w{wid}")
        rng = random.Random(seed * 1000 + wid)
        for op in range(ops):
            action = client.top_level(f"w{wid}.op{op}")
            try:
                for ref in refs:
                    yield from client.invoke(action, ref, "add", 1)
                yield from client.commit(action)
                outcomes["committed"] += 1
            except Exception:
                outcomes["aborted"] += 1
                if not action.status.terminated:
                    yield from client.abort(action)
            yield Timeout(1.0 + rng.random())

    for wid in range(workers):
        cluster.spawn(nodes[wid % len(nodes)], worker(wid),
                      name=f"worker{wid}")
    cluster.run()
    commute_commits = 0.0
    for labels, counter in cluster.obs.metrics.series("twopc_fast_path_total"):
        if dict(labels).get("kind") == "commute":
            commute_commits += counter.value
    outcome = {
        "committed": outcomes["committed"],
        "aborted": outcomes["aborted"],
        "total": sum(stable_int(cluster, ref) for ref in refs),
        "commute_commits": commute_commits,
        "findings": audit_findings(cluster),
    }
    cluster.close()
    return outcome


def faulty_transfers(backend, seed=7, transfers=8, amount=5, initial=1000):
    """Money transfers over a lossy, duplicating network.

    Fault draws land on different messages per backend (real scheduling
    reorders sends), so only invariants are compared: conservation of
    money, terminal accounting and auditor silence.
    """
    cluster = Cluster(
        seed=seed, backend=backend,
        config=NetworkConfig(drop_probability=0.08,
                             duplicate_probability=0.04),
        rpc_retries=12, lock_wait_timeout=120.0)
    for name in ("home", "s1", "s2"):
        cluster.add_node(name)
    client = cluster.client("home")
    refs = {}
    outcomes = {"committed": 0, "failed": 0}

    def setup():
        refs["A"] = yield from client.create("s1", "account",
                                             owner="A", balance=initial)
        refs["B"] = yield from client.create("s2", "account",
                                             owner="B", balance=0)

    cluster.run_process("home", setup())

    def workload():
        for index in range(transfers):
            action = client.top_level(f"xfer{index}")
            try:
                yield from client.invoke(action, refs["A"], "withdraw", amount)
                yield from client.invoke(action, refs["B"], "deposit", amount)
                yield from client.commit(action)
                outcomes["committed"] += 1
            except Exception:
                outcomes["failed"] += 1
                if not action.status.terminated:
                    yield from client.abort(action)
            yield Timeout(5.0)

    cluster.run_process("home", workload())

    def stable_balance(ref):
        stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
        state = ObjectState.from_bytes(stored.payload)
        state.unpack_string()
        return state.unpack_int()

    balance_a = stable_balance(refs["A"])
    balance_b = stable_balance(refs["B"])
    outcome = {
        "committed": outcomes["committed"],
        "failed": outcomes["failed"],
        "attempts": transfers,
        "conserved": balance_a + balance_b == initial,
        "b_matches": balance_b == outcomes["committed"] * amount,
        "findings": audit_findings(cluster),
    }
    cluster.close()
    return outcome


# -- parity gates -------------------------------------------------------------


def test_sequential_mix_identical_outcomes():
    sim = sequential_mix(None)
    real = sequential_mix(aio())
    assert sim == real, (sim, real)
    assert sim["commits"] == 12 and sim["a"] == 12 and sim["b"] == 2
    assert sim["findings"] == []


def test_sequential_mix_parity_holds_without_fast_paths():
    sim = sequential_mix(None, seed=31, fast_paths=False)
    real = sequential_mix(aio(), seed=31, fast_paths=False)
    assert sim == real, (sim, real)
    assert sim["findings"] == []


def test_concurrent_contention_identical_outcomes():
    sim = concurrent_contention(None)
    real = concurrent_contention(aio())
    assert sim == real, (sim, real)
    assert sim["committed"] == 12 and sim["aborted"] == 0
    assert sim["total"] == 24 and sim["findings"] == []


def test_commute_path_identical_outcomes():
    sim = commute_contention(None)
    real = commute_contention(aio())
    assert sim == real, (sim, real)
    assert sim["committed"] == 12 and sim["total"] == 24
    assert sim["commute_commits"] == 24.0 and sim["findings"] == []


def test_faulty_network_invariants_on_both_backends():
    for outcome in (faulty_transfers(None), faulty_transfers(aio())):
        assert outcome["committed"] + outcome["failed"] == outcome["attempts"]
        assert outcome["conserved"], outcome
        assert outcome["b_matches"], outcome
        assert outcome["findings"] == [], outcome


def test_asyncio_seeded_runs_are_outcome_stable():
    """Scheduling jitter must not leak into logical outcomes: the same
    fault-free seeded workload yields the same result dict run-to-run."""
    first = concurrent_contention(aio(), seed=23)
    second = concurrent_contention(aio(), seed=23)
    assert first == second, (first, second)
    assert first["findings"] == []


@pytest.mark.parametrize("seed", [3, 17])
def test_sequential_mix_parity_across_seeds(seed):
    assert sequential_mix(None, seed=seed) == sequential_mix(aio(), seed=seed)
