"""Determinism: identical seeds replay identical distributed executions."""

from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkConfig
from repro.sim.kernel import Timeout


def run_workload(seed: int):
    """A mixed workload: contention, loss, a crash, commits and aborts."""
    cluster = Cluster(
        seed=seed,
        config=NetworkConfig(drop_probability=0.15, duplicate_probability=0.05),
        rpc_retries=10,
        lock_wait_timeout=200.0,
    )
    for name in ("h1", "h2", "s1", "s2"):
        cluster.add_node(name)
    c1 = cluster.client("h1", "c1")
    c2 = cluster.client("h2", "c2")
    refs = {}
    log = []

    def setup():
        refs["a"] = yield from c1.create("s1", "counter", value=0)
        refs["b"] = yield from c1.create("s2", "counter", value=0)

    def worker(client, label, ordered):
        for index in range(4):
            action = client.top_level(f"{label}-{index}")
            try:
                for key in ordered:
                    yield from client.invoke(action, refs[key], "increment", 1)
                if index == 2:
                    yield from client.abort(action)
                    log.append((cluster.kernel.now, label, index, "aborted"))
                else:
                    yield from client.commit(action)
                    log.append((cluster.kernel.now, label, index, "committed"))
            except Exception as error:
                log.append((cluster.kernel.now, label, index,
                            type(error).__name__))
                if not action.status.terminated:
                    yield from client.abort(action)
            yield Timeout(3.0)

    cluster.run_process("h1", setup())
    cluster.crash_at("s2", cluster.kernel.now + 40.0)
    cluster.restart_at("s2", cluster.kernel.now + 70.0)
    h1 = cluster.spawn("h1", worker(c1, "w1", ["a", "b"]))
    h2 = cluster.spawn("h2", worker(c2, "w2", ["b", "a"]))
    cluster.run(until=2_000.0)
    assert not h1.alive and not h2.alive
    return {
        "log": log,
        "network": cluster.network.stats(),
        "time": max(t for t, *_ in log) if log else 0.0,
    }


def test_same_seed_identical_execution():
    assert run_workload(123) == run_workload(123)


def test_different_seed_different_execution():
    a, b = run_workload(123), run_workload(321)
    assert a["network"] != b["network"] or a["log"] != b["log"]
