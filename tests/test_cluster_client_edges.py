"""Edge cases of the cluster client API: misuse, partitions, colours."""

import pytest

from repro.cluster.cluster import Cluster
from repro.errors import (
    ClusterError,
    InvalidActionState,
    LockTimeout,
    ObjectNotFound,
    RpcTimeout,
)
from repro.sim.kernel import Timeout


def make_cluster(**kwargs):
    cluster = Cluster(seed=0, **kwargs)
    for name in ("home", "server", "other"):
        cluster.add_node(name)
    return cluster


def test_invoke_on_terminated_action_rejected():
    cluster = make_cluster()
    client = cluster.client("home")

    def app():
        ref = yield from client.create("server", "counter", value=0)
        action = client.top_level("t")
        yield from client.commit(action)
        try:
            yield from client.invoke(action, ref, "increment", 1)
            return "ran"
        except InvalidActionState:
            return "rejected"

    assert cluster.run_process("home", app()) == "rejected"


def test_commit_twice_rejected():
    cluster = make_cluster()
    client = cluster.client("home")

    def app():
        action = client.top_level("t")
        yield from client.commit(action)
        try:
            yield from client.commit(action)
            return "ran"
        except InvalidActionState:
            return "rejected"

    assert cluster.run_process("home", app()) == "rejected"


def test_abort_idempotent():
    cluster = make_cluster()
    client = cluster.client("home")

    def app():
        action = client.top_level("t")
        yield from client.abort(action)
        outcome = yield from client.abort(action)
        return outcome

    from repro.actions.status import Outcome
    assert cluster.run_process("home", app()) is Outcome.ABORTED


def test_invoke_with_foreign_colour_rejected():
    cluster = make_cluster()
    client = cluster.client("home")

    def app():
        ref = yield from client.create("server", "counter", value=0)
        action = client.top_level("t")
        stray = client.fresh_colour("stray")
        try:
            yield from client.invoke(action, ref, "increment", 1, colour=stray)
            return "ran"
        except InvalidActionState:
            yield from client.abort(action)
            return "rejected"

    assert cluster.run_process("home", app()) == "rejected"


def test_invoke_unknown_method_rejected():
    cluster = make_cluster()
    client = cluster.client("home")

    def app():
        ref = yield from client.create("server", "counter", value=0)
        action = client.top_level("t")
        try:
            yield from client.invoke(action, ref, "frobnicate")
            return "ran"
        except ClusterError:
            yield from client.abort(action)
            return "rejected"

    assert cluster.run_process("home", app()) == "rejected"


def test_invoke_missing_object():
    from repro.util.uid import Uid
    from repro.cluster.client import ObjectRef
    cluster = make_cluster()
    client = cluster.client("home")

    def app():
        ghost = ObjectRef("server", Uid("obj@server", 999), "counter")
        action = client.top_level("t")
        try:
            yield from client.invoke(action, ghost, "get")
            return "ran"
        except ObjectNotFound:
            yield from client.abort(action)
            return "missing"

    assert cluster.run_process("home", app()) == "missing"


def test_operation_error_does_not_apply_or_poison_locks():
    """A failing body (InsufficientFunds) reports the error; the action can
    retry with valid arguments under the same lock."""
    cluster = make_cluster()
    client = cluster.client("home")

    def app():
        ref = yield from client.create("server", "account",
                                       owner="ann", balance=10)
        action = client.top_level("t")
        try:
            yield from client.invoke(action, ref, "withdraw", 100)
            first = "withdrew"
        except InvalidActionState:
            first = "refused"
        balance = yield from client.invoke(action, ref, "withdraw", 5)
        yield from client.commit(action)
        return first, balance

    first, balance = cluster.run_process("home", app())
    assert first == "refused"
    assert balance == 5


def test_partition_during_action_aborts_cleanly():
    cluster = make_cluster()
    client = cluster.client("home")

    def app():
        ref = yield from client.create("server", "counter", value=3)
        action = client.top_level("t")
        yield from client.invoke(action, ref, "increment", 1)
        cluster.network.partition("home", "server")
        try:
            yield from client.invoke(action, ref, "increment", 1)
            outcome = "ran"
        except RpcTimeout:
            outcome = "timed out"
        cluster.network.heal_all()
        # the abort during the partition could not reach the server; its
        # locks expire via the lock-wait bound or a later conflicting use.
        return outcome, action.status.value, ref

    outcome, status, ref = cluster.run_process("home", app())
    assert outcome == "timed out"
    assert status == "aborted"


def test_partition_healed_lock_eventually_expires_for_others():
    """The stranded lock from a partitioned abort is bounded by the
    lock-wait timeout on the server side, not held forever."""
    cluster = make_cluster(lock_wait_timeout=15.0)
    client = cluster.client("home")
    other = cluster.client("other", "other")

    def app():
        ref = yield from client.create("server", "counter", value=0)
        action = client.top_level("t")
        yield from client.invoke(action, ref, "increment", 1)
        cluster.network.partition("home", "server")
        try:
            yield from client.invoke(action, ref, "increment", 1)
        except RpcTimeout:
            pass
        cluster.network.heal_all()
        return ref

    ref = cluster.run_process("home", app())
    # the old action's server-side lock is still there; a competitor waits
    # out the bound, then the abort retransmission or timeout frees it.
    def competitor():
        action = other.top_level("c")
        try:
            yield from other.invoke(action, ref, "increment", 10)
            yield from other.commit(action)
            return "committed"
        except LockTimeout:
            yield from other.abort(action)
            return "lock timeout"

    result = cluster.run_process("other", competitor())
    assert result in ("committed", "lock timeout")
    # in either case the system is live afterwards:
    def after():
        action = other.top_level("after")
        value = yield from other.invoke(action, ref, "get")
        yield from other.commit(action)
        return value

    value = cluster.run_process("other", after())
    assert isinstance(value, int)
