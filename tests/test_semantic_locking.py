"""Type-specific concurrency control and recovery (§2): the semantic layer."""

import threading

import pytest

from repro.errors import LockTimeout, LockingError
from repro.locking.semantic import SemanticSpec
from repro.objects.semantic import RETAIN_GROUP, with_retain_group
from repro.stdobjects.commuting import CommutingCounter
from repro.structures import SerializingAction


# -- SemanticSpec ------------------------------------------------------------

def test_spec_build_validates_groups():
    with pytest.raises(LockingError):
        SemanticSpec.build(groups={"a"}, compatible_pairs=[("a", "ghost")])


def test_spec_compatibility_is_symmetric():
    spec = SemanticSpec.build(groups={"a", "b"}, compatible_pairs=[("a", "b")])
    assert spec.is_compatible("a", "b")
    assert spec.is_compatible("b", "a")
    assert not spec.is_compatible("a", "a")


def test_with_retain_group_adds_conflicting_pin():
    spec = SemanticSpec.build(groups={"a"}, compatible_pairs=[("a", "a")])
    extended = with_retain_group(spec)
    assert RETAIN_GROUP in extended.groups
    assert not extended.is_compatible(RETAIN_GROUP, "a")
    assert not extended.is_compatible(RETAIN_GROUP, RETAIN_GROUP)


# -- commuting counter: concurrency ----------------------------------------------

def test_concurrent_updates_do_not_block(runtime):
    counter = CommutingCounter(runtime, value=0)
    scope1 = runtime.top_level(name="u1")
    u1 = scope1.__enter__()
    counter.add(1, action=u1)
    # a second, unrelated action updates concurrently — no wait
    with runtime.top_level(name="u2") as u2:
        counter.add(10, action=u2)
    assert counter.value == 11
    runtime.commit_action(u1)
    scope1.__exit__(None, None, None)
    assert counter.value == 11


def test_observer_blocks_while_updater_active(runtime):
    counter = CommutingCounter(runtime, value=0)
    scope = runtime.top_level(name="u")
    updater = scope.__enter__()
    counter.add(1, action=updater)
    with runtime.top_level(name="r") as reader:
        with pytest.raises(LockTimeout):
            runtime.acquire_group(reader, counter, "observe", timeout=0.05)
        runtime.abort_action(reader)
    runtime.commit_action(updater)
    scope.__exit__(None, None, None)
    with runtime.top_level(name="r2") as reader:
        assert counter.get(action=reader) == 1


def test_updater_blocks_while_observer_active(runtime):
    counter = CommutingCounter(runtime, value=0)
    scope = runtime.top_level(name="r")
    reader = scope.__enter__()
    counter.get(action=reader)
    with runtime.top_level(name="u") as updater:
        with pytest.raises(LockTimeout):
            runtime.acquire_group(updater, counter, "update", timeout=0.05)
        runtime.abort_action(updater)
    runtime.commit_action(reader)
    scope.__exit__(None, None, None)


def test_same_action_may_update_then_observe(runtime):
    """Ancestry (here: self) overrides group conflicts, as with modes."""
    counter = CommutingCounter(runtime, value=0)
    with runtime.top_level() as action:
        counter.add(5, action=action)
        assert counter.get(action=action) == 5


def test_nested_child_compatible_with_parent(runtime):
    counter = CommutingCounter(runtime, value=0)
    with runtime.top_level() as parent:
        counter.add(1, action=parent)
        with runtime.atomic() as child:
            assert counter.get(action=child) == 1
            counter.add(2, action=child)
    assert counter.value == 3


# -- commuting counter: type-specific recovery ---------------------------------------

def test_abort_compensates_instead_of_restoring(runtime):
    """The §2 scenario: A and B add concurrently; A's abort subtracts only
    its own contribution — a before-image restore would wipe B's too."""
    counter = CommutingCounter(runtime, value=100)
    scope_a = runtime.top_level(name="A")
    a = scope_a.__enter__()
    counter.add(1, action=a)
    with runtime.top_level(name="B") as b:
        counter.add(10, action=b)       # B commits its +10
    assert counter.value == 111
    runtime.abort_action(a)             # A aborts: compensate only the +1
    scope_a.__exit__(None, None, None)
    assert counter.value == 110


def test_multiple_operations_each_compensated(runtime):
    counter = CommutingCounter(runtime, value=0)
    with pytest.raises(RuntimeError):
        with runtime.top_level():
            counter.add(5)
            counter.subtract(2)
            counter.add(7)
            raise RuntimeError
    assert counter.value == 0


def test_committed_operations_not_compensated(runtime):
    counter = CommutingCounter(runtime, value=0)
    with runtime.top_level():
        counter.add(5)
    assert counter.value == 5
    assert runtime.store.read_committed(counter.uid).payload == counter.snapshot()


def test_child_commit_transfers_compensations_to_parent(runtime):
    counter = CommutingCounter(runtime, value=0)
    with pytest.raises(RuntimeError):
        with runtime.top_level():
            with runtime.atomic():
                counter.add(3)
            assert counter.value == 3
            raise RuntimeError("parent aborts; child's op compensated via parent")
    assert counter.value == 0


def test_interleaved_compensation_order(runtime):
    """Image undo and operation undo interleave correctly by recency."""
    from repro.stdobjects import Counter
    plain = Counter(runtime, value=0)
    commuting = CommutingCounter(runtime, value=0)
    with pytest.raises(RuntimeError):
        with runtime.top_level():
            commuting.add(1)
            plain.increment(10)
            commuting.add(100)
            raise RuntimeError
    assert plain.value == 0
    assert commuting.value == 0


def test_concurrent_threads_commuting_updates():
    """Real threads adding concurrently, some aborting; the final value is
    the sum of committed deltas."""
    from repro.runtime.runtime import LocalRuntime
    runtime = LocalRuntime()
    counter = CommutingCounter(runtime, value=0)
    committed_total = []

    def worker(seed):
        import random
        rng = random.Random(seed)
        local_sum = 0
        for i in range(20):
            amount = rng.randint(1, 9)
            doomed = rng.random() < 0.4
            try:
                with runtime.top_level(name=f"w{seed}-{i}"):
                    counter.add(amount)
                    if doomed:
                        raise RuntimeError
                local_sum += amount
            except RuntimeError:
                pass
        committed_total.append(local_sum)

    threads = [threading.Thread(target=worker, args=(s,)) for s in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    assert counter.value == sum(committed_total)


# -- interaction with structures -----------------------------------------------------

def test_serializing_constituent_pins_semantic_object(runtime):
    """The companion mechanism shadows group locks with the retain group."""
    counter = CommutingCounter(runtime, value=0)
    ser = SerializingAction(runtime, name="ser")
    with ser.constituent(name="B") as b:
        counter.add(1, action=b)
    # retained: an outside updater is blocked even though update/update is
    # normally compatible — the control action holds the pin.
    with runtime.top_level(name="out") as outsider:
        with pytest.raises(LockTimeout):
            runtime.acquire_group(outsider, counter, "update", timeout=0.05)
        runtime.abort_action(outsider)
    ser.close()
    with runtime.top_level(name="after") as after:
        counter.add(1, action=after)
    assert counter.value == 2


def test_unknown_group_refused(runtime):
    from repro.errors import LockRefused
    counter = CommutingCounter(runtime, value=0)
    with runtime.top_level() as action:
        with pytest.raises(LockRefused):
            runtime.acquire_group(action, counter, "no-such-group", timeout=0.05)
        runtime.abort_action(action)
