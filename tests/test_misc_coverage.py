"""Coverage for smaller behaviours not exercised elsewhere."""

import pytest

from repro.errors import SimulationError
from repro.locking.modes import LockMode
from repro.runtime.runtime import LocalRuntime
from repro.sim.kernel import Kernel, Timeout
from repro.stdobjects import Account, Counter, FifoQueue
from repro.structures import GluedGroup, SerializingAction


# -- structures: ambient-parent wiring ------------------------------------------

def test_serializing_action_with_ambient_parent(runtime):
    counter = Counter(runtime, value=0)
    with runtime.top_level(name="outer") as outer:
        ser = SerializingAction(runtime, use_ambient_parent=True, name="ser")
        assert ser.control.parent is outer
        with ser.constituent(name="B") as b:
            counter.increment(1, action=b)
        ser.close()
    assert counter.value == 1


def test_glued_group_with_ambient_parent(runtime):
    with runtime.top_level(name="outer") as outer:
        glue = GluedGroup(runtime, use_ambient_parent=True, name="g")
        assert glue.control.parent is outer
        glue.close()


def test_glued_cancel_without_members_is_clean(runtime):
    glue = GluedGroup(runtime, name="empty")
    from repro.actions.status import Outcome
    assert glue.cancel() is Outcome.ABORTED


def test_serializing_inside_glued_member(runtime):
    """Structures compose: a serializing action nested in a glued member."""
    counter = Counter(runtime, value=0)
    with GluedGroup(runtime, name="g") as glue:
        with glue.member(name="A") as member:
            ser = SerializingAction(runtime, parent=member.action, name="ser")
            with ser.constituent(name="B") as b:
                counter.increment(5, action=b)
            ser.close()
    assert counter.value == 5


# -- action tree queries -------------------------------------------------------------

def test_written_objects_and_undo_records_queries(runtime):
    a = Counter(runtime, value=0)
    b = Counter(runtime, value=0)
    with runtime.top_level() as action:
        a.increment(1)
        b.increment(1)
        written = action.written_objects()
        assert set(written) == {a.uid, b.uid}
        per_colour = action.written_objects(action.single_colour())
        assert set(per_colour) == {a.uid, b.uid}
        assert len(action.undo_records()) == 2


# -- kernel edges ----------------------------------------------------------------------

def test_run_until_settled_reraises_failure():
    kernel = Kernel()
    event = kernel.event()
    kernel.schedule(1.0, lambda: event.fail(ValueError("boom")))
    with pytest.raises(ValueError):
        kernel.run_until_settled(event)


def test_run_until_settled_returns_value():
    kernel = Kernel()
    event = kernel.event()
    kernel.schedule(2.0, lambda: event.trigger("done"))
    assert kernel.run_until_settled(event) == "done"


def test_schedule_negative_delay_rejected():
    kernel = Kernel()
    with pytest.raises(SimulationError):
        kernel.schedule(-1.0, lambda: None)


def test_all_of_empty_triggers_with_empty_list():
    from repro.sim.kernel import all_of
    kernel = Kernel()

    def proc():
        values = yield all_of(kernel, [])
        return values

    handle = kernel.spawn(proc())
    kernel.run()
    assert handle.result == []


def test_any_of_requires_events():
    from repro.sim.kernel import any_of
    kernel = Kernel()
    with pytest.raises(SimulationError):
        any_of(kernel, [])


# -- stdobject odds and ends ---------------------------------------------------------------

def test_account_read_statement_is_a_copy(runtime):
    account = Account(runtime, owner="x", balance=10)
    with runtime.top_level():
        account.deposit(1, "tip")
        statement = account.read_statement()
        statement.append(("forged", 999))
    assert account.statement == [("tip", 1)]


def test_fifo_peek_does_not_consume(runtime):
    queue = FifoQueue(runtime)
    with runtime.top_level():
        queue.enqueue("a")
        queue.enqueue("b")
        assert queue.peek_all() == ["a", "b"]
        assert queue.length() == 2
        assert queue.dequeue() == "a"


def test_counter_decrement(runtime):
    counter = Counter(runtime, value=10)
    with runtime.top_level():
        assert counter.decrement(3) == 7
    assert counter.value == 7


# -- runtime odds and ends ---------------------------------------------------------------------

def test_locked_objects_counts_tables(runtime):
    a = Counter(runtime, value=0)
    scope = runtime.top_level()
    with scope as action:
        a.increment(1)
        assert runtime.locked_objects() == 1
    assert runtime.locked_objects() == 0


def test_atomic_with_explicit_none_parent_is_top_level(runtime):
    with runtime.top_level(name="outer"):
        with runtime.atomic(parent=None, name="separate") as separate:
            assert separate.parent is None
            assert len(separate.colours) == 1


def test_deadlock_victims_listing():
    runtime = LocalRuntime()
    import threading
    from repro.errors import DeadlockDetected
    a, b = Counter(runtime, value=0), Counter(runtime, value=0)
    barrier = threading.Barrier(2, timeout=10)

    def worker(first, second):
        try:
            with runtime.top_level():
                first.increment(1)
                barrier.wait()
                second.increment(1)
        except DeadlockDetected:
            pass

    threads = [
        threading.Thread(target=worker, args=(a, b)),
        threading.Thread(target=worker, args=(b, a)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    assert len(runtime.deadlock_victims()) == 1
