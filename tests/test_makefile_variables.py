"""Makefile variable definitions and $(VAR) expansion."""

import pytest

from repro.apps.make.makefile import MakefileError, parse_makefile


def test_variables_expand_in_prereqs_and_commands():
    makefile = parse_makefile(
        "CC = cc\n"
        "OBJS = a.o b.o\n"
        "prog: $(OBJS)\n"
        "\t$(CC) -o prog $(OBJS)\n"
        "a.o: a.c\n"
        "\t$(CC) -c a.c\n"
        "b.o: b.c\n"
        "\t$(CC) -c b.c\n"
    )
    assert makefile.rule("prog").prerequisites == ["a.o", "b.o"]
    assert makefile.rule("prog").commands == ["cc -o prog a.o b.o"]
    assert makefile.rule("a.o").commands == ["cc -c a.c"]


def test_variables_expand_in_targets():
    makefile = parse_makefile(
        "NAME = server\n"
        "$(NAME): main.c\n"
        "\tcc -o $(NAME) main.c\n"
    )
    assert makefile.rule("server") is not None
    assert makefile.default_goal == "server"


def test_variables_compose():
    makefile = parse_makefile(
        "BASE = Test\n"
        "OBJ = $(BASE)0.o\n"
        "$(BASE): $(OBJ)\n"
        "\tcc -o $(BASE) $(OBJ)\n"
    )
    assert makefile.rule("Test").prerequisites == ["Test0.o"]


def test_undefined_variable_rejected():
    with pytest.raises(MakefileError):
        parse_makefile("a: $(GHOST)\n\tcmd\n")


def test_circular_definition_rejected():
    with pytest.raises(MakefileError):
        parse_makefile(
            "A = $(B)\n"
            "B = $(A)\n"
            "t: $(A)\n"
            "\tcmd\n"
        )


def test_later_redefinition_wins_for_later_uses():
    makefile = parse_makefile(
        "CC = gcc\n"
        "a: a.c\n"
        "\t$(CC) -c a.c\n"
        "CC = clang\n"
        "b: b.c\n"
        "\t$(CC) -c b.c\n"
    )
    assert makefile.rule("a").commands == ["gcc -c a.c"]
    assert makefile.rule("b").commands == ["clang -c b.c"]


def test_definition_is_not_mistaken_for_rule():
    makefile = parse_makefile(
        "FLAGS = -O2\n"
        "a: a.c\n"
        "\tcc $(FLAGS) -c a.c\n"
    )
    assert "FLAGS" not in makefile.rules
