"""Shared fixtures for the test suite."""

import pytest

from repro.locking.rules import ColouredRules, ConventionalRules
from repro.runtime.runtime import LocalRuntime
from repro.sim.kernel import Kernel
from repro.util.uid import UidGenerator


@pytest.fixture
def runtime():
    """A fresh local runtime with coloured rules (the default)."""
    return LocalRuntime()


@pytest.fixture
def conventional_runtime():
    """A runtime restricted to conventional (Moss) locking rules."""
    return LocalRuntime(rules=ConventionalRules())


@pytest.fixture
def kernel():
    """A fresh discrete-event simulation kernel."""
    return Kernel()


@pytest.fixture
def uids():
    """A uid generator for ad-hoc identities in unit tests."""
    return UidGenerator("test")
