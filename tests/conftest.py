"""Shared fixtures for the test suite."""

import pytest

from repro.locking.rules import ColouredRules, ConventionalRules
from repro.obs.audit.testing import install_online_audit
from repro.runtime.runtime import LocalRuntime
from repro.sim.kernel import Kernel
from repro.util.uid import UidGenerator

@pytest.fixture(autouse=True)
def _online_invariant_audit(request):
    """Run chaos and property suites under the online auditor.

    Every Observability hub created in these modules gets its findings
    asserted empty after the test, and every LocalRuntime is
    auto-instrumented so nothing runs dark.  Findings are hard failures.
    """
    module = request.node.module.__name__.rsplit(".", 1)[-1]
    audited = (module == "test_chaos_invariants"
               or module.startswith("test_prop_"))
    if not audited:
        yield
        return
    with install_online_audit():
        yield


@pytest.fixture
def runtime():
    """A fresh local runtime with coloured rules (the default)."""
    return LocalRuntime()


@pytest.fixture
def conventional_runtime():
    """A runtime restricted to conventional (Moss) locking rules."""
    return LocalRuntime(rules=ConventionalRules())


@pytest.fixture
def kernel():
    """A fresh discrete-event simulation kernel."""
    return Kernel()


@pytest.fixture
def uids():
    """A uid generator for ad-hoc identities in unit tests."""
    return UidGenerator("test")
