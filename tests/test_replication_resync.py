"""Available-copies replication: writes past down replicas + resync."""

import pytest

from repro.cluster.cluster import Cluster
from repro.errors import ClusterError
from repro.objects.state import ObjectState
from repro.replication.group import ReplicaGroup


def make_cluster():
    cluster = Cluster(seed=0)
    for name in ("client-node", "r1", "r2", "r3"):
        cluster.add_node(name)
    return cluster


def committed_value(cluster, ref):
    stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
    return ObjectState.from_bytes(stored.payload).unpack_value()


def build_group(cluster, client):
    holder = {}

    def setup():
        group = yield from ReplicaGroup.create(
            client, ["r1", "r2", "r3"], "register", value=0
        )
        holder["group"] = group

    cluster.run_process("client-node", setup())
    return holder["group"]


def test_write_available_skips_down_replica():
    cluster = make_cluster()
    client = cluster.client("client-node")
    group = build_group(cluster, client)
    cluster.crash("r2")

    def app():
        action = client.top_level("w")
        result, missed = yield from group.write_available(action, "set", 7)
        yield from client.commit(action)
        return result, [ref.node for ref in missed]

    result, missed = cluster.run_process("client-node", app())
    assert missed == ["r2"]
    assert committed_value(cluster, group.replicas[0]) == 7
    assert committed_value(cluster, group.replicas[2]) == 7
    # the stale copy really is stale
    cluster.restart("r2")
    assert committed_value(cluster, group.replicas[1]) == 0


def test_resync_brings_stale_replica_current():
    cluster = make_cluster()
    client = cluster.client("client-node")
    group = build_group(cluster, client)
    cluster.crash("r2")

    def write():
        action = client.top_level("w")
        yield from group.write_available(action, "set", 42)
        yield from client.commit(action)

    cluster.run_process("client-node", write())
    cluster.restart("r2")

    def recover():
        value = yield from group.resync(group.replicas[1])
        return value

    assert cluster.run_process("client-node", recover()) == 42
    assert committed_value(cluster, group.replicas[1]) == 42


def test_resync_fails_over_dead_donor():
    cluster = make_cluster()
    client = cluster.client("client-node")
    group = build_group(cluster, client)
    cluster.crash("r3")

    def write():
        action = client.top_level("w")
        yield from group.write_available(action, "set", 9)
        yield from client.commit(action)

    cluster.run_process("client-node", write())
    cluster.restart("r3")
    cluster.crash("r1")  # first donor candidate now dead

    def recover():
        return (yield from group.resync(group.replicas[2]))

    assert cluster.run_process("client-node", recover()) == 9
    assert committed_value(cluster, group.replicas[2]) == 9


def test_resync_rejects_foreign_ref():
    cluster = make_cluster()
    client = cluster.client("client-node")
    group = build_group(cluster, client)

    def app():
        other = yield from client.create("r1", "register", value=0)
        try:
            yield from group.resync(other)
            return "accepted"
        except ClusterError:
            return "rejected"

    assert cluster.run_process("client-node", app()) == "rejected"


def test_write_available_with_all_replicas_down_fails():
    cluster = make_cluster()
    client = cluster.client("client-node")
    group = build_group(cluster, client)
    for name in ("r1", "r2", "r3"):
        cluster.crash(name)

    def app():
        action = client.top_level("w")
        try:
            yield from group.write_available(action, "set", 1)
            return "wrote"
        except ClusterError:
            yield from client.abort(action)
            return "failed"

    assert cluster.run_process("client-node", app()) == "failed"


def test_write_available_rejects_read_operations():
    cluster = make_cluster()
    client = cluster.client("client-node")
    group = build_group(cluster, client)

    def app():
        action = client.top_level("r")
        try:
            yield from group.write_available(action, "get")
            return "ran"
        except ClusterError:
            yield from client.abort(action)
            return "rejected"

    assert cluster.run_process("client-node", app()) == "rejected"
