"""Property: the semantic table enforces ANY compatibility relation.

Hypothesis generates random specs (random group sets and random
compatibility pairs) and random request/release schedules; the safety
invariant is spec-independent: any two granted records held by
*non-ancestor* actions must be pairwise compatible.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.colours.colour import Colour
from repro.locking.owner import StubOwner, is_ancestor
from repro.locking.request import LockRequest
from repro.locking.semantic import SemanticLockTable, SemanticSpec
from repro.util.uid import UidGenerator

GROUPS = ["g0", "g1", "g2", "g3"]
ALL_PAIRS = [(a, b) for i, a in enumerate(GROUPS) for b in GROUPS[i:]]


def build_world():
    auids = UidGenerator("a")
    colour = Colour(UidGenerator("c").fresh(), "only")

    def make(parent=None):
        uid = auids.fresh()
        path = (parent.path if parent else ()) + (uid,)
        return StubOwner(uid=uid, path=path, colours=frozenset((colour,)))

    owners = []
    for _ in range(2):
        root = make()
        owners.extend([root, make(parent=root)])
    return owners, colour


specs = st.sets(st.sampled_from(ALL_PAIRS)).map(
    lambda pairs: SemanticSpec.build(groups=GROUPS, compatible_pairs=pairs)
)
schedules = st.lists(
    st.tuples(
        st.sampled_from(["request", "release", "transfer"]),
        st.integers(0, 3),                    # owner index
        st.sampled_from(GROUPS),
    ),
    min_size=1, max_size=50,
)


@settings(max_examples=200, deadline=None)
@given(specs, schedules)
def test_granted_holders_always_pairwise_compatible(spec, schedule):
    owners, colour = build_world()
    ruids = UidGenerator("r")
    table = SemanticLockTable(UidGenerator("o").fresh(), spec)
    for op, owner_index, group in schedule:
        owner = owners[owner_index]
        if op == "request":
            table.request(LockRequest(
                ruids.fresh(), owner, table.object_uid, group, colour,
            ))
        elif op == "release":
            table.release_all(owner.uid)
        else:
            parent_uid = owner.path[-2] if len(owner.path) > 1 else None
            parent = next((o for o in owners if o.uid == parent_uid), None)
            table.transfer(owner.uid, lambda c: parent)
        # invariant after every step
        for record in table.holders:
            for other in table.holders:
                if record is other:
                    continue
                related = (is_ancestor(record.owner, other.owner)
                           or is_ancestor(other.owner, record.owner))
                if not related:
                    assert spec.is_compatible(record.group, other.group), (
                        record.describe(), other.describe(),
                    )


@settings(max_examples=100, deadline=None)
@given(specs, schedules)
def test_requests_always_settle_or_queue(spec, schedule):
    """No request vanishes: it is granted, refused, or sits in the queue."""
    owners, colour = build_world()
    ruids = UidGenerator("r")
    table = SemanticLockTable(UidGenerator("o").fresh(), spec)
    outcomes = []
    submitted = 0
    for op, owner_index, group in schedule:
        owner = owners[owner_index]
        if op == "request":
            submitted += 1
            request = LockRequest(
                ruids.fresh(), owner, table.object_uid, group, colour,
                on_complete=lambda r: outcomes.append(r.status),
            )
            table.request(request)
        elif op == "release":
            table.release_all(owner.uid)
        else:
            table.transfer(owner.uid, lambda c: None)
    assert len(outcomes) + len(table.queue) == submitted
