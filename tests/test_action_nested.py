"""Conventional nested atomic actions (fig. 1 / fig. 2 semantics)."""

import pytest

from repro.errors import ObjectNotFound
from repro.locking.modes import LockMode
from repro.stdobjects import Counter


def test_child_commit_defers_permanence_to_top_level(runtime):
    counter = Counter(runtime, value=0)
    with runtime.top_level(name="A") as a:
        with runtime.atomic(name="B"):
            counter.increment(5)
        # B committed, but permanence belongs to the top level: the store
        # still has the old state.
        assert runtime.store.read_committed(counter.uid).payload == \
            Counter(runtime, value=0, persist=False).snapshot()
    assert runtime.store.read_committed(counter.uid).payload == counter.snapshot()
    assert counter.value == 5


def test_fig2_nesting_undoes_completed_child_work(runtime):
    """The paper's motivating problem: B completes, A aborts, B's work is lost."""
    objects_b = Counter(runtime, value=100)
    with pytest.raises(RuntimeError):
        with runtime.top_level(name="A"):
            with runtime.atomic(name="B"):
                objects_b.increment(23)   # long, complicated computation
            assert objects_b.value == 123
            raise RuntimeError("failure prevents completion of A")
    assert objects_b.value == 100  # everything undone


def test_child_abort_leaves_parent_intact(runtime):
    counter = Counter(runtime, value=0)
    with runtime.top_level(name="A"):
        counter.increment(1)
        with pytest.raises(RuntimeError):
            with runtime.atomic(name="B"):
                counter.increment(10)
                raise RuntimeError("B fails")
        assert counter.value == 1  # B undone, A's own write kept
    assert counter.value == 1


def test_lock_inheritance_on_child_commit(runtime):
    counter = Counter(runtime, value=0)
    with runtime.top_level(name="A") as a:
        with runtime.atomic(name="B") as b:
            counter.increment(1)
            assert runtime.locks.holds(b.uid, counter.uid, LockMode.WRITE)
        assert runtime.locks.holds(a.uid, counter.uid, LockMode.WRITE)
    assert not runtime.locks.holds(a.uid, counter.uid, LockMode.READ)


def test_child_abort_discards_its_locks_only(runtime):
    counter = Counter(runtime, value=0)
    with runtime.top_level(name="A") as a:
        counter.increment(1)  # A holds WRITE
        with pytest.raises(RuntimeError):
            with runtime.atomic(name="B") as b:
                counter.increment(1)
                raise RuntimeError
        assert runtime.locks.holds(a.uid, counter.uid, LockMode.WRITE)
        assert not runtime.locks.holds(b.uid, counter.uid, LockMode.WRITE)


def test_deep_nesting_undo_ordering(runtime):
    counter = Counter(runtime, value=0)
    with pytest.raises(RuntimeError):
        with runtime.top_level(name="A"):
            counter.increment(1)
            with runtime.atomic(name="B"):
                counter.increment(10)
                with runtime.atomic(name="C"):
                    counter.increment(100)
                assert counter.value == 111
            assert counter.value == 111
            raise RuntimeError
    assert counter.value == 0


def test_middle_abort_restores_to_parents_view(runtime):
    counter = Counter(runtime, value=0)
    with runtime.top_level(name="A"):
        counter.increment(1)
        with pytest.raises(RuntimeError):
            with runtime.atomic(name="B"):
                counter.increment(10)
                with runtime.atomic(name="C"):
                    counter.increment(100)
                raise RuntimeError("B aborts after C committed into it")
        # C's work was inherited by B, so B's abort undoes both
        assert counter.value == 1
    assert counter.value == 1


def test_commit_with_active_child_aborts_child(runtime):
    counter = Counter(runtime, value=0)
    with runtime.top_level(name="A") as a:
        child_scope = runtime.atomic(name="B")
        child = child_scope.__enter__()
        counter.increment(7, action=child)
        # commit A with B still open: the straggler child is aborted
        runtime.commit_action(a)
        assert child.status.value == "aborted"
        child_scope.__exit__(None, None, None)
    assert counter.value == 0


def test_concurrent_siblings_serialize_on_shared_object(runtime):
    """Fig. 1: B and C nested in A; their writes to one object serialize."""
    counter = Counter(runtime, value=0)
    with runtime.top_level(name="A"):
        with runtime.atomic(name="B"):
            counter.increment(10)
        with runtime.atomic(name="C"):
            counter.increment(100)
    assert counter.value == 110


def test_sibling_abort_independent_of_committed_sibling(runtime):
    counter = Counter(runtime, value=0)
    with runtime.top_level(name="A"):
        with runtime.atomic(name="B"):
            counter.increment(10)
        with pytest.raises(RuntimeError):
            with runtime.atomic(name="C"):
                counter.increment(100)
                raise RuntimeError
        assert counter.value == 10
    assert counter.value == 10
