"""Waits-for graph and deadlock resolution."""

from repro.colours.colour import Colour
from repro.errors import DeadlockDetected
from repro.locking.deadlock import DeadlockDetector, WaitsForGraph
from repro.locking.modes import LockMode
from repro.locking.owner import StubOwner
from repro.locking.registry import LockRegistry
from repro.locking.request import RequestStatus
from repro.util.uid import Uid, UidGenerator

auids = UidGenerator("a")
cuids = UidGenerator("colour")
ouids = UidGenerator("obj")
RED = Colour(cuids.fresh(), "red")


def owner():
    uid = auids.fresh()
    return StubOwner(uid=uid, path=(uid,), colours=frozenset((RED,)))


def test_graph_finds_simple_cycle():
    a, b = Uid("a", 1), Uid("a", 2)
    graph = WaitsForGraph([(a, b), (b, a)])
    cycle = graph.find_cycle()
    assert cycle is not None and set(cycle) == {a, b}


def test_graph_no_cycle_in_dag():
    a, b, c = (Uid("a", i) for i in range(3))
    graph = WaitsForGraph([(a, b), (b, c), (a, c)])
    assert graph.find_cycle() is None


def test_graph_finds_long_cycle():
    nodes = [Uid("a", i) for i in range(5)]
    edges = list(zip(nodes, nodes[1:])) + [(nodes[-1], nodes[0])]
    graph = WaitsForGraph(edges)
    cycle = graph.find_cycle()
    assert cycle is not None and set(cycle) == set(nodes)


def test_self_edges_ignored():
    a = Uid("a", 1)
    graph = WaitsForGraph([(a, a)])
    assert graph.find_cycle() is None


def test_detector_picks_youngest_victim_and_refuses_its_requests():
    registry = LockRegistry()
    elder, younger = owner(), owner()
    assert elder.uid < younger.uid
    obj1, obj2 = ouids.fresh(), ouids.fresh()
    registry.request(elder, obj1, LockMode.WRITE, RED)
    registry.request(younger, obj2, LockMode.WRITE, RED)
    results = {}
    registry.request(elder, obj2, LockMode.WRITE, RED,
                     on_complete=lambda r: results.setdefault("elder", r))
    registry.request(younger, obj1, LockMode.WRITE, RED,
                     on_complete=lambda r: results.setdefault("younger", r))
    detector = DeadlockDetector(registry)
    victim = detector.resolve_once()
    assert victim == younger.uid
    assert results["younger"].status is RequestStatus.REFUSED
    assert isinstance(results["younger"].error, DeadlockDetected)
    assert "elder" not in results or results["elder"].status is RequestStatus.PENDING


def test_detector_none_when_no_cycle():
    registry = LockRegistry()
    holder, waiter = owner(), owner()
    obj = ouids.fresh()
    registry.request(holder, obj, LockMode.WRITE, RED)
    registry.request(waiter, obj, LockMode.WRITE, RED)
    assert DeadlockDetector(registry).resolve_once() is None


def test_resolve_all_breaks_multiple_cycles():
    registry = LockRegistry()
    pairs = []
    for _ in range(2):  # two disjoint 2-cycles
        a, b = owner(), owner()
        oa, ob = ouids.fresh(), ouids.fresh()
        registry.request(a, oa, LockMode.WRITE, RED)
        registry.request(b, ob, LockMode.WRITE, RED)
        registry.request(a, ob, LockMode.WRITE, RED)
        registry.request(b, oa, LockMode.WRITE, RED)
        pairs.append((a, b))
    victims = DeadlockDetector(registry).resolve_all()
    assert len(victims) == 2
    assert DeadlockDetector(registry).scan() is None


def test_victim_release_unblocks_survivor():
    registry = LockRegistry()
    a, b = owner(), owner()
    obj1, obj2 = ouids.fresh(), ouids.fresh()
    registry.request(a, obj1, LockMode.WRITE, RED)
    registry.request(b, obj2, LockMode.WRITE, RED)
    survivor_result = {}
    registry.request(a, obj2, LockMode.WRITE, RED,
                     on_complete=lambda r: survivor_result.setdefault("r", r))
    registry.request(b, obj1, LockMode.WRITE, RED)
    victim = DeadlockDetector(registry).resolve_once()
    assert victim == b.uid
    registry.release_action(b.uid)  # the runtime aborts the victim
    assert survivor_result["r"].status is RequestStatus.GRANTED
