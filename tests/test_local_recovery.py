"""Local-runtime crash/restart: rebuilding live state from the stable store.

The paper's permanence of effect (§2) means a process crash loses only
volatile state; everything committed is re-activatable from the object
store.  These tests "crash" by abandoning the runtime (keeping its store)
and restarting with a fresh one over the same store.
"""

import pytest

from repro.apps.make.engine import LocalMakeEngine, LogicalClock
from repro.apps.make.graph import DependencyGraph
from repro.apps.make.makefile import PAPER_EXAMPLE, parse_makefile
from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Account, Counter, FileObject


def restart(runtime: LocalRuntime) -> LocalRuntime:
    """A new runtime over the surviving stable store (volatile state gone:
    lock tables, live objects, in-flight actions)."""
    return LocalRuntime(store=runtime.store)


def test_committed_state_survives_restart():
    runtime = LocalRuntime()
    counter = Counter(runtime, value=0)
    with runtime.top_level():
        counter.increment(41)
    revived_runtime = restart(runtime)
    revived = Counter(revived_runtime, value=0, uid=counter.uid, persist=False)
    revived.activate_from(revived_runtime.store)
    assert revived.value == 41
    with revived_runtime.top_level():
        revived.increment(1)
    assert revived.value == 42


def test_uncommitted_state_lost_at_restart():
    """An in-flight action's writes die with the process — the store still
    has the last committed state (strict write-ahead of commitment)."""
    from repro.actions.action import Action
    runtime = LocalRuntime()
    counter = Counter(runtime, value=10)
    # the action is abandoned mid-flight by the crash: create it without a
    # scope (no ambient-context bookkeeping to unwind)
    action = Action(runtime, [runtime.colours.fresh()], name="in-flight")
    counter.increment(100, action=action)
    assert counter.value == 110       # live, uncommitted
    revived_runtime = restart(runtime)   # crash here
    revived = Counter(revived_runtime, value=0, uid=counter.uid, persist=False)
    revived.activate_from(revived_runtime.store)
    assert revived.value == 10


def test_locks_are_volatile():
    from repro.actions.action import Action
    runtime = LocalRuntime()
    counter = Counter(runtime, value=0)
    holder = Action(runtime, [runtime.colours.fresh()], name="holder")
    counter.increment(1, action=holder)
    revived_runtime = restart(runtime)
    revived = Counter(revived_runtime, value=0, uid=counter.uid, persist=False)
    revived.activate_from(revived_runtime.store)
    # the old holder's lock does not exist in the new incarnation
    with revived_runtime.top_level():
        revived.increment(5)
    assert revived.value == 5


def test_statement_and_balance_survive_together():
    runtime = LocalRuntime()
    account = Account(runtime, owner="ann", balance=100)
    with runtime.top_level():
        account.withdraw(30, "rent")
        account.deposit(10, "refund")
    revived_runtime = restart(runtime)
    revived = Account(revived_runtime, uid=account.uid, persist=False)
    revived.activate_from(revived_runtime.store)
    assert revived.balance == 80
    assert revived.statement == [("rent", -30), ("refund", 10)]


def test_make_resumes_after_crash_from_stable_files():
    """The fig. 8 story locally: crash after the object files were made
    consistent; a fresh runtime reactivates them and only links."""
    runtime = LocalRuntime()
    makefile = parse_makefile(PAPER_EXAMPLE)
    graph = DependencyGraph(makefile)
    clock = LogicalClock()
    files = {}
    for name in sorted(graph.sources()):
        files[name] = FileObject(runtime, name, content=f"// {name}",
                                 timestamp=1.0)
    for name in makefile.targets():
        files[name] = FileObject(runtime, name, content="", timestamp=0.0)
    report = LocalMakeEngine(runtime, makefile, files, clock=clock,
                             fail_before="Test").make()
    assert report.failed_at == "Test"

    revived_runtime = restart(runtime)
    revived_files = {}
    for name, old in files.items():
        revived = FileObject(revived_runtime, name, persist=False, uid=old.uid)
        revived.activate_from(revived_runtime.store)
        revived_files[name] = revived
    assert revived_files["Test0.o"].timestamp > 1.0  # survived the crash
    resume = LocalMakeEngine(revived_runtime, makefile, revived_files,
                             clock=clock).make()
    assert resume.rebuilt == ["Test"]
    assert set(resume.up_to_date) == {"Test0.o", "Test1.o"}


def test_serializing_constituent_work_survives_crash():
    """F3's permanence claim against an actual restart."""
    runtime = LocalRuntime()
    from repro.structures import SerializingAction
    counter = Counter(runtime, value=0)
    ser = SerializingAction(runtime, name="ser")
    with ser.constituent(name="B"):
        counter.increment(7)
    # crash before the serializing action ends (its locks are volatile)
    revived_runtime = restart(runtime)
    revived = Counter(revived_runtime, value=0, uid=counter.uid, persist=False)
    revived.activate_from(revived_runtime.store)
    assert revived.value == 7
