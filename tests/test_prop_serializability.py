"""Serializability / atomicity under randomly interleaved transactions.

Hypothesis generates a set of transactions (each a list of counter
increments, possibly ending in an abort) and a random interleaving.  Each
step tries to advance one transaction by one operation, using try-lock
semantics (an unavailable lock requeues the transaction).  At the end,
every counter must equal the sum of increments of exactly the *committed*
transactions — two-phase locking plus undo must mask all interleavings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.actions.action import Action
from repro.locking.modes import LockMode
from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Counter

N_OBJECTS = 3

transactions = st.lists(          # each txn: ([(obj, delta)...], aborts?)
    st.tuples(
        st.lists(
            st.tuples(st.integers(0, N_OBJECTS - 1), st.integers(-5, 5)),
            min_size=1, max_size=4,
        ),
        st.booleans(),
    ),
    min_size=1, max_size=5,
)
schedules = st.lists(st.integers(0, 9), min_size=1, max_size=120)


def drain(live):
    """Round-robin the remaining transactions; abort one on livelock.

    Try-locking transactions can cycle (each holding what another wants);
    when a whole round makes no progress, the youngest running transaction
    aborts — the same victim policy the deadlock detector uses.
    """
    while any(t.state == "running" for t in live):
        progressed = False
        for txn in live:
            if txn.state != "running":
                continue
            before = (txn.cursor, txn.state)
            txn.step()
            if (txn.cursor, txn.state) != before:
                progressed = True
        if not progressed:
            victim = max(
                (t for t in live if t.state == "running"),
                key=lambda t: t.action.uid,
            )
            victim.action.abort()
            victim.state = "aborted"


def try_write(runtime, action, obj, colour):
    """Non-blocking acquire: True if granted now, False to retry later."""
    granted = {"ok": False}

    def complete(request):
        granted["ok"] = request.status.value == "granted"

    request = runtime.locks.request(action, obj.uid, LockMode.WRITE,
                                    colour, complete)
    if not request.settled:
        runtime.locks.cancel_request(request, "try-lock")
        return False
    if granted["ok"]:
        action.record_write(obj, colour)
    return granted["ok"]


@settings(max_examples=120, deadline=None)
@given(transactions, schedules)
def test_committed_transactions_apply_atomically(txns, schedule):
    runtime = LocalRuntime(deadlock_detection=False)
    counters = [Counter(runtime, value=0) for _ in range(N_OBJECTS)]

    class Txn:
        def __init__(self, index, ops, aborts):
            self.ops = list(ops)
            self.aborts = aborts
            self.cursor = 0
            self.action = Action(
                runtime, [runtime.colours.fresh(f"t{index}")],
                name=f"txn{index}",
            )
            self.state = "running"

        def step(self):
            if self.state != "running":
                return
            if self.cursor == len(self.ops):
                if self.aborts:
                    self.action.abort()
                    self.state = "aborted"
                else:
                    self.action.commit()
                    self.state = "committed"
                return
            obj_index, delta = self.ops[self.cursor]
            obj = counters[obj_index]
            if try_write(runtime, self.action, obj,
                         self.action.single_colour()):
                obj.value += delta
                self.cursor += 1

    live = [Txn(i, ops, aborts) for i, (ops, aborts) in enumerate(txns)]
    for pick in schedule:
        live[pick % len(live)].step()
    drain(live)

    expected = [0] * N_OBJECTS
    for txn in live:
        assert txn.state in ("committed", "aborted")
        if txn.state == "committed":
            for obj_index, delta in txn.ops:
                expected[obj_index] += delta
    assert [c.value for c in counters] == expected


@settings(max_examples=80, deadline=None)
@given(transactions, schedules)
def test_stable_store_reflects_only_committed_state(txns, schedule):
    runtime = LocalRuntime(deadlock_detection=False)
    counters = [Counter(runtime, value=0) for _ in range(N_OBJECTS)]

    class Txn:
        def __init__(self, index, ops, aborts):
            self.ops = list(ops)
            self.aborts = aborts
            self.cursor = 0
            self.action = Action(
                runtime, [runtime.colours.fresh(f"t{index}")],
                name=f"txn{index}",
            )
            self.state = "running"

        def step(self):
            if self.state != "running":
                return
            if self.cursor == len(self.ops):
                if self.aborts:
                    self.action.abort()
                    self.state = "aborted"
                else:
                    self.action.commit()
                    self.state = "committed"
                return
            obj_index, delta = self.ops[self.cursor]
            obj = counters[obj_index]
            if try_write(runtime, self.action, obj,
                         self.action.single_colour()):
                obj.value += delta
                self.cursor += 1

    live = [Txn(i, ops, aborts) for i, (ops, aborts) in enumerate(txns)]
    for pick in schedule:
        live[pick % len(live)].step()
    drain(live)
    # the stable store agrees with the live objects everywhere
    for counter in counters:
        stored = runtime.store.read_committed(counter.uid)
        assert stored.payload == counter.snapshot()
