"""The SLO engine: objectives, multi-window burn-rate alerting, CLIs.

Micro tests drive :meth:`SLOEngine.observe_frame` with synthetic
cumulative measures so window arithmetic is checked exactly; integration
tests attach the engine to a real cluster (the attach-point matrix test
doubles as the ``Observability.save`` round-trip check for *all five*
obs layers at once) and the CLI tests pin the ``repro.obs.slo`` console's
content and exit codes beyond the shared contract suite.
"""

import json

import pytest

from repro.cluster.cluster import Cluster
from repro.errors import ClusterError
from repro.obs import Observability
from repro.obs.audit.__main__ import main as audit_main
from repro.obs.introspect.__main__ import main as top_main
from repro.obs.perf import FlightRecorder, TimeSeriesSampler
from repro.obs.postmortem.__main__ import main as why_main
from repro.obs.report import main as report_main
from repro.obs.slo import (
    KINDS,
    Objective,
    SLOEngine,
    default_objectives,
    evaluate_timeline,
)
from repro.obs.slo.__main__ import main as slo_main
from repro.sim.kernel import Timeout


# -- Objective validation ------------------------------------------------------

@pytest.mark.parametrize("kwargs,match", [
    (dict(name="", kind="latency", metric="m", target=1.0), "needs a name"),
    (dict(name="x", kind="bogus"), "unknown objective kind"),
    (dict(name="x", kind="latency", target=1.0), "needs a metric"),
    (dict(name="x", kind="zero"), "needs a metric"),
    (dict(name="x", kind="latency", metric="m", target=0.0), "target"),
    (dict(name="x", kind="abort_rate", target=-0.5), "target"),
    (dict(name="x", kind="latency", metric="m", target=1.0,
          short_window=0), "short_window"),
    (dict(name="x", kind="latency", metric="m", target=1.0,
          short_window=5, long_window=3), "long_window"),
    (dict(name="x", kind="latency", metric="m", target=1.0,
          burn_threshold=0.0), "burn_threshold"),
])
def test_objective_validation_rejects(kwargs, match):
    with pytest.raises(ValueError, match=match):
        Objective(**kwargs)


def test_objective_round_trips_through_dicts():
    objective = Objective("lat", "latency", metric="commit_latency",
                          colour="c1", target=10.0, burn_threshold=2.0,
                          short_window=2, long_window=8, description="d")
    assert Objective.from_dict(objective.to_dict()) == objective


def test_objective_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown objective fields: bogus"):
        Objective.from_dict({"name": "x", "kind": "zero", "metric": "m",
                             "bogus": 1})


def test_default_objectives_cover_the_story():
    objectives = default_objectives()
    names = [objective.name for objective in objectives]
    assert names == ["commit-latency", "abort-rate", "audit-findings",
                     "introspect-drift", "cluster-health"]
    assert all(objective.kind in KINDS for objective in objectives)
    without_health = default_objectives(include_health=False)
    assert [o.name for o in without_health] == names[:-1]


def test_engine_rejects_duplicate_objective_names():
    duplicate = [Objective("x", "zero", metric="m"),
                 Objective("x", "zero", metric="n")]
    with pytest.raises(ValueError, match="duplicate objective names"):
        SLOEngine(objectives=duplicate)


# -- multi-window burn-rate evaluation ----------------------------------------

def _latency_objective(**overrides):
    kwargs = dict(name="lat", kind="latency", metric="commit_latency",
                  target=10.0, short_window=2, long_window=4)
    kwargs.update(overrides)
    return Objective(**kwargs)


def test_single_spike_does_not_page_but_sustained_burn_does():
    hub = Observability()
    recorder = FlightRecorder(hub, capacity=64)
    engine = SLOEngine(hub=hub, objectives=[_latency_objective()])
    assert hub.slo is engine

    # frames carry cumulative (count, sum): one commit per frame
    frames = [
        (10, (1, 5.0)), (20, (2, 10.0)), (30, (3, 15.0)),
        (40, (4, 20.0)), (50, (5, 25.0)),     # steady mean 5: burn 0.5
        (60, (6, 45.0)),                       # one spike of 20
    ]
    for tick, measure in frames:
        assert engine.observe_frame(tick, {"lat": measure}) == []
    # the spike burned the short window (1.25x) but not the long (0.875x):
    # the classic multi-window rule keeps one noisy interval from paging
    assert engine.active() == []
    assert engine.breach_total == 0

    # a *sustained* regression at 20 ticks/commit burns both windows
    opened = engine.observe_frame(70, {"lat": (7, 65.0)})
    assert [entry["objective"] for entry in opened] == ["lat"]
    entry = opened[0]
    assert entry["start_tick"] == 70
    assert entry["end_tick"] is None
    assert entry["burn_short"] == pytest.approx(2.0)
    assert entry["burn_long"] == pytest.approx(1.25)
    assert engine.active() == ["lat"]

    # breach observability: counter, bus event, frozen flight ring
    assert hub.metrics.value("slo_breach_total", objective="lat") == 1.0
    kinds = [event["kind"] for event in hub.auditor.event_dicts()]
    assert "slo.breach" in kinds
    assert [s["kind"] for s in recorder.finding_snapshots] == ["slo-breach"]
    assert "lat" in recorder.finding_snapshots[0]["finding"]

    # recovery clears on the *short* window alone
    engine.observe_frame(80, {"lat": (8, 70.0)})     # short still 1.25x
    assert engine.active() == ["lat"]
    engine.observe_frame(90, {"lat": (9, 75.0)})     # short back to 0.5x
    assert engine.active() == []
    assert entry["end_tick"] == 90
    assert entry["peak_burn"] == pytest.approx(2.0)
    kinds = [event["kind"] for event in hub.auditor.event_dicts()]
    assert "slo.recovered" in kinds
    assert engine.breach_total == 1


def test_zero_tolerance_objective_trips_on_any_increase():
    engine = SLOEngine(objectives=[
        Objective("find", "zero", metric="audit_findings_total",
                  short_window=3, long_window=6)])
    assert engine.observe_frame(1, {"find": (0.0,)}) == []
    assert engine.observe_frame(2, {"find": (0.0,)}) == []
    opened = engine.observe_frame(3, {"find": (1.0,)})
    assert [entry["objective"] for entry in opened] == ["find"]
    # recovers once the increase ages out of the short window
    for tick in (4, 5):
        engine.observe_frame(tick, {"find": (1.0,)})
        assert engine.active() == ["find"]
    engine.observe_frame(6, {"find": (1.0,)})
    assert engine.active() == []
    assert opened[0]["end_tick"] == 6


def test_health_objective_tolerates_degraded_breaches_on_stalled():
    engine = SLOEngine(objectives=[
        Objective("health", "health", metric="cluster_health", target=1.0)])
    assert engine.observe_frame(1, {"health": (0.0, "")}) == []
    # degraded (rank 1) is within target
    assert engine.observe_frame(2, {"health": (1.0, "n1")}) == []
    opened = engine.observe_frame(3, {"health": (2.0, "n2")})
    assert [entry["objective"] for entry in opened] == ["health"]
    assert opened[0]["node"] == "n2"
    engine.observe_frame(4, {"health": (0.0, "")})
    assert engine.active() == []


def test_abort_rate_objective_normalises_by_budget():
    engine = SLOEngine(objectives=[
        Objective("ab", "abort_rate", target=0.25,
                  short_window=2, long_window=4)])
    for tick, measure in [(1, (0.0, 10.0)), (2, (0.0, 20.0)),
                          (3, (0.0, 30.0))]:
        assert engine.observe_frame(tick, {"ab": measure}) == []
    # 5 aborts in the short window (29%) but long window still in budget
    assert engine.observe_frame(4, {"ab": (5.0, 32.0)}) == []
    opened = engine.observe_frame(5, {"ab": (10.0, 34.0)})
    assert [entry["objective"] for entry in opened] == ["ab"]
    assert opened[0]["value"] == pytest.approx(10.0 / 14.0)


def test_breach_ledger_is_bounded():
    engine = SLOEngine(max_breaches=2, objectives=[
        Objective("find", "zero", metric="m", short_window=1,
                  long_window=1)])
    tick = 0
    # round 1 only seeds the two-frame history; rounds 2-5 each trip once
    for round_no in range(1, 6):
        tick += 1
        engine.observe_frame(tick, {"find": (float(round_no),)})  # trips
        tick += 1
        engine.observe_frame(tick, {"find": (float(round_no),)})  # clears
    assert len(engine.breaches) == 2
    assert engine.dropped_breaches == 2
    assert engine.breach_total == 4
    assert engine.dump()["dropped_breaches"] == 2


def test_window_status_reports_per_objective_state():
    engine = SLOEngine(objectives=[_latency_objective()])
    assert engine.window_status() == [
        {"objective": "lat", "state": "no-data", "burn_short": None,
         "burn_long": None, "value": None}]
    engine.observe_frame(1, {"lat": (1, 5.0)})
    engine.observe_frame(2, {"lat": (2, 10.0)})
    status = engine.window_status()
    assert status[0]["state"] == "ok"
    assert status[0]["burn_short"] == pytest.approx(0.5)


# -- measurement from a live hub ----------------------------------------------

def test_measure_reads_every_objective_kind_from_the_registry():
    hub = Observability()
    engine = SLOEngine(hub=hub, objectives=default_objectives())
    hub.observe("commit_latency", 5.0, colour="c1", node="n0")
    hub.observe("commit_latency", 7.0, colour="c2", node="n1")
    hub.count("actions_committed_total", colour="c1")
    hub.count("actions_aborted_total", 2.0, colour="c2")
    hub.count("audit_findings_total")
    hub.metrics.gauge("cluster_health", node="n1").set(2.0)
    hub.metrics.gauge("cluster_health", node="n2").set(1.0)

    measures = engine._measure()
    assert measures["commit-latency"] == (2, 12.0)
    assert measures["abort-rate"] == (2.0, 1.0)
    assert measures["audit-findings"] == (1.0,)
    assert measures["introspect-drift"] == (0.0,)
    assert measures["cluster-health"] == (2.0, "n1")


def test_measure_respects_colour_restriction():
    hub = Observability()
    engine = SLOEngine(hub=hub, objectives=[
        _latency_objective(colour="c1"),
        Objective("ab", "abort_rate", colour="c1", target=0.25)])
    hub.observe("commit_latency", 5.0, colour="c1")
    hub.observe("commit_latency", 100.0, colour="c2")
    hub.count("actions_committed_total", colour="c1")
    hub.count("actions_aborted_total", 9.0, colour="c2")
    measures = engine._measure()
    assert measures["lat"] == (1, 5.0)
    assert measures["ab"] == (0.0, 1.0)


def test_attached_engine_frames_follow_sampler_points():
    hub = Observability()
    sampler = TimeSeriesSampler(hub, interval=1.0)
    engine = SLOEngine(hub=hub).attach(sampler)
    for _ in range(3):
        sampler.sample()
    assert engine.frames == 3


# -- cluster integration -------------------------------------------------------

def test_attach_slo_requires_a_sampler_first():
    cluster = Cluster(seed=1)
    cluster.add_node("a")
    with pytest.raises(ClusterError, match="attach_perf"):
        cluster.attach_slo()


def _matrix_cluster(seed=11):
    """A cluster with all five obs layers attached at once."""
    cluster = Cluster(seed=seed)
    for name in ("a", "b"):
        cluster.add_node(name)
    cluster.attach_perf(interval=5.0, seed=seed)
    cluster.attach_postmortem()
    cluster.attach_introspection(interval=10.0, probe_timeout=4.0)
    engine = cluster.attach_slo(latency_target=50.0)
    client = cluster.client("a")

    def app():
        ref = yield from client.create("b", "counter", value=0)
        for index in range(8):
            action = client.top_level(f"t{index}")
            yield from client.invoke(action, ref, "increment", 1)
            yield from client.commit(action)
            yield Timeout(10.0)

    cluster.run_process("a", app())
    return cluster, engine


def test_cluster_attach_slo_evaluates_on_the_sampler_clock():
    cluster, engine = _matrix_cluster()
    assert cluster.obs.slo is engine
    assert engine.frames > 0
    status = {row["objective"]: row["state"]
              for row in engine.window_status()}
    # a tiny clean run meets every objective (or has no data yet)
    assert all(state in ("ok", "no-data") for state in status.values())
    assert engine.breach_total == 0


def test_save_round_trips_all_five_attach_points(tmp_path):
    """Satellite: every obs layer rides one dump without key collisions,
    and every console can read the result back."""
    cluster, _engine = _matrix_cluster()
    path = str(tmp_path / "matrix.trace.json")
    cluster.obs.save(path)
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)

    assert sorted(document["extra"]) == [
        "flight_recorder", "introspection", "postmortem", "slo", "timeline"]
    assert document["extra"]["slo"]["breaches"] == []
    assert document["extra"]["slo"]["frames"] > 0
    assert document["extra"]["timeline"]["points"]
    assert document["extra"]["introspection"]["probes"] > 0

    # all six consoles accept the one dump with their clean exit code
    assert report_main([path]) == 0
    assert audit_main([path]) == 0
    assert why_main([path, "--aborts"]) == 0
    assert top_main([path]) == 0
    assert slo_main([path]) == 0


# -- offline evaluation --------------------------------------------------------

def _burning_points(mean, frames=4, committed=2.0):
    points = []
    for index in range(frames):
        points.append({
            "tick": float(10 * (index + 1)),
            "colours": {"c1": {
                "commit_latency_count": 2.0,
                "commit_latency_mean": mean,
                "committed": committed,
            }},
        })
    return points


def test_evaluate_timeline_rebuilds_frames_from_points():
    objectives = [_latency_objective(short_window=2, long_window=3)]
    hot = evaluate_timeline(_burning_points(mean=30.0), objectives)
    assert [entry["objective"] for entry in hot.breaches] == ["lat"]
    cool = evaluate_timeline(_burning_points(mean=5.0), objectives)
    assert cool.breaches == []
    # zero/health objectives need registry state points don't carry
    skipped = evaluate_timeline(
        _burning_points(mean=30.0),
        [Objective("find", "zero", metric="audit_findings_total")])
    assert skipped.breaches == []


# -- the slo console -----------------------------------------------------------

def test_slo_cli_deduplicates_ledger_slices_across_segments(tmp_path,
                                                            capsys):
    open_slice = {"objective": "commit-latency", "start_tick": 10.0,
                  "end_tick": None, "peak_burn": 2.0}
    closed_slice = dict(open_slice, end_tick=40.0, peak_burn=3.0)
    for name, entry in (("a.json", open_slice), ("b.json", closed_slice)):
        (tmp_path / name).write_text(json.dumps(
            {"extra": {"slo": {"breaches": [entry]}}}))
    code = slo_main([str(tmp_path / "a.json"), str(tmp_path / "b.json"),
                     "--json"])
    verdict = json.loads(capsys.readouterr().out)
    assert code == 2
    assert verdict["mode"] == "saved ledger"
    # the slice that saw the recovery wins
    assert verdict["breaches"] == [closed_slice]


def test_slo_cli_evaluate_mode_uses_timeline_and_final_counters(tmp_path,
                                                                capsys):
    document = {
        "metrics": {"counters": [
            {"name": "audit_findings_total", "labels": {}, "value": 1.0}]},
        "extra": {"timeline": {"points": _burning_points(mean=30.0)}},
    }
    path = tmp_path / "old.trace.json"
    path.write_text(json.dumps(document))

    assert slo_main([str(path), "--latency-target", "5", "--json"]) == 2
    verdict = json.loads(capsys.readouterr().out)
    assert verdict["mode"] == "offline evaluation"
    breached = {entry["objective"] for entry in verdict["breaches"]}
    assert breached == {"commit-latency", "audit-findings"}

    # generous target: the latency breach goes away, the finding stays
    assert slo_main([str(path), "--latency-target", "1000"]) == 2
    assert "audit-findings" in capsys.readouterr().out


def test_slo_cli_evaluate_flag_overrides_a_saved_ledger(tmp_path, capsys):
    document = {
        "extra": {
            "slo": {"breaches": [{"objective": "x", "start_tick": 1.0,
                                  "end_tick": 2.0, "peak_burn": 9.0}]},
            "timeline": {"points": _burning_points(mean=1.0)},
        },
        "metrics": {"counters": []},
    }
    path = tmp_path / "led.trace.json"
    path.write_text(json.dumps(document))
    assert slo_main([str(path)]) == 2             # ledger mode sees a breach
    capsys.readouterr()
    assert slo_main([str(path), "--evaluate"]) == 0   # re-evaluated: clean
    assert "offline evaluation" in capsys.readouterr().out


def test_slo_cli_custom_objectives_file(tmp_path):
    dump = tmp_path / "run.trace.json"
    dump.write_text(json.dumps({
        "metrics": {"counters": []},
        "extra": {"timeline": {"points": _burning_points(mean=30.0)}},
    }))
    strict = tmp_path / "strict.json"
    strict.write_text(json.dumps([
        {"name": "lat", "kind": "latency", "metric": "commit_latency",
         "target": 5.0, "short_window": 2, "long_window": 3}]))
    relaxed = tmp_path / "relaxed.json"
    relaxed.write_text(json.dumps([
        {"name": "lat", "kind": "latency", "metric": "commit_latency",
         "target": 500.0, "short_window": 2, "long_window": 3}]))
    assert slo_main([str(dump), "--objectives", str(strict)]) == 2
    assert slo_main([str(dump), "--objectives", str(relaxed)]) == 0


def test_slo_cli_rejects_bad_objectives_file(tmp_path, capsys):
    dump = tmp_path / "run.trace.json"
    dump.write_text(json.dumps({"metrics": {"counters": []}}))
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps([{"name": "x", "kind": "bogus"}]))
    assert slo_main([str(dump), "--objectives", str(bad)]) == 1
    assert "cannot load objectives" in capsys.readouterr().err
    assert slo_main([str(dump), "--objectives",
                     str(tmp_path / "missing.json")]) == 1


def test_slo_cli_needs_something_to_evaluate(tmp_path, capsys):
    empty = tmp_path / "empty.json"
    empty.write_text(json.dumps({"spans": []}))
    assert slo_main([str(empty)]) == 1
    assert "nothing to evaluate" in capsys.readouterr().err
