"""Serializing actions: §3.1's three outcomes and lock retention (figs. 3/11)."""

import pytest

from repro.errors import LockTimeout
from repro.locking.modes import LockMode
from repro.structures import SerializingAction
from repro.stdobjects import Counter


def test_outcome_ii_both_commit(runtime):
    """(ii) Effects from B and C become permanent."""
    b_objects = Counter(runtime, value=0)
    shared = Counter(runtime, value=0)
    with SerializingAction(runtime, name="ser") as ser:
        with ser.constituent(name="B"):
            b_objects.increment(10)
            shared.increment(1)
        with ser.constituent(name="C"):
            shared.increment(100)
    assert b_objects.value == 10
    assert shared.value == 101


def test_outcome_i_b_aborts_no_effects(runtime):
    """(i) No effects are produced (because B aborts)."""
    counter = Counter(runtime, value=0)
    ser = SerializingAction(runtime, name="ser")
    with pytest.raises(RuntimeError):
        with ser.constituent(name="B"):
            counter.increment(10)
            raise RuntimeError("B fails")
    ser.cancel()
    assert counter.value == 0


def test_outcome_iii_b_survives_c_abort(runtime):
    """(iii) Effects of B only become permanent (B commits, C aborts)."""
    counter = Counter(runtime, value=0)
    with SerializingAction(runtime, name="ser") as ser:
        with ser.constituent(name="B"):
            counter.increment(10)
        with pytest.raises(RuntimeError):
            with ser.constituent(name="C"):
                counter.increment(100)
                raise RuntimeError("C fails")
    assert counter.value == 10


def test_b_effects_survive_serializing_action_abort(runtime):
    """The §3 requirement nesting cannot give: A aborts after B completed,
    yet B's effects survive (relaxed failure atomicity)."""
    counter = Counter(runtime, value=0)
    ser = SerializingAction(runtime, name="ser")
    with ser.constituent(name="B"):
        counter.increment(10)
    ser.cancel()   # A aborts
    assert counter.value == 10
    assert runtime.store.read_committed(counter.uid).payload == counter.snapshot()


def test_b_updates_permanent_at_b_commit_not_a_commit(runtime):
    """Constituents are top-level w.r.t. permanence: the store is updated at
    B's commit, before A ends."""
    counter = Counter(runtime, value=0)
    with SerializingAction(runtime, name="ser") as ser:
        with ser.constituent(name="B"):
            counter.increment(10)
        assert runtime.store.read_committed(counter.uid).payload == counter.snapshot()


def test_control_retains_locks_between_constituents(runtime):
    """Objects touched by B stay inaccessible to outsiders until A ends."""
    written = Counter(runtime, value=0)
    read_only = Counter(runtime, value=0)
    ser = SerializingAction(runtime, name="ser")
    with ser.constituent(name="B") as b:
        written.increment(10)
        read_only.get(action=b)
    # written: retained as EXCLUSIVE_READ -> outsiders cannot even read
    with runtime.top_level(name="outsider") as out:
        with pytest.raises(LockTimeout):
            runtime.acquire(out, written, LockMode.READ, timeout=0.05)
        # read_only: retained as READ -> outsiders may read but not write
        runtime.acquire(out, read_only, LockMode.READ, timeout=0.05)
        with pytest.raises(LockTimeout):
            runtime.acquire(out, read_only, LockMode.WRITE, timeout=0.05)
        runtime.abort_action(out)
    ser.close()
    # after A ends everything is free
    with runtime.top_level(name="later") as later:
        runtime.acquire(later, written, LockMode.WRITE, timeout=0.05)


def test_later_constituent_acquires_earlier_ones_objects(runtime):
    """C picks up the locks A retained from B (fig. 3's hand-off)."""
    counter = Counter(runtime, value=0)
    with SerializingAction(runtime, name="ser") as ser:
        with ser.constituent(name="B"):
            counter.increment(1)
        with ser.constituent(name="C") as c:
            # no outsider could have intervened; C sees B's value
            assert counter.get(action=c) == 1
            counter.increment(1, action=c)
    assert counter.value == 2


def test_control_action_performs_no_writes_abort_undoes_nothing(runtime):
    counter = Counter(runtime, value=0)
    ser = SerializingAction(runtime, name="ser")
    with ser.constituent(name="B"):
        counter.increment(5)
    before = counter.value
    ser.cancel()
    assert counter.value == before
    assert ser.control.written_objects() == {}


def test_constituents_refused_after_close(runtime):
    ser = SerializingAction(runtime, name="ser")
    ser.close()
    from repro.errors import InvalidActionState
    with pytest.raises(InvalidActionState):
        ser.constituent()


def test_nested_serializing_inside_top_level(runtime):
    """A serializing action may itself be nested inside an atomic action."""
    counter = Counter(runtime, value=0)
    with runtime.top_level(name="outer") as outer:
        with SerializingAction(runtime, parent=outer, name="ser") as ser:
            with ser.constituent(name="B"):
                counter.increment(4)
    assert counter.value == 4
