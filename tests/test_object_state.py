"""ObjectState pack/unpack, including hypothesis round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptState
from repro.objects.state import ObjectState
from repro.util.uid import Uid


def test_typed_roundtrip_in_order():
    state = ObjectState()
    state.pack_int(-42).pack_string("héllo").pack_bool(True)
    state.pack_float(3.5).pack_bytes(b"\x00\x01").pack_uid(Uid("obj", 9))
    out = ObjectState.from_bytes(state.to_bytes())
    assert out.unpack_int() == -42
    assert out.unpack_string() == "héllo"
    assert out.unpack_bool() is True
    assert out.unpack_float() == 3.5
    assert out.unpack_bytes() == b"\x00\x01"
    assert out.unpack_uid() == Uid("obj", 9)
    assert out.exhausted


def test_big_integers_roundtrip():
    value = -(10 ** 40) + 7
    state = ObjectState().pack_int(value)
    assert ObjectState.from_bytes(state.to_bytes()).unpack_int() == value


def test_tag_mismatch_raises_corrupt_state():
    state = ObjectState().pack_int(1)
    out = ObjectState.from_bytes(state.to_bytes())
    with pytest.raises(CorruptState):
        out.unpack_string()


def test_truncated_buffer_raises_corrupt_state():
    payload = ObjectState().pack_string("abcdef").to_bytes()
    with pytest.raises(CorruptState):
        ObjectState.from_bytes(payload[:-3]).unpack_string()


def test_unpack_past_end_raises():
    out = ObjectState.from_bytes(ObjectState().pack_bool(False).to_bytes())
    out.unpack_bool()
    with pytest.raises(CorruptState):
        out.unpack_bool()


def test_pack_int_rejects_bool_and_other_types():
    with pytest.raises(TypeError):
        ObjectState().pack_int(True)
    with pytest.raises(TypeError):
        ObjectState().pack_int("12")


def test_pack_value_rejects_unsupported_types():
    with pytest.raises(TypeError):
        ObjectState().pack_value(object())


def test_nested_containers_roundtrip():
    value = {"names": ["a", "b"], "point": (1, 2.5), "flags": {"on": True, "n": None}}
    state = ObjectState().pack_value(value)
    assert ObjectState.from_bytes(state.to_bytes()).unpack_value() == value


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=50),
    st.binary(max_size=50),
    st.builds(Uid, st.text(min_size=1, max_size=10), st.integers(0, 2 ** 40)),
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=20,
)


@settings(max_examples=150, deadline=None)
@given(_values)
def test_pack_value_roundtrip_property(value):
    state = ObjectState().pack_value(value)
    restored = ObjectState.from_bytes(state.to_bytes()).unpack_value()
    assert restored == value


@settings(max_examples=60, deadline=None)
@given(st.lists(_values, max_size=6))
def test_sequential_values_preserve_order_property(values):
    state = ObjectState()
    for value in values:
        state.pack_value(value)
    out = ObjectState.from_bytes(state.to_bytes())
    assert [out.unpack_value() for _ in values] == values
    assert out.exhausted
