"""Grant rules: conventional (Moss) and coloured (§5.2), table-free."""

import pytest

from repro.colours.colour import Colour
from repro.locking.lock import LockRecord
from repro.locking.modes import LockMode
from repro.locking.owner import StubOwner
from repro.locking.request import LockRequest
from repro.locking.rules import ColouredRules, ConventionalRules
from repro.util.uid import UidGenerator

uids = UidGenerator("a")
cuids = UidGenerator("colour")
ouids = UidGenerator("obj")

RED = Colour(cuids.fresh(), "red")
BLUE = Colour(cuids.fresh(), "blue")


def owner(path_owners=(), colours=(RED, BLUE)):
    """An owner whose proper ancestors are ``path_owners`` (root first)."""
    uid = uids.fresh()
    path = tuple(p.uid for p in path_owners) + (uid,)
    return StubOwner(uid=uid, path=path, colours=frozenset(colours))


def request(req_owner, mode, colour=RED):
    return LockRequest(uids.fresh(), req_owner, ouids.fresh(), mode, colour)


# -- conventional ---------------------------------------------------------------

def test_conventional_read_shared_between_strangers():
    rules = ConventionalRules()
    holder, requester = owner(), owner()
    held = [LockRecord(holder, LockMode.READ, RED)]
    assert rules.may_grant(request(requester, LockMode.READ), held)


def test_conventional_write_blocks_stranger_read():
    rules = ConventionalRules()
    holder, requester = owner(), owner()
    held = [LockRecord(holder, LockMode.WRITE, RED)]
    assert not rules.may_grant(request(requester, LockMode.READ), held)


def test_conventional_exclusive_read_blocks_stranger_read():
    rules = ConventionalRules()
    held = [LockRecord(owner(), LockMode.EXCLUSIVE_READ, RED)]
    assert not rules.may_grant(request(owner(), LockMode.READ), held)


def test_conventional_write_requires_all_holders_ancestors():
    rules = ConventionalRules()
    parent = owner()
    child = owner(path_owners=(parent,))
    held = [LockRecord(parent, LockMode.WRITE, RED)]
    assert rules.may_grant(request(child, LockMode.WRITE), held)
    stranger = owner()
    assert not rules.may_grant(request(stranger, LockMode.WRITE), held)


def test_conventional_read_past_ancestor_write():
    rules = ConventionalRules()
    parent = owner()
    child = owner(path_owners=(parent,))
    held = [LockRecord(parent, LockMode.WRITE, RED)]
    assert rules.may_grant(request(child, LockMode.READ), held)


def test_conventional_self_is_own_ancestor():
    rules = ConventionalRules()
    me = owner()
    held = [LockRecord(me, LockMode.READ, RED)]
    assert rules.may_grant(request(me, LockMode.WRITE), held)  # upgrade


def test_conventional_upgrade_blocked_by_other_reader():
    rules = ConventionalRules()
    me, other = owner(), owner()
    held = [LockRecord(me, LockMode.READ, RED), LockRecord(other, LockMode.READ, RED)]
    assert not rules.may_grant(request(me, LockMode.WRITE), held)


# -- coloured ---------------------------------------------------------------------

def test_coloured_validate_rejects_foreign_colour():
    rules = ColouredRules()
    requester = owner(colours=(RED,))
    req = request(requester, LockMode.WRITE, colour=BLUE)
    assert rules.validate(req) is not None


def test_coloured_validate_accepts_possessed_colour():
    rules = ColouredRules()
    requester = owner(colours=(RED, BLUE))
    assert rules.validate(request(requester, LockMode.WRITE, colour=BLUE)) is None


def test_coloured_write_needs_matching_write_colour_even_for_ancestors():
    """An ancestor's write lock in colour a forces colour a (§5.2)."""
    rules = ColouredRules()
    parent = owner(colours=(RED,))
    child = owner(path_owners=(parent,), colours=(RED, BLUE))
    held = [LockRecord(parent, LockMode.WRITE, RED)]
    assert rules.may_grant(request(child, LockMode.WRITE, colour=RED), held)
    assert not rules.may_grant(request(child, LockMode.WRITE, colour=BLUE), held)


def test_coloured_write_past_ancestor_exclusive_read_of_other_colour():
    """The key rule enabling glued/serializing: ER pins don't fix the colour."""
    rules = ColouredRules()
    control = owner(colours=(RED,))
    member = owner(path_owners=(control,), colours=(RED, BLUE))
    held = [LockRecord(control, LockMode.EXCLUSIVE_READ, RED)]
    assert rules.may_grant(request(member, LockMode.WRITE, colour=BLUE), held)


def test_coloured_write_blocked_for_stranger_regardless_of_colour():
    rules = ColouredRules()
    held = [LockRecord(owner(), LockMode.READ, RED)]
    stranger = owner()
    assert not rules.may_grant(request(stranger, LockMode.WRITE, colour=RED), held)


def test_coloured_read_is_colour_free():
    rules = ColouredRules()
    holder = owner(colours=(RED,))
    requester = owner(colours=(BLUE,))
    held = [LockRecord(holder, LockMode.READ, RED)]
    assert rules.may_grant(request(requester, LockMode.READ, colour=BLUE), held)


def test_coloured_exclusive_read_requires_all_ancestors():
    rules = ColouredRules()
    parent = owner(colours=(RED,))
    child = owner(path_owners=(parent,), colours=(RED, BLUE))
    held = [LockRecord(parent, LockMode.WRITE, RED)]
    assert rules.may_grant(request(child, LockMode.EXCLUSIVE_READ, colour=BLUE), held)
    stranger = owner()
    assert not rules.may_grant(request(stranger, LockMode.EXCLUSIVE_READ, colour=RED), held)


def test_coloured_same_colour_system_matches_conventional():
    """§5.1: all actions one colour => conventional behaviour (spot-check)."""
    coloured, conventional = ColouredRules(), ConventionalRules()
    parent = owner(colours=(RED,))
    child = owner(path_owners=(parent,), colours=(RED,))
    stranger = owner(colours=(RED,))
    cases = [
        ([LockRecord(parent, LockMode.WRITE, RED)], child, LockMode.WRITE),
        ([LockRecord(parent, LockMode.WRITE, RED)], stranger, LockMode.WRITE),
        ([LockRecord(parent, LockMode.READ, RED)], stranger, LockMode.READ),
        ([LockRecord(parent, LockMode.READ, RED)], stranger, LockMode.WRITE),
        ([LockRecord(parent, LockMode.EXCLUSIVE_READ, RED)], stranger, LockMode.READ),
        ([LockRecord(parent, LockMode.EXCLUSIVE_READ, RED)], child, LockMode.READ),
    ]
    for held, requester, mode in cases:
        req = request(requester, mode, colour=RED)
        assert coloured.may_grant(req, held) == conventional.may_grant(req, held)
