"""Distributed actions: invoke/commit/abort, 2PC durability, colours, structures."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkConfig
from repro.cluster.structures import ClusterGluedGroup, ClusterSerializingAction
from repro.errors import ActionAborted, LockTimeout
from repro.locking.modes import LockMode
from repro.objects.state import ObjectState


def make_cluster(nodes=("alpha", "beta", "gamma"), seed=0, config=None):
    cluster = Cluster(seed=seed, config=config)
    for name in nodes:
        cluster.add_node(name)
    return cluster


def committed_int(cluster, ref):
    stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
    return ObjectState.from_bytes(stored.payload).unpack_int()


def test_commit_persists_across_nodes():
    cluster = make_cluster()
    client = cluster.client("alpha")

    def app():
        ref1 = yield from client.create("beta", "counter", value=0)
        ref2 = yield from client.create("gamma", "counter", value=0)
        action = client.top_level("t")
        yield from client.invoke(action, ref1, "increment", 5)
        yield from client.invoke(action, ref2, "increment", 7)
        yield from client.commit(action)
        return ref1, ref2

    ref1, ref2 = cluster.run_process("alpha", app())
    assert committed_int(cluster, ref1) == 5
    assert committed_int(cluster, ref2) == 7


def test_abort_restores_remote_state_and_releases_locks():
    cluster = make_cluster()
    client = cluster.client("alpha")

    def app():
        ref = yield from client.create("beta", "counter", value=10)
        action = client.top_level("t")
        yield from client.invoke(action, ref, "increment", 99)
        yield from client.abort(action)
        reader = client.top_level("r")
        value = yield from client.invoke(reader, ref, "get")
        yield from client.commit(reader)
        return value, ref

    value, ref = cluster.run_process("alpha", app())
    assert value == 10
    assert committed_int(cluster, ref) == 10


def test_uncommitted_state_not_in_stable_store():
    cluster = make_cluster()
    client = cluster.client("alpha")
    holder = {}

    def app():
        ref = yield from client.create("beta", "counter", value=1)
        holder["ref"] = ref
        action = client.top_level("t")
        yield from client.invoke(action, ref, "increment", 100)
        holder["mid"] = committed_int(cluster, ref)
        yield from client.commit(action)

    cluster.run_process("alpha", app())
    assert holder["mid"] == 1  # permanence only at commit
    assert committed_int(cluster, holder["ref"]) == 101


def test_nested_actions_across_nodes():
    cluster = make_cluster()
    client = cluster.client("alpha")

    def app():
        ref = yield from client.create("beta", "counter", value=0)
        outer = client.top_level("outer")
        inner = client.atomic(outer, "inner")
        yield from client.invoke(inner, ref, "increment", 4)
        yield from client.commit(inner)
        # inner committed into outer; abort outer -> undone
        yield from client.abort(outer)
        reader = client.top_level("r")
        value = yield from client.invoke(reader, ref, "get")
        yield from client.commit(reader)
        return value

    assert cluster.run_process("alpha", app()) == 0


def test_fig10_semantics_on_cluster():
    """Red permanent at B's commit, blue undone by A's abort — distributed."""
    cluster = make_cluster()
    client = cluster.client("alpha")

    def app():
        o_red = yield from client.create("beta", "counter", value=1)
        o_blue = yield from client.create("gamma", "counter", value=2)
        red = client.fresh_colour("red")
        blue = client.fresh_colour("blue")
        a = client.coloured([blue], name="A")
        b = client.coloured([red, blue], parent=a, name="B")
        yield from client.invoke(b, o_red, "increment", 10, colour=red)
        yield from client.invoke(b, o_blue, "increment", 20, colour=blue)
        yield from client.commit(b)
        red_mid = committed_int(cluster, o_red)
        yield from client.abort(a)
        reader = client.top_level("r")
        red_after = yield from client.invoke(reader, o_red, "get")
        blue_after = yield from client.invoke(reader, o_blue, "get")
        yield from client.commit(reader)
        return red_mid, red_after, blue_after

    red_mid, red_after, blue_after = cluster.run_process("alpha", app())
    assert red_mid == 11        # permanent at B's commit
    assert red_after == 11      # survives A's abort
    assert blue_after == 2      # undone by A's abort


def test_lock_conflict_between_clients_resolves_on_commit():
    cluster = make_cluster()
    c1 = cluster.client("alpha", "c1")
    c2 = cluster.client("gamma", "c2")
    trace = []

    def writer():
        ref = yield from c1.create("beta", "counter", value=0)
        trace.append(("ref", ref))
        action = c1.top_level("w")
        yield from c1.invoke(action, ref, "increment", 1)
        trace.append(("locked", cluster.kernel.now))
        from repro.sim.kernel import Timeout
        yield Timeout(30.0)
        yield from c1.commit(action)
        trace.append(("committed", cluster.kernel.now))

    def reader():
        from repro.sim.kernel import Timeout
        while not any(t[0] == "locked" for t in trace):
            yield Timeout(1.0)
        ref = next(t[1] for t in trace if t[0] == "ref")
        action = c2.top_level("r")
        value = yield from c2.invoke(action, ref, "get", colour=None)
        trace.append(("read", cluster.kernel.now, value))
        yield from c2.commit(action)
        return value

    cluster.spawn("alpha", writer())
    handle = cluster.spawn("gamma", reader())
    cluster.run()
    assert handle.result == 1
    read_time = next(t[1] for t in trace if t[0] == "read")
    commit_time = next(t[1] for t in trace if t[0] == "committed")
    assert read_time >= commit_time  # the read waited for the writer


def test_epoch_change_aborts_action(  ):
    cluster = make_cluster()
    client = cluster.client("alpha")

    def app():
        ref = yield from client.create("beta", "counter", value=0)
        action = client.top_level("t")
        yield from client.invoke(action, ref, "increment", 1)
        cluster.crash("beta")
        cluster.restart("beta")
        try:
            yield from client.invoke(action, ref, "increment", 1)
            return "unexpected"
        except ActionAborted:
            return action.status.value

    assert cluster.run_process("alpha", app()) == "aborted"


def test_cluster_serializing_action():
    """Distributed fig. 3: constituents permanent, control retains locks."""
    # short lock-wait bound so the blocked outsider read fails fast
    cluster = Cluster(seed=0, lock_wait_timeout=5.0)
    for name in ("alpha", "beta", "gamma"):
        cluster.add_node(name)
    client = cluster.client("alpha")
    other = cluster.client("gamma", "other")

    def app():
        ref = yield from client.create("beta", "counter", value=0)
        ser = ClusterSerializingAction(client, name="ser")
        b = ser.constituent("B")

        def b_body():
            yield from client.invoke(b, ref, "increment", 7)

        yield from ser.run_constituent(b, b_body())
        permanent_mid = committed_int(cluster, ref)
        # outsider cannot even read while the control action retains ER
        outsider = other.top_level("out")
        blocked = False
        try:
            yield from other.invoke(outsider, ref, "get")
        except LockTimeout:
            blocked = True
        if not outsider.status.terminated:
            yield from other.abort(outsider)
        yield from ser.cancel()   # the serializing action aborts
        reader = client.top_level("r")
        value = yield from client.invoke(reader, ref, "get")
        yield from client.commit(reader)
        return permanent_mid, blocked, value

    permanent_mid, blocked, value = cluster.run_process("alpha", app())
    assert permanent_mid == 7   # B's effects permanent at B's commit
    assert blocked              # retention until the serializing action ends
    assert value == 7           # and they survive its abort


def test_cluster_glued_group():
    """Distributed fig. 12: pinned object passes member to member."""
    cluster = make_cluster()
    client = cluster.client("alpha")

    def app():
        kept = yield from client.create("beta", "counter", value=0)
        dropped = yield from client.create("gamma", "counter", value=0)
        glue = ClusterGluedGroup(client, name="g")
        a = glue.member("A")

        def a_body():
            yield from client.invoke(a, kept, "increment", 1)
            yield from client.invoke(a, dropped, "increment", 1)
            yield from glue.hand_over(a, kept)

        yield from client.run_scope(a, a_body())
        # dropped is free for outsiders now; kept is pinned
        free_probe = client.top_level("probe")
        yield from client.invoke(free_probe, dropped, "get")
        yield from client.commit(free_probe)
        b = glue.member("B")

        def b_body():
            value = yield from client.invoke(b, kept, "get")
            yield from client.invoke(b, kept, "increment", 10)
            return value

        seen = yield from client.run_scope(b, b_body())
        yield from glue.close()
        reader = client.top_level("r")
        final = yield from client.invoke(reader, kept, "get")
        yield from client.commit(reader)
        return seen, final

    seen, final = cluster.run_process("alpha", app())
    assert seen == 1
    assert final == 11
