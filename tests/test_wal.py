"""Write-ahead log behaviour."""

from repro.store.wal import WriteAheadLog


def test_append_assigns_increasing_lsns():
    wal = WriteAheadLog()
    records = [wal.append("prepare", txn=i) for i in range(3)]
    assert [r.lsn for r in records] == [1, 2, 3]


def test_records_scan_in_order_and_filter_by_kind():
    wal = WriteAheadLog()
    wal.append("prepare", txn=1)
    wal.append("commit", txn=1)
    wal.append("prepare", txn=2)
    assert [r.payload["txn"] for r in wal.records("prepare")] == [1, 2]
    assert [r.kind for r in wal.records()] == ["prepare", "commit", "prepare"]


def test_last_with_predicate():
    wal = WriteAheadLog()
    wal.append("decision", txn=1, outcome="commit")
    wal.append("decision", txn=2, outcome="abort")
    found = wal.last("decision", where=lambda r: r.payload["txn"] == 1)
    assert found is not None and found.payload["outcome"] == "commit"
    assert wal.last("decision", where=lambda r: r.payload["txn"] == 3) is None


def test_last_without_match_is_none():
    assert WriteAheadLog().last("anything") is None


def test_truncate_before_drops_old_records():
    wal = WriteAheadLog()
    for i in range(5):
        wal.append("r", i=i)
    dropped = wal.truncate_before(4)
    assert dropped == 3
    assert [r.payload["i"] for r in wal.records()] == [3, 4]
    assert len(wal) == 2


def test_payload_is_copied_at_append():
    wal = WriteAheadLog()
    payload = {"a": 1}
    record = wal.append("r", **payload)
    payload["a"] = 2
    assert record.payload["a"] == 1
