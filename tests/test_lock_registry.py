"""LockRegistry: cross-table bookkeeping, transfer and release."""

from repro.colours.colour import Colour
from repro.locking.modes import LockMode
from repro.locking.owner import StubOwner
from repro.locking.registry import LockRegistry
from repro.locking.request import RequestStatus
from repro.util.uid import UidGenerator

auids = UidGenerator("a")
cuids = UidGenerator("colour")
ouids = UidGenerator("obj")

RED = Colour(cuids.fresh(), "red")
BLUE = Colour(cuids.fresh(), "blue")


def owner(path_owners=(), colours=(RED, BLUE)):
    uid = auids.fresh()
    path = tuple(p.uid for p in path_owners) + (uid,)
    return StubOwner(uid=uid, path=path, colours=frozenset(colours))


def test_request_tracks_held_objects():
    registry = LockRegistry()
    me = owner()
    objects = [ouids.fresh() for _ in range(3)]
    for obj in objects:
        registry.request(me, obj, LockMode.WRITE, RED)
    assert registry.objects_held_by(me.uid) == set(objects)


def test_holds_checks_mode_strength_and_colour():
    registry = LockRegistry()
    me = owner()
    obj = ouids.fresh()
    registry.request(me, obj, LockMode.WRITE, RED)
    assert registry.holds(me.uid, obj, LockMode.READ)           # WRITE covers READ
    assert registry.holds(me.uid, obj, LockMode.WRITE, colour=RED)
    assert not registry.holds(me.uid, obj, LockMode.WRITE, colour=BLUE)
    assert not registry.holds(owner().uid, obj, LockMode.READ)


def test_release_action_drops_everything_and_wakes_waiters():
    registry = LockRegistry()
    me, other = owner(), owner()
    obj = ouids.fresh()
    registry.request(me, obj, LockMode.WRITE, RED)
    statuses = []
    registry.request(other, obj, LockMode.WRITE, RED,
                     on_complete=lambda r: statuses.append(r.status))
    assert not statuses
    registry.release_action(me.uid)
    assert statuses == [RequestStatus.GRANTED]
    assert registry.objects_held_by(me.uid) == set()


def test_transfer_on_commit_updates_inheritor_bookkeeping():
    registry = LockRegistry()
    parent = owner(colours=(BLUE,))
    child = owner(path_owners=(parent,), colours=(RED, BLUE))
    obj_red, obj_blue = ouids.fresh(), ouids.fresh()
    registry.request(child, obj_red, LockMode.WRITE, RED)
    registry.request(child, obj_blue, LockMode.WRITE, BLUE)
    registry.transfer_on_commit(
        child.uid, lambda colour: parent if colour == BLUE else None
    )
    assert registry.objects_held_by(child.uid) == set()
    assert registry.objects_held_by(parent.uid) == {obj_blue}
    # the parent can later release what it inherited
    registry.release_action(parent.uid)
    assert registry.objects_held_by(parent.uid) == set()


def test_cancel_waiting_refuses_with_error():
    registry = LockRegistry()
    holder, waiter = owner(), owner()
    obj = ouids.fresh()
    registry.request(holder, obj, LockMode.WRITE, RED)
    captured = []
    registry.request(waiter, obj, LockMode.WRITE, RED,
                     on_complete=lambda r: captured.append(r))
    boom = RuntimeError("victim")
    count = registry.cancel_waiting(waiter.uid, "deadlock", error=boom)
    assert count == 1
    assert captured[0].status is RequestStatus.REFUSED
    assert captured[0].error is boom


def test_waits_for_edges_reflect_blocking():
    registry = LockRegistry()
    a, b = owner(), owner()
    obj1, obj2 = ouids.fresh(), ouids.fresh()
    registry.request(a, obj1, LockMode.WRITE, RED)
    registry.request(b, obj2, LockMode.WRITE, RED)
    registry.request(a, obj2, LockMode.WRITE, RED)  # a waits for b
    registry.request(b, obj1, LockMode.WRITE, RED)  # b waits for a
    edges = set(registry.waits_for_edges())
    assert (a.uid, b.uid) in edges and (b.uid, a.uid) in edges


def test_tables_garbage_collected_when_idle():
    registry = LockRegistry()
    me = owner()
    obj = ouids.fresh()
    registry.request(me, obj, LockMode.WRITE, RED)
    assert len(list(registry.tables())) == 1
    registry.release_action(me.uid)
    assert len(list(registry.tables())) == 0


def test_pending_requests_of_owner():
    registry = LockRegistry()
    holder, waiter = owner(), owner()
    obj = ouids.fresh()
    registry.request(holder, obj, LockMode.WRITE, RED)
    registry.request(waiter, obj, LockMode.WRITE, RED)
    pending = registry.pending_requests_of(waiter.uid)
    assert len(pending) == 1 and pending[0].owner.uid == waiter.uid
    assert registry.pending_requests_of(holder.uid) == []
