"""Metrics primitives: counters, gauges, histogram percentiles, dumps."""

import threading

import pytest

from repro.obs import Observability
from repro.obs.bus import EventBus
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.runtime import LocalRuntime
from repro.stdobjects import Counter as CounterObject
from repro.trace import TraceRecorder


def test_counter_labels_fan_out_independently():
    registry = MetricsRegistry()
    registry.counter("actions_committed_total", colour="c1").inc()
    registry.counter("actions_committed_total", colour="c1").inc()
    registry.counter("actions_committed_total", colour="c2").inc()
    assert registry.value("actions_committed_total", colour="c1") == 2
    assert registry.value("actions_committed_total", colour="c2") == 1
    assert registry.value("actions_committed_total", colour="c3") == 0


def test_counter_rejects_negative_increment():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("x").inc(-1)


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("queue_depth", node="n1")
    gauge.set(5)
    gauge.inc(2)
    gauge.dec(4)
    assert registry.value("queue_depth", node="n1") == 3


def test_histogram_exact_aggregates_and_percentiles():
    histogram = Histogram()
    for value in range(1, 101):  # 1..100
        histogram.observe(float(value))
    assert histogram.count == 100
    assert histogram.total == 5050.0
    assert histogram.min == 1.0
    assert histogram.max == 100.0
    assert histogram.mean == 50.5
    # linear interpolation over 100 samples: rank p/100*(n-1)
    assert histogram.percentile(0) == 1.0
    assert histogram.percentile(100) == 100.0
    assert histogram.percentile(50) == pytest.approx(50.5)
    assert histogram.percentile(95) == pytest.approx(95.05)


def test_histogram_single_sample_and_bounds():
    histogram = Histogram()
    assert histogram.percentile(50) is None
    histogram.observe(7.0)
    assert histogram.percentile(50) == 7.0
    assert histogram.percentile(95) == 7.0
    with pytest.raises(ValueError):
        histogram.percentile(101)


def test_histogram_sample_cap_keeps_exact_aggregates():
    histogram = Histogram(max_samples=10)
    for value in range(100):
        histogram.observe(float(value))
    assert histogram.count == 100
    assert histogram.max == 99.0
    assert len(histogram.samples) == 10
    summary = histogram.summary()
    assert summary["truncated"] is True
    assert summary["count"] == 100


def test_dump_is_deterministic_and_json_shaped():
    registry = MetricsRegistry()
    registry.counter("b_total", node="n2").inc()
    registry.counter("b_total", node="n1").inc()
    registry.counter("a_total").inc(3)
    registry.histogram("lat", kind="x").observe(1.5)
    dump = registry.dump()
    assert [row["name"] for row in dump["counters"]] == [
        "a_total", "b_total", "b_total"]
    assert [row["labels"] for row in dump["counters"]] == [
        {}, {"node": "n1"}, {"node": "n2"}]
    histogram_row = dump["histograms"][0]
    assert histogram_row["name"] == "lat"
    assert histogram_row["count"] == 1
    assert histogram_row["p50"] == 1.5
    assert dump == registry.dump()  # stable across calls


def test_registry_clear_resets_everything():
    registry = MetricsRegistry()
    registry.counter("x").inc()
    registry.clear()
    assert registry.value("x") == 0
    assert registry.dump()["counters"] == []


def test_registry_thread_safety_under_contention():
    registry = MetricsRegistry()

    def hammer():
        for _ in range(500):
            registry.counter("hits", worker="shared").inc()

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert registry.value("hits", worker="shared") == 2000


def test_event_bus_isolates_subscriber_errors():
    bus = EventBus()
    seen = []

    def bad(event):
        raise RuntimeError("subscriber bug")

    bus.subscribe(bad)
    bus.subscribe(seen.append)
    bus.emit(1.0, "tick", n=1)
    assert len(seen) == 1
    assert seen[0].kind == "tick"
    assert seen[0].labels["n"] == 1


def test_local_runtime_attach_observability():
    runtime = LocalRuntime()
    hub = Observability()
    runtime.attach_observability(hub)
    counter = CounterObject(runtime, value=0)
    with runtime.top_level(name="A"):
        counter.increment(1)
    try:
        with runtime.top_level(name="B"):
            counter.increment(1)
            raise RuntimeError("force abort")
    except RuntimeError:
        pass
    dump = hub.dump()
    committed = [row for row in dump["counters"]
                 if row["name"] == "actions_committed_total"]
    aborted = [row for row in dump["counters"]
               if row["name"] == "actions_aborted_total"]
    assert sum(row["value"] for row in committed) == 1
    assert sum(row["value"] for row in aborted) == 1
    grants = [row for row in dump["counters"]
              if row["name"] == "lock_grants_total"]
    assert grants
    spans = {s.name for s in hub.tracer.snapshot()}
    assert {"action:A", "action:B"} <= spans


def test_trace_recorder_snapshot_is_safe_during_mutation():
    recorder = TraceRecorder()
    stop = threading.Event()
    errors = []

    class FakeAction:
        def __init__(self, index):
            self.uid = f"a{index}"
            self.name = f"act{index}"
            self.parent = None
            self.colours = ()

    def writer():
        index = 0
        while not stop.is_set():
            recorder.on_action_created(FakeAction(index))
            index += 1

    def reader():
        try:
            for _ in range(200):
                for event in recorder.snapshot():  # must never see a torn list
                    assert event.kind == "begin"
        except Exception as error:  # pragma: no cover - the failure mode
            errors.append(error)

    writer_thread = threading.Thread(target=writer)
    reader_thread = threading.Thread(target=reader)
    writer_thread.start()
    reader_thread.start()
    reader_thread.join()
    stop.set()
    writer_thread.join()
    assert errors == []
