"""Uid and UidGenerator behaviour."""

from repro.util.uid import Uid, UidGenerator


def test_fresh_uids_are_unique():
    gen = UidGenerator("x")
    uids = [gen.fresh() for _ in range(100)]
    assert len(set(uids)) == 100


def test_uid_ordering_matches_creation_order():
    gen = UidGenerator("x")
    first, second, third = gen.fresh(), gen.fresh(), gen.fresh()
    assert first < second < third


def test_uids_are_namespaced():
    a = UidGenerator("alpha").fresh()
    b = UidGenerator("beta").fresh()
    assert a != b
    assert a.namespace == "alpha" and b.namespace == "beta"


def test_uid_is_hashable_and_usable_as_dict_key():
    gen = UidGenerator("x")
    uid = gen.fresh()
    table = {uid: "value"}
    assert table[Uid("x", uid.sequence)] == "value"


def test_uid_str_includes_namespace_and_sequence():
    assert str(Uid("obj", 42)) == "obj:42"


def test_generators_are_independent():
    gen_a, gen_b = UidGenerator("n"), UidGenerator("n")
    assert gen_a.fresh() == gen_b.fresh()  # same namespace, same sequence start
