"""Standard object types: state round-trips and transactional behaviour."""

import pytest

from repro.stdobjects import Account, Counter, FifoQueue, FileObject, Register
from repro.stdobjects.account import InsufficientFunds


def test_counter_roundtrip_through_store(runtime):
    counter = Counter(runtime, value=41)
    with runtime.top_level():
        counter.increment()
    fresh = Counter(runtime, value=0, uid=counter.uid, persist=False)
    fresh.activate_from(runtime.store)
    assert fresh.value == 42


def test_counter_abort_restores(runtime):
    counter = Counter(runtime, value=5)
    with pytest.raises(RuntimeError):
        with runtime.top_level():
            counter.set(99)
            raise RuntimeError
    assert counter.value == 5


def test_register_holds_structured_values(runtime):
    register = Register(runtime, value=None)
    payload = {"xs": [1, 2, 3], "label": "hi"}
    with runtime.top_level():
        register.set(payload)
    fresh = Register(runtime, uid=register.uid, persist=False)
    fresh.activate_from(runtime.store)
    assert fresh.value == payload


def test_account_deposit_withdraw_and_statement(runtime):
    account = Account(runtime, owner="ann", balance=100)
    with runtime.top_level():
        account.deposit(50, "salary")
        account.withdraw(30, "rent")
    assert account.balance == 120
    assert account.statement == [("salary", 50), ("rent", -30)]


def test_account_insufficient_funds_aborts_action(runtime):
    account = Account(runtime, owner="bob", balance=10)
    with pytest.raises(InsufficientFunds):
        with runtime.top_level():
            account.deposit(5)
            account.withdraw(100)
    assert account.balance == 10
    assert account.statement == []


def test_account_charge_may_overdraw(runtime):
    account = Account(runtime, owner="carol", balance=5)
    with runtime.top_level():
        account.charge(20, "service fee")
    assert account.balance == -15


def test_fifo_queue_order_and_abort(runtime):
    queue = FifoQueue(runtime)
    with runtime.top_level():
        queue.enqueue("a")
        queue.enqueue("b")
    with pytest.raises(RuntimeError):
        with runtime.top_level():
            assert queue.dequeue() == "a"
            raise RuntimeError
    assert queue.peek_all_unlocked() if hasattr(queue, "peek_all_unlocked") else True
    with runtime.top_level():
        assert queue.dequeue() == "a"  # the aborted dequeue was undone
        assert queue.dequeue() == "b"
        assert queue.dequeue() is None
        assert queue.length() == 0


def test_file_write_updates_timestamp(runtime):
    source = FileObject(runtime, "test0.c", content="int main;", timestamp=1.0)
    with runtime.top_level():
        assert source.stat() == 1.0
        source.write("int main(void);", timestamp=7.5)
        assert source.read() == "int main(void);"
    assert source.timestamp == 7.5


def test_file_touch_bumps_only_timestamp(runtime):
    source = FileObject(runtime, "a.h", content="x", timestamp=1.0)
    with runtime.top_level():
        source.touch(9.0)
    assert source.content == "x"
    assert source.timestamp == 9.0


def test_file_state_roundtrip(runtime):
    source = FileObject(runtime, "m.c", content="body", timestamp=3.25)
    clone = FileObject(runtime, "", persist=False)
    clone.restore_snapshot(source.snapshot())
    assert (clone.name, clone.content, clone.timestamp) == ("m.c", "body", 3.25)
