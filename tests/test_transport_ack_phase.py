"""The two-phase RPC protocol: acks, long operations, reply polling."""

from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkConfig
from repro.errors import RpcTimeout


def pair(config=None, seed=0, **cluster_kwargs):
    cluster = Cluster(seed=seed, config=config, **cluster_kwargs)
    cluster.add_node("a")
    cluster.add_node("b")
    return cluster, cluster.transports["a"], cluster.transports["b"]


def test_long_operation_outlives_short_attempt_timeout():
    """A handler that takes 50 units must not be failed by the 5-unit
    per-attempt timeout: the ACK switches the client to patient waiting."""
    cluster, ta, tb = pair()

    def slow(msg, respond):
        cluster.kernel.schedule(50.0, lambda: respond(True, "done"))

    tb.register("slow", slow)

    def app():
        value = yield from ta.call("b", "slow", {}, timeout=5.0, retries=2,
                                   completion_timeout=200.0)
        return (value, cluster.kernel.now)

    value, when = cluster.run_process("a", app())
    assert value == "done"
    assert when >= 50.0


def test_unacknowledged_fails_fast():
    """A dead server never ACKs: failure within attempts*timeout, without
    waiting out the long completion bound."""
    cluster, ta, tb = pair()
    cluster.crash("b")

    def app():
        try:
            yield from ta.call("b", "x", {}, timeout=2.0, retries=2,
                               completion_timeout=500.0)
        except RpcTimeout as error:
            return (str(error), cluster.kernel.now)

    message, when = cluster.run_process("a", app())
    assert "unacknowledged" in message
    assert when < 20.0


def test_lost_reply_recovered_by_polling():
    """The request arrives (ACKed, executed once); the reply is lost; the
    client's completion-phase poll fetches it from the reply cache."""
    cluster, ta, tb = pair()
    executions = {"n": 0}

    def handler(msg, respond):
        executions["n"] += 1
        respond(True, "value")

    tb.register("op", handler)
    # surgically lose the first reply: wrap the network delivery
    network = cluster.network
    original_send = network.send
    dropped = {"done": False}

    def lossy_send(message):
        if message.kind == "rpc_reply" and not dropped["done"]:
            dropped["done"] = True
            network.dropped_count += 1
            return  # lost
        original_send(message)

    network.send = lossy_send

    def app():
        value = yield from ta.call("b", "op", {}, timeout=5.0, retries=3,
                                   completion_timeout=100.0)
        return value

    assert cluster.run_process("a", app()) == "value"
    assert executions["n"] == 1      # the poll hit the cache, no re-execution
    assert dropped["done"]


def test_acked_but_crashed_server_times_out_at_completion_bound():
    cluster, ta, tb = pair()

    def never(msg, respond):
        pass  # acked (dispatch acks first) but never answers

    tb.register("void", never)

    def app():
        try:
            yield from ta.call("b", "void", {}, timeout=2.0, retries=1,
                               completion_timeout=30.0)
        except RpcTimeout as error:
            return (str(error), cluster.kernel.now)

    message, when = cluster.run_process("a", app())
    assert "no reply within" in message
    assert 30.0 <= when < 60.0


def test_duplicate_request_reacked_not_reexecuted():
    cluster, ta, tb = pair(
        config=NetworkConfig(duplicate_probability=0.5), seed=13
    )
    executions = {"n": 0}

    def handler(msg, respond):
        executions["n"] += 1
        cluster.kernel.schedule(20.0, lambda: respond(True, executions["n"]))

    tb.register("op", handler)

    def app():
        results = []
        for _ in range(5):
            value = yield from ta.call("b", "op", {}, timeout=3.0, retries=5,
                                       completion_timeout=100.0)
            results.append(value)
        return results

    assert cluster.run_process("a", app()) == [1, 2, 3, 4, 5]
    assert executions["n"] == 5
