"""Read-one/write-all replication and the replicated name server."""

import pytest

from repro.cluster.cluster import Cluster
from repro.errors import NameNotBound, RpcTimeout
from repro.objects.state import ObjectState
from repro.replication.group import ReplicaGroup
from repro.replication.nameserver import ReplicatedNameServer


def make_cluster(n=3, seed=0):
    cluster = Cluster(seed=seed)
    names = [f"n{i}" for i in range(n)]
    for name in names:
        cluster.add_node(name)
    return cluster, names


def committed_value(cluster, ref):
    stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
    return ObjectState.from_bytes(stored.payload).unpack_value()


def test_write_all_updates_every_replica():
    cluster, names = make_cluster()
    client = cluster.client("n0")
    holder = {}

    def app():
        group = yield from ReplicaGroup.create(
            client, names, "register", value=0
        )
        holder["group"] = group
        action = client.top_level("w")
        yield from group.invoke(action, "set", 7)
        yield from client.commit(action)

    cluster.run_process("n0", app())
    for ref in holder["group"].replicas:
        assert committed_value(cluster, ref) == 7


def test_read_one_uses_first_available_replica():
    cluster, names = make_cluster()
    client = cluster.client("n0")

    def app():
        group = yield from ReplicaGroup.create(client, names, "register", value=3)
        action = client.top_level("r")
        value = yield from group.invoke(action, "get")
        yield from client.commit(action)
        return value

    assert cluster.run_process("n0", app()) == 3


def test_read_survives_replica_crash():
    """Availability: with the first replica down, reads fail over."""
    cluster, names = make_cluster(n=4)
    client = cluster.client("n0")  # the client's node stays up

    def app():
        group = yield from ReplicaGroup.create(
            client, ["n1", "n2", "n3"], "register", value=9
        )
        cluster.crash("n1")
        action = client.top_level("r")
        value = yield from group.invoke(action, "get")
        yield from client.commit(action)
        return value, len(group.available_replicas())

    value, available = cluster.run_process("n0", app())
    assert value == 9
    assert available == 2


def test_write_all_fails_when_replica_down_and_action_aborts():
    """Strict ROWA: a write with a dead replica cannot succeed; aborting
    leaves the surviving replicas unchanged (mutual consistency)."""
    cluster, names = make_cluster()
    client = cluster.client("n0")
    holder = {}

    def app():
        group = yield from ReplicaGroup.create(client, names, "register", value=1)
        holder["group"] = group
        cluster.crash(group.replicas[-1].node)
        action = client.top_level("w")
        try:
            yield from group.invoke(action, "set", 2)
            yield from client.commit(action)
            return "committed"
        except RpcTimeout:
            return action.status.value

    assert cluster.run_process("n0", app()) == "aborted"
    for ref in holder["group"].replicas[:-1]:
        assert committed_value(cluster, ref) == 1


def test_mismatched_replica_types_rejected():
    from repro.errors import ClusterError
    cluster, names = make_cluster()
    client = cluster.client("n0")

    def app():
        a = yield from client.create("n0", "register", value=0)
        b = yield from client.create("n1", "counter", value=0)
        try:
            ReplicaGroup(client, [a, b])
            return "accepted"
        except ClusterError:
            return "rejected"
        yield  # pragma: no cover - keep it a generator

    assert cluster.run_process("n0", app()) == "rejected"


# -- name server -------------------------------------------------------------------

def test_nameserver_bind_lookup_unbind():
    cluster, names = make_cluster()
    client = cluster.client("n0")

    def app():
        ns = yield from ReplicatedNameServer.create(client, names)
        yield from ns.bind("printer", {"node": "n2", "port": 9100})
        value = yield from ns.lookup("printer")
        listing = yield from ns.names()
        removed = yield from ns.unbind("printer")
        return value, listing, removed

    value, listing, removed = cluster.run_process("n0", app())
    assert value == {"node": "n2", "port": 9100}
    assert listing == ["printer"]
    assert removed is True


def test_nameserver_lookup_missing_raises():
    cluster, names = make_cluster()
    client = cluster.client("n0")

    def app():
        ns = yield from ReplicatedNameServer.create(client, names)
        try:
            yield from ns.lookup("ghost")
            return "found"
        except NameNotBound:
            return "missing"

    assert cluster.run_process("n0", app()) == "missing"


def test_nameserver_survives_replica_crash_for_lookups():
    cluster, names = make_cluster(n=4)
    client = cluster.client("n0")

    def app():
        ns = yield from ReplicatedNameServer.create(client, ["n1", "n2", "n3"])
        yield from ns.bind("svc", "addr-1")
        cluster.crash("n1")
        value = yield from ns.lookup("svc")
        return value

    assert cluster.run_process("n0", app()) == "addr-1"


def test_nameserver_update_independent_of_invoking_action(  ):
    """§4(ii): 'There is no reason to undo the name server updates should
    the invoking action abort.'"""
    cluster, names = make_cluster()
    client = cluster.client("n0")

    def app():
        ns = yield from ReplicatedNameServer.create(client, names)
        app_action = client.top_level("app")
        ref = yield from client.create("n1", "counter", value=0)
        yield from client.invoke(app_action, ref, "increment", 1)
        # the application discovers a dead object and re-binds it, as a
        # top-level independent action of app_action
        yield from ns.bind("obj", "moved-to-n2", invoker=app_action)
        yield from client.abort(app_action)
        value = yield from ns.lookup("obj")
        reader = client.top_level("r")
        counter = yield from client.invoke(reader, ref, "get")
        yield from client.commit(reader)
        return value, counter

    value, counter = cluster.run_process("n0", app())
    assert value == "moved-to-n2"   # name-server update survived
    assert counter == 0             # the application's own work was undone
