"""Commutativity-based coordination avoidance in the commit protocol.

Fully-commuting colours (CommutingCounter updates, escrow-bounded
account debits, append-log producers) skip the prepare round: the
coordinator logs the commit decision first and each participant locally
vote-and-applies the colour's merged effects in a single round.  These
tests cover the happy path, the downgrade to classic/fast-path 2PC when
a non-commuting operation joins the colour, merged effects under
concurrency (no lost updates), redo after a participant restart,
duplicate-delivery idempotence under partitions, and the lock-conflict
fast abort that rides along in this change.

Every test asserts the online invariant auditor stayed silent — in
particular its commute-soundness check, which would flag a local
decision on a colour that was not fully commuting.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkConfig
from repro.errors import InvalidActionState, LockRefused
from repro.obs.postmortem import DEADLOCK_VICTIM, LOCK_CONFLICT
from repro.objects.state import ObjectState
from repro.sim.kernel import Timeout
from repro.stdobjects.account import InsufficientFunds


FIXED = NetworkConfig(min_delay=1.0, max_delay=1.0)


def make_cluster(names, seed=0, config=None, **kwargs):
    cluster = Cluster(seed=seed, config=config, **kwargs)
    for name in names:
        cluster.add_node(name)
    return cluster


def committed_int(cluster, ref):
    stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
    return ObjectState.from_bytes(stored.payload).unpack_int()


def committed_balance(cluster, ref):
    stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
    state = ObjectState.from_bytes(stored.payload)
    state.unpack_string()                     # owner
    return state.unpack_int()


def committed_entries(cluster, ref):
    stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
    return ObjectState.from_bytes(stored.payload).unpack_value()


def metric_sum(cluster, name, **match):
    return sum(instrument.value
               for labels, instrument in cluster.obs.metrics.series(name)
               if all(labels.get(k) == v for k, v in match.items()))


def assert_audit_clean(cluster):
    findings = cluster.obs.auditor.report()
    assert findings == [], [f.to_dict() for f in findings]


# -- happy path ---------------------------------------------------------------


def test_commute_commit_is_one_round_with_no_phase_two():
    """A fully-commuting two-participant colour commits in one parallel
    round: each participant's prepare carries the decision, the redo ops
    and the finish routing — no txn_commit, no finish_commit follows."""
    cluster = make_cluster(["coord", "p1", "p2"], config=FIXED)
    client = cluster.client("coord")
    holder = {}

    def app():
        ref1 = yield from client.create("p1", "commuting_counter", value=0)
        ref2 = yield from client.create("p2", "commuting_counter", value=10)
        action = client.top_level("t")
        yield from client.invoke(action, ref1, "add", 3)
        yield from client.invoke(action, ref2, "subtract", 4)
        started = cluster.kernel.now
        sent = cluster.network.sent_count
        yield from client.commit(action)
        holder["duration"] = cluster.kernel.now - started
        holder["messages"] = cluster.network.sent_count - sent
        holder.update(ref1=ref1, ref2=ref2)

    cluster.run_process("coord", app())
    assert committed_int(cluster, holder["ref1"]) == 3
    assert committed_int(cluster, holder["ref2"]) == 6
    # one parallel round trip at delay 1.0, regardless of participants
    assert holder["duration"] == 2.0
    # 2 RPCs (one per participant) at 3 messages each — the classic
    # protocol needs prepare + decision rounds for both
    assert holder["messages"] == 6
    assert metric_sum(cluster, "twopc_fast_path_total", kind="commute") == 2
    for name in ("p1", "p2"):
        assert cluster.servers[name].mirrors == {}
        assert cluster.servers[name].prepared == {}
    # the decision was durable before the fan-out
    assert cluster.nodes["coord"].wal.last("coord_commit") is not None
    assert cluster.nodes["coord"].wal.last("coord_end") is not None
    assert_audit_clean(cluster)


def test_concurrent_commuting_commits_lose_no_updates():
    """Interleaved committing updaters on shared counters: the commute
    path merges each colour's ops onto *committed* state, so no commit
    order can overwrite another transaction's applied effect (the
    snapshot-promotion race the classic path has for semantic objects)."""
    cluster = make_cluster(["n0", "n1", "n2"], seed=3)
    refs = []
    outcomes = {"committed": 0}

    def setup():
        client = cluster.client("n0")
        for host in ("n1", "n2"):
            ref = yield from client.create(host, "commuting_counter", value=0)
            refs.append(ref)

    cluster.run_process("n0", setup())

    def worker(worker_id):
        client = cluster.client(f"n{worker_id % 3}", name=f"w{worker_id}")
        for op in range(4):
            action = client.top_level(f"w{worker_id}.op{op}")
            for ref in refs:
                yield from client.invoke(action, ref, "add", 1)
            yield from client.commit(action)
            outcomes["committed"] += 1

    for worker_id in range(4):
        cluster.spawn(f"n{worker_id % 3}", worker(worker_id),
                      name=f"worker{worker_id}")
    cluster.run()
    assert outcomes["committed"] == 16
    for ref in refs:
        assert committed_int(cluster, ref) == 16
    assert metric_sum(cluster, "twopc_fast_path_total", kind="commute") > 0
    assert_audit_clean(cluster)


def test_escrow_debits_commute_within_the_bound():
    """Escrow debits reserve at execute time: concurrent debits that fit
    both commit on the commute path; one that does not fit fails up front
    (InsufficientFunds at invoke, not a commit-time abort)."""
    cluster = make_cluster(["coord", "bank"], config=FIXED)
    client = cluster.client("coord")
    holder = {}

    def app():
        ref = yield from client.create("bank", "escrow_account",
                                       owner="E", balance=10)
        t1 = client.top_level("t1")
        yield from client.invoke(t1, ref, "debit", 6)
        # t1 holds a 6-unit reservation: a second debit sees available=4
        t2 = client.top_level("t2")
        try:
            yield from client.invoke(t2, ref, "debit", 6)
            holder["t2"] = "debited"
        except (InsufficientFunds, InvalidActionState):
            # the transport rebuilds InsufficientFunds as its base class
            holder["t2"] = "insufficient"
            yield from client.abort(t2)
        t3 = client.top_level("t3")
        yield from client.invoke(t3, ref, "debit", 4)
        yield from client.commit(t1)
        yield from client.commit(t3)
        holder["ref"] = ref

    cluster.run_process("coord", app())
    assert holder["t2"] == "insufficient"
    assert committed_balance(cluster, holder["ref"]) == 0
    live = cluster.servers["bank"].objects[holder["ref"].uid]
    assert live.escrow_available == 0
    assert metric_sum(cluster, "twopc_fast_path_total", kind="commute") == 2
    assert_audit_clean(cluster)


def test_append_log_producers_commit_locally():
    """Two producers appending concurrently both take the commute path;
    the committed log holds exactly the committed entries (as a set —
    entry order follows commit order by contract)."""
    cluster = make_cluster(["n0", "n1"], seed=7)
    holder = {}

    def setup():
        client = cluster.client("n0")
        holder["ref"] = yield from client.create("n1", "append_log")

    cluster.run_process("n0", setup())

    def producer(tag):
        client = cluster.client("n0", name=tag)
        for index in range(3):
            action = client.top_level(f"{tag}.{index}")
            yield from client.invoke(action, holder["ref"], "append",
                                     f"{tag}:{index}")
            yield from client.commit(action)

    cluster.spawn("n0", producer("a"), name="prod-a")
    cluster.spawn("n0", producer("b"), name="prod-b")
    cluster.run()
    entries = committed_entries(cluster, holder["ref"])
    assert sorted(entries) == sorted(
        f"{tag}:{index}" for tag in "ab" for index in range(3))
    assert metric_sum(cluster, "twopc_fast_path_total", kind="commute") == 6
    assert_audit_clean(cluster)


# -- downgrade to classic -----------------------------------------------------


def test_non_commuting_update_forces_classic_fallback():
    """The moment a plain WRITE update joins the colour, the whole colour
    falls back to classic/fast-path 2PC — whichever order the operations
    arrived in — and no local decision is taken anywhere."""
    cluster = make_cluster(["coord", "s1", "s2"], config=FIXED)
    client = cluster.client("coord")
    holder = {}

    def app():
        cc = yield from client.create("s1", "commuting_counter", value=0)
        pc = yield from client.create("s2", "counter", value=0)
        # commuting op first, plain WRITE second
        t1 = client.top_level("t1")
        yield from client.invoke(t1, cc, "add", 2)
        yield from client.invoke(t1, pc, "increment", 3)
        yield from client.commit(t1)
        # plain WRITE first, commuting op second: same downgrade
        t2 = client.top_level("t2")
        yield from client.invoke(t2, pc, "increment", 3)
        yield from client.invoke(t2, cc, "add", 2)
        yield from client.commit(t2)
        holder.update(cc=cc, pc=pc)

    cluster.run_process("coord", app())
    assert committed_int(cluster, holder["cc"]) == 4
    assert committed_int(cluster, holder["pc"]) == 6
    assert metric_sum(cluster, "twopc_fast_path_total", kind="commute") == 0
    # the fallback is the *fast-path* 2PC: piggybacked decisions here
    assert metric_sum(cluster, "twopc_fast_path_total", kind="piggyback") == 2
    assert_audit_clean(cluster)


def test_commute_off_reaches_the_same_state():
    """``commute=False`` runs the identical (sequential) workload through
    classic/fast-path 2PC and must land on the same committed state."""
    finals = {}
    for commute in (False, True):
        cluster = make_cluster(["coord", "s1", "s2"], seed=11,
                               commute=commute)
        client = cluster.client("coord")
        holder = {}

        def app():
            a = yield from client.create("s1", "commuting_counter", value=0)
            b = yield from client.create("s2", "escrow_account",
                                         owner="B", balance=50)
            for step in range(3):
                action = client.top_level(f"t{step}")
                yield from client.invoke(action, a, "add", 2)
                yield from client.invoke(action, b, "debit", 5)
                yield from client.commit(action)
            holder.update(a=a, b=b)

        cluster.run_process("coord", app())
        finals[commute] = (committed_int(cluster, holder["a"]),
                           committed_balance(cluster, holder["b"]))
        expected = 3.0 * 2 if commute else 0.0
        assert metric_sum(cluster, "twopc_fast_path_total",
                          kind="commute") == expected
        assert_audit_clean(cluster)
    assert finals[False] == finals[True] == (6, 35)


# -- failure injection --------------------------------------------------------


def test_commute_redo_after_participant_restart():
    """A participant that restarted between execute and commit lost the
    volatile effects — the commute prepare still commits: it carries the
    colour's redo op list, which the server re-applies against committed
    state (epoch mismatch does not refuse a commute prepare)."""
    cluster = make_cluster(["coord", "part"], config=FIXED)
    client = cluster.client("coord")
    holder = {}

    def app():
        ref = yield from client.create("part", "escrow_account",
                                       owner="E", balance=100)
        action = client.top_level("t")
        yield from client.invoke(action, ref, "debit", 30)
        cluster.crash("part")
        cluster.restart("part")
        yield from client.commit(action)
        holder["ref"] = ref

    cluster.run_process("coord", app())
    assert committed_balance(cluster, holder["ref"]) == 70
    # the redo settled availability too — there is no committed hook
    # coming for an operation the new epoch never executed
    live = cluster.servers["part"].objects[holder["ref"].uid]
    assert live.escrow_available == 70
    assert metric_sum(cluster, "twopc_fast_path_total", kind="commute") == 1
    assert cluster.servers["part"].prepared == {}
    assert cluster.servers["part"].in_doubt_objects == set()
    assert_audit_clean(cluster)


def test_redelivered_commute_prepare_is_idempotent():
    """Losing the commute reply must not double-apply: the decision is
    durable, a reaper redelivers the same prepare, and the participant
    answers from its COMMITTED record (dedupe on txn_id) without running
    the ops again."""
    cluster = make_cluster(["coord", "part"], config=FIXED)
    client = cluster.client("coord")
    holder = {}

    def app():
        ref = yield from client.create("part", "commuting_counter", value=0)
        action = client.top_level("t")
        yield from client.invoke(action, ref, "add", 5)
        # the prepare lands at t0+1 and is applied; the partition at
        # t0+1.5 swallows the reply, so the coordinator must redeliver
        cluster.kernel.schedule(
            1.5, lambda: cluster.network.partition("coord", "part"))
        cluster.kernel.schedule(40.0, lambda: cluster.network.heal_all())
        yield from client.commit(action)
        holder["ref"] = ref

    cluster.run_process("coord", app())
    cluster.run(until=cluster.kernel.now + 600)
    # applied exactly once despite the redelivery
    assert committed_int(cluster, holder["ref"]) == 5
    assert metric_sum(cluster, "twopc_fast_path_total", kind="commute") == 1
    assert metric_sum(cluster, "termination_reapers_total") >= 1
    assert cluster.servers["part"].mirrors == {}
    assert_audit_clean(cluster)


def test_crashed_commute_participant_converges_by_redelivery():
    """A participant crashed at decision time neither blocks the commit
    (the votes are guaranteed) nor loses the update: redelivery after the
    restart applies the redo ops against committed state."""
    cluster = make_cluster(["coord", "part", "other"], config=FIXED)
    client = cluster.client("coord")
    holder = {}

    def app():
        ref1 = yield from client.create("part", "commuting_counter", value=0)
        ref2 = yield from client.create("other", "commuting_counter", value=0)
        action = client.top_level("t")
        yield from client.invoke(action, ref1, "add", 7)
        yield from client.invoke(action, ref2, "add", 7)
        cluster.crash("part")
        cluster.restart_at("part", cluster.kernel.now + 30.0)
        yield from client.commit(action)
        holder.update(ref1=ref1, ref2=ref2)

    cluster.run_process("coord", app())
    # the live participant applied immediately...
    assert committed_int(cluster, holder["ref2"]) == 7
    cluster.run(until=cluster.kernel.now + 600)
    # ...and the crashed one converged through the reaper's redelivery
    assert committed_int(cluster, holder["ref1"]) == 7
    assert cluster.servers["part"].prepared == {}
    assert cluster.servers["part"].in_doubt_objects == set()
    assert_audit_clean(cluster)


# -- lock-conflict fast abort -------------------------------------------------


def test_deadlock_closing_wait_fast_aborts_as_lock_conflict():
    """A queued request that closes a waits-for cycle through its own
    action is refused immediately — a deterministic lock conflict, not a
    parked wait for the deadlock chaser to victimise after a sweep."""
    cluster = make_cluster(["s1", "s2"], seed=5, config=FIXED,
                           lock_wait_timeout=300.0)
    postmortem = cluster.attach_postmortem()
    holder = {}

    def setup():
        client = cluster.client("s1")
        holder["a"] = yield from client.create("s1", "counter", value=0)
        holder["b"] = yield from client.create("s1", "counter", value=0)

    cluster.run_process("s1", setup())

    def first():
        client = cluster.client("s1", name="w1")
        action = client.top_level("w1")
        yield from client.invoke(action, holder["a"], "increment", 1)
        yield Timeout(5.0)
        # queues behind w2's grant on b: the A->B half of the cycle
        yield from client.invoke(action, holder["b"], "increment", 1)
        yield from client.commit(action)
        holder["w1"] = "committed"

    def second():
        client = cluster.client("s2", name="w2")
        action = client.top_level("w2")
        yield from client.invoke(action, holder["b"], "increment", 1)
        yield Timeout(10.0)
        started = cluster.kernel.now
        try:
            # would close the cycle: refused at queue time
            yield from client.invoke(action, holder["a"], "increment", 1)
            holder["w2"] = "granted"
        except LockRefused:
            holder["w2"] = "refused"
            holder["refused_after"] = cluster.kernel.now - started
            yield from client.abort(action)

    cluster.spawn("s1", first(), name="w1")
    cluster.spawn("s2", second(), name="w2")
    cluster.run()
    assert holder["w2"] == "refused"
    assert holder["w1"] == "committed"
    # refused in one round trip — not the 300s timeout, not a sweep later
    assert holder["refused_after"] <= 4.0
    assert metric_sum(cluster, "lock_fast_aborts_total") == 1
    # the postmortem attributes the abort as lock-conflict (with its
    # blockers named), never as deadlock-victim
    assert postmortem.reason_counts.get(LOCK_CONFLICT, 0) == 1
    assert postmortem.reason_counts.get(DEADLOCK_VICTIM, 0) == 0
    conflict = [r for r in postmortem.aborted()
                if r.reason == LOCK_CONFLICT]
    assert conflict and conflict[0].blockers
    assert committed_int(cluster, holder["a"]) == 1
    assert committed_int(cluster, holder["b"]) == 1
    assert_audit_clean(cluster)
