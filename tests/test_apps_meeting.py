"""Meeting scheduler: glued rounds over diaries (§4(v), fig. 9)."""

import pytest

from repro.apps.meeting.scheduler import (
    MeetingScheduler,
    NoCommonDate,
    SchedulerCrash,
)
from repro.errors import LockTimeout
from repro.locking.modes import LockMode
from repro.stdobjects import Diary

DATES = [f"2026-07-{day:02d}" for day in range(1, 8)]


def diaries_for(runtime, people=("ann", "bob", "cat")):
    return [Diary(runtime, person, DATES) for person in people]


def test_schedules_first_commonly_acceptable_date(runtime):
    diaries = diaries_for(runtime)
    scheduler = MeetingScheduler(runtime, diaries)
    chosen = scheduler.schedule("review", [
        DATES[1:5],        # ann
        DATES[2:6],        # bob
        [DATES[3]],        # cat
    ])
    assert chosen == DATES[3]
    for diary in diaries:
        assert diary.slot(chosen).booked
        assert diary.slot(chosen).description == "review"


def test_only_chosen_slot_booked(runtime):
    diaries = diaries_for(runtime)
    MeetingScheduler(runtime, diaries).schedule(
        "sync", [DATES, DATES, DATES]
    )
    for diary in diaries:
        booked = [d for d in diary.dates() if diary.slot(d).booked]
        assert len(booked) == 1


def test_already_booked_slots_excluded(runtime):
    diaries = diaries_for(runtime)
    with runtime.top_level():
        diaries[0].slot(DATES[0]).book("dentist")
    chosen = MeetingScheduler(runtime, diaries).schedule(
        "m", [DATES[:2], DATES[:2]]
    )
    assert chosen == DATES[1]


def test_no_common_date_raises(runtime):
    diaries = diaries_for(runtime)
    with pytest.raises(NoCommonDate):
        MeetingScheduler(runtime, diaries).schedule(
            "impossible", [[DATES[0]], [DATES[1]]]
        )
    # nothing booked, nothing left locked
    with runtime.top_level() as probe:
        for diary in diaries:
            runtime.acquire(probe, diary.slot(DATES[0]), LockMode.WRITE,
                            timeout=0.05)


def test_rejected_slots_released_each_round(runtime):
    """The §4(v) point: slots dropped in round i are lockable by outsiders
    immediately, while survivors stay pinned."""
    diaries = diaries_for(runtime, people=("ann", "bob"))
    scheduler = MeetingScheduler(runtime, diaries, fail_after_round=1)
    with pytest.raises(SchedulerCrash):
        scheduler.schedule("m", [DATES[:2], [DATES[0]]])
    # round 1 kept DATES[0], DATES[1]... then narrowing round 1 kept
    # DATES[:2]; dropped the rest — those must be free now:
    with runtime.top_level(name="outsider") as outsider:
        runtime.acquire(outsider, diaries[0].slot(DATES[5]), LockMode.WRITE,
                        timeout=0.05)
        # survivors are still pinned by the current group
        with pytest.raises(LockTimeout):
            runtime.acquire(outsider, diaries[0].slot(DATES[0]),
                            LockMode.WRITE, timeout=0.05)
        runtime.abort_action(outsider)
    scheduler.release_pins()
    with runtime.top_level(name="after") as after:
        runtime.acquire(after, diaries[0].slot(DATES[0]), LockMode.WRITE,
                        timeout=0.05)


def test_round_reports_match_narrowing(runtime):
    diaries = diaries_for(runtime, people=("ann", "bob"))
    scheduler = MeetingScheduler(runtime, diaries)
    scheduler.schedule("m", [DATES[:4], DATES[1:3]])
    kept_per_round = [r.kept for r in scheduler.rounds]
    assert kept_per_round[0] == DATES            # I1: all free dates
    assert kept_per_round[1] == DATES[:4]        # ann's preferences
    assert kept_per_round[2] == DATES[1:3]       # bob's preferences
    assert len(kept_per_round[3]) == 1           # the booking


def test_crash_preserves_committed_rounds(runtime):
    """Each Ii is top-level: its narrowing survives the application crash."""
    diaries = diaries_for(runtime, people=("ann", "bob"))
    scheduler = MeetingScheduler(runtime, diaries, fail_after_round=2)
    with pytest.raises(SchedulerCrash):
        scheduler.schedule("m", [DATES[:3], DATES[1:3]])
    assert [r.kept for r in scheduler.rounds][-1] == DATES[1:3]
    scheduler.release_pins()
    # a new run can pick up from the recorded narrowing
    resumed = MeetingScheduler(runtime, diaries)
    chosen = resumed.schedule("m", [DATES[1:3]])
    assert chosen == DATES[1]
