"""2PC crash recovery: prepared states, decision queries, presumed abort."""

from repro.cluster.cluster import Cluster
from repro.cluster.message import encode_colour, encode_uid
from repro.objects.state import ObjectState
from repro.sim.kernel import Timeout


def make_cluster(seed=0):
    cluster = Cluster(seed=seed)
    for name in ("coord", "part"):
        cluster.add_node(name)
    return cluster


def committed_int(cluster, ref):
    stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
    return ObjectState.from_bytes(stored.payload).unpack_int()


def drive_prepare(cluster, client, value_after):
    """Run an action up to a successful prepare on 'part'; returns
    (ref, action, txn_id) with the decision NOT yet sent."""
    transport = cluster.transports["coord"]
    holder = {}

    def app():
        ref = yield from client.create("part", "counter", value=1)
        action = client.top_level("t")
        yield from client.invoke(action, ref, "increment", value_after - 1)
        txn_id = f"txn:test:{action.uid.sequence}"
        colour = next(iter(action.colours))
        reply = yield from transport.call("part", "txn_prepare", {
            "txn_id": txn_id,
            "action_uid": encode_uid(action.uid),
            "colour": encode_colour(colour),
            "object_uids": [encode_uid(ref.uid)],
            "expected_epoch": action.server_epochs.get("part"),
        })
        holder.update(ref=ref, action=action, txn_id=txn_id, vote=reply["vote"])

    cluster.run_process("coord", app())
    assert holder["vote"] == "commit"
    return holder


def test_prepared_shadow_survives_crash_and_commit_applies_on_recovery():
    """Participant crashes between prepare and decision; the coordinator had
    logged COMMIT, so recovery promotes the shadow."""
    cluster = make_cluster()
    client = cluster.client("coord")
    holder = drive_prepare(cluster, client, value_after=42)
    # the coordinator decides commit and logs it — but the participant
    # crashes before hearing it.
    cluster.nodes["coord"].wal.append("coord_commit", txn_id=holder["txn_id"])
    cluster.crash("part")
    assert committed_int(cluster, holder["ref"]) == 1  # still old on disk
    cluster.restart("part")
    cluster.run(until=cluster.kernel.now + 200)  # recovery queries + applies
    assert committed_int(cluster, holder["ref"]) == 42


def test_presumed_abort_when_coordinator_never_decided():
    """No COMMIT record at the coordinator => recovery discards the shadow."""
    cluster = make_cluster()
    client = cluster.client("coord")
    holder = drive_prepare(cluster, client, value_after=42)
    cluster.crash("part")
    cluster.restart("part")
    cluster.run(until=cluster.kernel.now + 200)
    assert committed_int(cluster, holder["ref"]) == 1
    shadow = cluster.nodes["part"].stable_store.read_shadow(holder["ref"].uid)
    assert shadow is None


def test_in_doubt_object_fenced_until_resolution():
    """While the coordinator is unreachable, the prepared object refuses
    operations; after resolution it serves again."""
    cluster = make_cluster()
    client = cluster.client("coord")
    holder = drive_prepare(cluster, client, value_after=42)
    cluster.nodes["coord"].wal.append("coord_commit", txn_id=holder["txn_id"])
    cluster.crash("part")
    cluster.network.partition("coord", "part")
    cluster.restart("part")
    cluster.run(until=cluster.kernel.now + 30)
    server = cluster.servers["part"]
    assert holder["ref"].uid in server.in_doubt_objects

    # a fresh client on another... 'part' itself can't reach coord; try an op
    part_client = cluster.client("part", "local")

    def probe():
        action = part_client.top_level("probe")
        try:
            yield from part_client.invoke(action, holder["ref"], "get")
            return "served"
        except Exception as error:
            return type(error).__name__

    result = cluster.run_process("part", probe())
    assert result != "served"

    cluster.network.heal_all()
    cluster.run(until=cluster.kernel.now + 200)
    assert holder["ref"].uid not in server.in_doubt_objects
    assert committed_int(cluster, holder["ref"]) == 42


def test_participant_votes_no_after_restart():
    """Prepare against a restarted participant fails the epoch check."""
    from repro.errors import PrepareFailed
    cluster = make_cluster()
    client = cluster.client("coord")
    transport = cluster.transports["coord"]

    def app():
        ref = yield from client.create("part", "counter", value=1)
        action = client.top_level("t")
        yield from client.invoke(action, ref, "increment", 1)
        cluster.crash("part")
        cluster.restart("part")
        try:
            yield from transport.call("part", "txn_prepare", {
                "txn_id": "txn:test:x",
                "action_uid": encode_uid(action.uid),
                "colour": encode_colour(next(iter(action.colours))),
                "object_uids": [encode_uid(ref.uid)],
                "expected_epoch": action.server_epochs.get("part"),
            })
            return "prepared"
        except PrepareFailed:
            return "refused"

    assert cluster.run_process("coord", app()) == "refused"


def test_full_commit_resilient_to_participant_crash_after_decision():
    """The coordinator logs commit; the participant crashes before acking;
    after restart, recovery completes the transaction."""
    cluster = make_cluster()
    client = cluster.client("coord")
    holder = {}

    def app():
        ref = yield from client.create("part", "counter", value=0)
        holder["ref"] = ref
        action = client.top_level("t")
        yield from client.invoke(action, ref, "increment", 5)
        # crash 'part' at the instant the decision is being distributed:
        # prepare takes a couple of rpc rounds; commit decision follows.
        cluster.crash_at("part", cluster.kernel.now + 6.0)
        cluster.restart_at("part", cluster.kernel.now + 40.0)
        try:
            yield from client.commit(action)
            holder["outcome"] = "committed"
        except Exception as error:
            holder["outcome"] = type(error).__name__

    cluster.run_process("coord", app())
    cluster.run(until=cluster.kernel.now + 400)
    final = committed_int(cluster, holder["ref"])
    if holder["outcome"] == "committed":
        assert final == 5
    else:
        # the whole action failed before any prepare: nothing applied
        assert final == 0
