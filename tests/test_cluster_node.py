"""Nodes: fail-silence, volatile wipe, stable survival, epochs, recovery."""

import pytest

from repro.cluster.network import Network, NetworkConfig
from repro.cluster.node import Node
from repro.errors import NodeDown
from repro.sim.kernel import Kernel, Timeout
from repro.store.interface import StoredState
from repro.util.rng import SplitRandom
from repro.util.uid import UidGenerator

uids = UidGenerator("obj")


def make_node(name="n1"):
    kernel = Kernel()
    network = Network(kernel, SplitRandom(0))
    return kernel, network, Node(name, kernel, network)


def test_crash_wipes_volatile_keeps_stable():
    _, _, node = make_node()
    uid = uids.fresh()
    node.volatile["cache"] = {"a": 1}
    node.stable_store.write_committed(StoredState(uid, "t", b"x"))
    node.wal.append("marker")
    node.crash()
    assert node.volatile == {}
    assert node.stable_store.read_committed(uid).payload == b"x"
    assert len(node.wal) == 1


def test_crash_kills_processes():
    kernel, _, node = make_node()
    progress = []

    def worker():
        while True:
            yield Timeout(1)
            progress.append(kernel.now)

    node.spawn(worker())
    kernel.schedule(3.5, node.crash)
    kernel.run(until=10)
    assert progress == [1, 2, 3]


def test_epoch_bumps_on_restart_only():
    _, _, node = make_node()
    assert node.epoch == 1
    node.crash()
    assert node.epoch == 1  # still the old incarnation on disk
    node.restart()
    assert node.epoch == 2
    node.restart()  # restart while alive: no-op
    assert node.epoch == 2


def test_crash_is_idempotent():
    _, _, node = make_node()
    node.crash()
    node.crash()
    assert node.crash_count == 1


def test_send_and_spawn_refused_while_down():
    _, _, node = make_node()
    node.crash()
    with pytest.raises(NodeDown):
        node.send("n1", "x")
    with pytest.raises(NodeDown):
        node.spawn((x for x in []))


def test_recovery_hooks_run_on_restart():
    _, _, node = make_node()
    ran = []
    node.add_recovery_hook(lambda: ran.append(node.epoch))
    node.crash()
    node.restart()
    assert ran == [2]  # epoch already bumped when hooks run
    assert node.epoch == 2


def test_messages_to_dead_node_not_dispatched():
    kernel, network, node = make_node()
    got = []
    node.add_dispatcher(lambda m: got.append(m) or True)
    other = Node("n2", kernel, network)
    node.crash()
    other.send("n1", "ping")
    kernel.run()
    assert got == []


def test_dispatcher_chain_first_consumer_wins():
    # Fixed delay: delivery order matches send order regardless of how the
    # network's RNG streams are laid out.
    kernel = Kernel()
    network = Network(kernel, SplitRandom(0),
                      NetworkConfig(min_delay=1.0, max_delay=1.0))
    node = Node("n1", kernel, network)
    order = []
    node.add_dispatcher(lambda m: order.append("first") or m.kind == "a")
    node.add_dispatcher(lambda m: order.append("second") or True)
    other = Node("n2", kernel, network)
    other.send("n1", "a")
    other.send("n1", "b")
    kernel.run()
    assert order == ["first", "first", "second"]
