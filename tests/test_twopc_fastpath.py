"""Commit-protocol fast paths: one-phase commit, piggybacked decision,
read-only voting — plus their downgrade behaviour under chaos.

Every test asserts the online invariant auditor stayed silent: the fast
paths must be invisible at the consistency level, visible only in the
message bill.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkConfig
from repro.errors import CommitError
from repro.objects.state import ObjectState


FIXED = NetworkConfig(min_delay=1.0, max_delay=1.0)


def make_cluster(names, seed=0, config=None, **kwargs):
    cluster = Cluster(seed=seed, config=config, **kwargs)
    for name in names:
        cluster.add_node(name)
    return cluster


def committed_int(cluster, ref):
    stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
    return ObjectState.from_bytes(stored.payload).unpack_int()


def metric_sum(cluster, name, **match):
    """Sum a labelled counter across every label set matching ``match``."""
    return sum(instrument.value
               for labels, instrument in cluster.obs.metrics.series(name)
               if all(labels.get(k) == v for k, v in match.items()))


def assert_audit_clean(cluster):
    findings = cluster.obs.auditor.report()
    assert findings == [], [f.to_dict() for f in findings]


# -- success paths -----------------------------------------------------------


def test_one_phase_commit_is_a_single_round_trip():
    """A single-participant colour commits in one RPC: the prepare carries
    the decision *and* the finish routing, so nothing follows it."""
    cluster = make_cluster(["coord", "part"], config=FIXED)
    client = cluster.client("coord")
    holder = {}

    def app():
        ref = yield from client.create("part", "counter", value=0)
        action = client.top_level("t")
        yield from client.invoke(action, ref, "increment", 7)
        started = cluster.kernel.now
        sent = cluster.network.sent_count
        yield from client.commit(action)
        holder["duration"] = cluster.kernel.now - started
        holder["messages"] = cluster.network.sent_count - sent
        holder["ref"] = ref

    cluster.run_process("coord", app())
    assert committed_int(cluster, holder["ref"]) == 7
    assert holder["duration"] == 2.0          # one round trip at delay 1.0
    # a single RPC: request + reply + the transport's reply ack
    assert holder["messages"] == 3
    assert metric_sum(cluster, "twopc_fast_path_total", kind="one_phase") == 1
    # the inline finish retired the mirror as part of the same message
    assert cluster.servers["part"].mirrors == {}
    assert cluster.servers["part"].prepared == {}
    assert_audit_clean(cluster)


def test_piggybacked_decision_skips_the_decision_round():
    """With two writers the last (sorted) agent's prepare carries the
    decision: 3 RPCs instead of the classic 4."""
    cluster = make_cluster(["coord", "p1", "p2"], config=FIXED)
    client = cluster.client("coord")
    holder = {}

    def app():
        ref1 = yield from client.create("p1", "counter", value=0)
        ref2 = yield from client.create("p2", "counter", value=0)
        action = client.top_level("t")
        yield from client.invoke(action, ref1, "increment", 3)
        yield from client.invoke(action, ref2, "increment", 4)
        sent = cluster.network.sent_count
        yield from client.commit(action)
        holder["messages"] = cluster.network.sent_count - sent
        holder.update(ref1=ref1, ref2=ref2)

    cluster.run_process("coord", app())
    assert committed_int(cluster, holder["ref1"]) == 3
    assert committed_int(cluster, holder["ref2"]) == 4
    # prepare(p1) + delegated prepare(p2) + finish batch(p1) = 3 RPCs
    # (classic needs 4), at 3 messages per RPC
    assert holder["messages"] == 9
    assert metric_sum(cluster, "twopc_fast_path_total", kind="piggyback") == 1
    assert metric_sum(cluster, "decision_piggyback_saved_rpcs_total") >= 2
    for name in ("p1", "p2"):
        assert cluster.servers[name].mirrors == {}
        assert cluster.servers[name].prepared == {}
    assert_audit_clean(cluster)


def test_read_only_participant_skips_phase_two():
    """A participant that only read votes read-only, releases its locks at
    vote time and is never contacted again for this transaction."""
    cluster = make_cluster(["coord", "writer", "reader"], config=FIXED)
    client = cluster.client("coord")
    holder = {}

    def app():
        ref_w = yield from client.create("writer", "counter", value=0)
        ref_r = yield from client.create("reader", "counter", value=42)
        action = client.top_level("t")
        yield from client.invoke(action, ref_w, "increment", 1)
        value = yield from client.invoke(action, ref_r, "get")
        sent = cluster.network.sent_count
        yield from client.commit(action)
        holder["messages"] = cluster.network.sent_count - sent
        holder.update(ref_w=ref_w, ref_r=ref_r, read=value,
                      action=action)

    cluster.run_process("coord", app())
    assert holder["read"] == 42
    assert committed_int(cluster, holder["ref_w"]) == 1
    # read-only prepare(reader) + delegated one-phase prepare(writer):
    # 2 RPCs — the reader sees no commit/finish traffic at all
    assert holder["messages"] == 6
    assert metric_sum(cluster, "twopc_fast_path_total", kind="read_only") == 1
    assert metric_sum(cluster, "read_only_saved_finish_total") == 1
    # the vote released the reader's locks and retired its mirror
    assert holder["action"].uid not in cluster.servers["reader"].mirrors
    # a second action takes the reader's lock without waiting
    def reread():
        action = client.top_level("again")
        value = yield from client.invoke(action, holder["ref_r"], "get")
        yield from client.commit(action)
        return value

    assert cluster.run_process("coord", reread()) == 42
    assert_audit_clean(cluster)


def test_fast_and_classic_reach_identical_state():
    """The fast paths change the message bill, never the outcome."""
    finals = {}
    for fast_paths in (False, True):
        cluster = make_cluster(["coord", "a", "b"], seed=11,
                               fast_paths=fast_paths)
        client = cluster.client("coord")
        holder = {}

        def app():
            ref_a = yield from client.create("a", "counter", value=0)
            ref_b = yield from client.create("b", "counter", value=0)
            for step in range(3):
                action = client.top_level(f"t{step}")
                yield from client.invoke(action, ref_a, "increment", 2)
                if step % 2 == 0:
                    yield from client.invoke(action, ref_b, "increment", 5)
                else:
                    yield from client.invoke(action, ref_b, "get")
                yield from client.commit(action)
            holder.update(ref_a=ref_a, ref_b=ref_b)

        cluster.run_process("coord", app())
        finals[fast_paths] = (committed_int(cluster, holder["ref_a"]),
                              committed_int(cluster, holder["ref_b"]))
        assert_audit_clean(cluster)
    assert finals[False] == finals[True] == (6, 10)


# -- lazy forget / checkpointing ---------------------------------------------


def test_forget_piggyback_lets_the_delegate_checkpoint():
    """The delegate's COMMITTED record is the only durable copy of the
    decision until the coordinator's lazy forget arrives; a checkpoint
    must retain it exactly until then."""
    cluster = make_cluster(["coord", "part"], config=FIXED)
    client = cluster.client("coord")
    part = cluster.servers["part"]

    def one_txn(tag):
        def app():
            action = client.top_level(tag)
            yield from client.invoke(action, holder["ref"], "increment", 1)
            yield from client.commit(action)
        return app

    holder = {}

    def setup():
        holder["ref"] = yield from client.create("part", "counter", value=0)

    cluster.run_process("coord", setup())
    cluster.run_process("coord", one_txn("t1")())
    # txn1's delegated record is unacknowledged: the checkpoint keeps it
    part.checkpoint()
    delegated = [r for r in part.node.wal.records("committed")
                 if r.payload.get("delegated")]
    assert len(delegated) == 1
    txn1 = delegated[0].payload["txn_id"]
    # txn2's prepare piggybacks forget=[txn1]; after it, a checkpoint
    # drops txn1's record and keeps only txn2's
    cluster.run_process("coord", one_txn("t2")())
    assert txn1 in part.forgotten
    part.checkpoint()
    delegated = [r for r in part.node.wal.records("committed")
                 if r.payload.get("delegated")]
    assert [r.payload["txn_id"] for r in delegated] != [txn1]
    assert len(delegated) == 1
    # recovery from the truncated log redoes nothing it shouldn't
    cluster.crash("part")
    cluster.restart("part")
    cluster.run(until=cluster.kernel.now + 100)
    assert part.in_doubt_objects == set()
    assert committed_int(cluster, holder["ref"]) == 2
    assert_audit_clean(cluster)


# -- downgrades under chaos --------------------------------------------------


def test_lost_delegated_reply_resolves_to_commit():
    """Dropping the piggybacked decision's *reply* must not fork the
    outcome: the coordinator blocks, asks the last agent via
    txn_outcome_query, and reports the commit that actually happened."""
    cluster = make_cluster(["coord", "p1", "p2"], config=FIXED)
    client = cluster.client("coord")
    holder = {}

    def app():
        ref1 = yield from client.create("p1", "counter", value=0)
        ref2 = yield from client.create("p2", "counter", value=0)
        action = client.top_level("t")
        yield from client.invoke(action, ref1, "increment", 5)
        yield from client.invoke(action, ref2, "increment", 5)
        t0 = cluster.kernel.now
        # the delegated prepare reaches p2 at t0+3 (after p1's round trip);
        # its reply — the decision acknowledgement — is dropped at t0+3.5
        cluster.kernel.schedule(
            3.5, lambda: cluster.network.partition("coord", "p2"))
        cluster.kernel.schedule(
            60.0, lambda: cluster.network.heal_all())
        yield from client.commit(action)
        holder["elapsed"] = cluster.kernel.now - t0
        holder.update(ref1=ref1, ref2=ref2)

    cluster.run_process("coord", app())
    # commit() reported success only after genuinely resolving the outcome
    assert holder["elapsed"] > 50.0
    assert committed_int(cluster, holder["ref1"]) == 5
    assert committed_int(cluster, holder["ref2"]) == 5
    coord_wal = cluster.nodes["coord"].wal
    assert coord_wal.last("coord_commit") is not None
    for name in ("p1", "p2"):
        assert cluster.servers[name].prepared == {}
    assert_audit_clean(cluster)


def test_crashed_read_only_voter_does_not_block_commit():
    """The read-only prepare is fire-and-forget: a dead reader downgrades
    the fast path (it falls back into the classic finish fan-out) without
    stalling or aborting the writer's commit."""
    cluster = make_cluster(["coord", "writer", "reader"], config=FIXED)
    client = cluster.client("coord")
    holder = {}

    def app():
        ref_w = yield from client.create("writer", "counter", value=0)
        ref_r = yield from client.create("reader", "counter", value=9)
        action = client.top_level("t")
        yield from client.invoke(action, ref_w, "increment", 4)
        yield from client.invoke(action, ref_r, "get")
        cluster.crash("reader")
        yield from client.commit(action)
        holder.update(ref_w=ref_w, ref_r=ref_r)

    cluster.run_process("coord", app())
    # the writer's update committed despite the dead reader
    assert committed_int(cluster, holder["ref_w"]) == 4
    # no read-only vote arrived, so no finish was skipped for the reader
    assert metric_sum(cluster, "read_only_saved_finish_total") == 0.0
    # once the reader returns, the reaper's finish delivery cleans it up
    cluster.restart("reader")
    cluster.run(until=cluster.kernel.now + 600)
    assert cluster.servers["reader"].mirrors == {}
    assert committed_int(cluster, holder["ref_r"]) == 9
    assert_audit_clean(cluster)


def test_recovery_redo_skips_a_later_transactions_shadow():
    """The shadow slot is single-occupancy per object: after txn1's
    delegated commit, an *aborting* txn2 re-prepares the same object and
    the server crashes.  Recovery replays txn1's COMMITTED record — it
    must not promote the shadow now in the slot, which belongs to txn2."""
    cluster = make_cluster(["coord", "part", "zed"], config=FIXED)
    client = cluster.client("coord")
    holder = {}

    def app():
        ref_x = yield from client.create("part", "counter", value=0)
        ref_y = yield from client.create("zed", "counter", value=0)
        # txn1: one-phase delegated commit at part — leaves an
        # unacknowledged COMMITTED{delegated} record for X in its WAL
        t1 = client.top_level("t1")
        yield from client.invoke(t1, ref_x, "increment", 1)
        yield from client.commit(t1)
        # txn2 touches X again plus Y at zed, so part gets the *plain*
        # prepare (zed, sorted last, is the delegate).  Bouncing zed
        # bumps its epoch: the delegated prepare is refused and txn2
        # aborts — but part crashes before the abort reaches it,
        # stranding txn2's prepared shadow for X in the slot.
        t2 = client.top_level("t2")
        yield from client.invoke(t2, ref_x, "increment", 100)
        yield from client.invoke(t2, ref_y, "increment", 100)
        cluster.crash("zed")
        cluster.restart("zed")
        cluster.crash_at("part", cluster.kernel.now + 4.0)
        cluster.restart_at("part", cluster.kernel.now + 120.0)
        try:
            yield from client.commit(t2)
            holder["outcome"] = "committed"
        except CommitError:
            holder["outcome"] = "commit-error"
        holder.update(ref_x=ref_x, ref_y=ref_y)

    cluster.run_process("coord", app())
    assert holder["outcome"] == "commit-error"
    # the hazard really existed: both records share X in part's log
    part_wal = cluster.nodes["part"].wal
    delegated = [r for r in part_wal.records("committed")
                 if r.payload.get("delegated")]
    assert len(delegated) == 1
    assert part_wal.last("prepared") is not None
    cluster.run(until=cluster.kernel.now + 800)
    # txn1's increment survives; txn2's never commits
    assert committed_int(cluster, holder["ref_x"]) == 1
    assert committed_int(cluster, holder["ref_y"]) == 0
    part = cluster.servers["part"]
    assert part.prepared == {}
    assert holder["ref_x"].uid not in part.in_doubt_objects
    assert_audit_clean(cluster)


def test_partitioned_single_participant_forces_abort_then_heals_clean():
    """The one-phase prepare never arrives: the coordinator must not guess.
    It resolves through txn_outcome_query after the heal; the participant,
    having logged nothing, force-aborts (presumed abort) — so both sides
    agree the transaction never happened."""
    cluster = make_cluster(["coord", "part"], config=FIXED)
    client = cluster.client("coord")
    holder = {}

    def app():
        ref = yield from client.create("part", "counter", value=0)
        action = client.top_level("t")
        yield from client.invoke(action, ref, "increment", 8)
        cluster.network.partition("coord", "part")
        cluster.kernel.schedule(
            80.0, lambda: cluster.network.heal_all())
        try:
            yield from client.commit(action)
            holder["outcome"] = "committed"
        except CommitError:
            holder["outcome"] = "commit-error"
        holder["ref"] = ref

    cluster.run_process("coord", app())
    assert holder["outcome"] == "commit-error"
    cluster.run(until=cluster.kernel.now + 600)
    # identical to a classic abort: no state change, nothing in doubt
    assert committed_int(cluster, holder["ref"]) == 0
    part = cluster.servers["part"]
    assert part.prepared == {}
    assert holder["ref"].uid not in part.in_doubt_objects
    # the participant durably recorded the forced abort
    assert cluster.nodes["part"].wal.last("aborted") is not None
    coord_wal = cluster.nodes["coord"].wal
    assert coord_wal.last("coord_abort") is not None
    assert_audit_clean(cluster)
