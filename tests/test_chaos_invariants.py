"""Chaos runs: random crashes + message loss must never break atomicity.

The canonical invariant workload: transfers between two accounts on two
different object servers, while a fault schedule crashes and restarts the
servers and the network drops messages.  Whatever mixture of commits,
aborts, timeouts and recoveries results, the *committed stable states*
must satisfy:

- conservation: balance(A) + balance(B) == initial total;
- agreement: the stable states match exactly the transfers the client saw
  commit (all-or-nothing per transfer, across both nodes).
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.failures import FaultSchedule
from repro.cluster.network import NetworkConfig
from repro.objects.state import ObjectState

AMOUNT = 5
TRANSFERS = 25
INITIAL = 1000


def stable_balance(cluster, ref):
    stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
    state = ObjectState.from_bytes(stored.payload)
    state.unpack_string()            # owner
    return state.unpack_int()        # balance


def run_chaos(seed: int, drop: float = 0.1):
    cluster = Cluster(
        seed=seed,
        config=NetworkConfig(drop_probability=drop,
                             duplicate_probability=0.05),
        rpc_retries=10,
        lock_wait_timeout=120.0,
    )
    for name in ("home", "s1", "s2"):
        cluster.add_node(name)
    client = cluster.client("home")
    refs = {}
    outcomes = {"committed": 0, "failed": 0}

    def setup():
        refs["A"] = yield from client.create("s1", "account",
                                             owner="A", balance=INITIAL)
        refs["B"] = yield from client.create("s2", "account",
                                             owner="B", balance=0)

    cluster.run_process("home", setup())
    schedule = FaultSchedule(cluster, seed=seed,
                             mean_uptime=400.0, mean_downtime=40.0)
    schedule.arm(["s1", "s2"], horizon=4000.0, start_after=50.0)

    def workload():
        from repro.sim.kernel import Timeout
        for index in range(TRANSFERS):
            action = client.top_level(f"xfer{index}")
            try:
                yield from client.invoke(action, refs["A"], "withdraw", AMOUNT)
                yield from client.invoke(action, refs["B"], "deposit", AMOUNT)
                yield from client.commit(action)
                outcomes["committed"] += 1
            except Exception:
                outcomes["failed"] += 1
                if not action.status.terminated:
                    yield from client.abort(action)
            yield Timeout(20.0)

    cluster.run_process("home", workload())
    # make sure everything is up, then let recovery and stragglers settle
    for name in ("s1", "s2"):
        if not cluster.nodes[name].alive:
            cluster.restart(name)
    cluster.run(until=cluster.kernel.now + 2_000.0)
    return cluster, refs, outcomes, schedule


@pytest.mark.parametrize("seed", [1, 2, 3, 5])
def test_money_conserved_under_chaos(seed):
    cluster, refs, outcomes, schedule = run_chaos(seed)
    balance_a = stable_balance(cluster, refs["A"])
    balance_b = stable_balance(cluster, refs["B"])
    # the run must actually have exercised failures to mean anything
    assert schedule.crash_count() >= 1
    assert outcomes["committed"] + outcomes["failed"] == TRANSFERS
    # conservation across both stable stores
    assert balance_a + balance_b == INITIAL, (outcomes, schedule.planned)
    # agreement with the client's view, per committed transfer
    assert balance_b == outcomes["committed"] * AMOUNT, (outcomes,)


def test_chaos_with_heavier_loss():
    cluster, refs, outcomes, schedule = run_chaos(seed=11, drop=0.25)
    balance_a = stable_balance(cluster, refs["A"])
    balance_b = stable_balance(cluster, refs["B"])
    assert balance_a + balance_b == INITIAL
    assert balance_b == outcomes["committed"] * AMOUNT
    # under this much adversity some transfers must still get through
    assert outcomes["committed"] >= 1


@pytest.mark.parametrize("seed", [2, 5])
def test_spans_agree_with_client_outcomes_under_chaos(seed):
    """Span-based invariants: the trace must tell the same story as the
    client — one finished action span per transfer, with outcomes matching
    what the client saw, and exactly one committed 2PC round per committed
    transfer (a decided round never ends in a client-visible failure)."""
    cluster, refs, outcomes, schedule = run_chaos(seed)
    spans = cluster.obs.tracer.snapshot()

    action_spans = [s for s in spans if s.name.startswith("action:xfer")]
    assert len(action_spans) == TRANSFERS
    assert all(s.finished for s in action_spans)
    span_outcomes = {"committed": 0, "aborted": 0}
    for span in action_spans:
        span_outcomes[span.attrs["outcome"]] += 1
    assert span_outcomes["committed"] == outcomes["committed"]
    assert span_outcomes["aborted"] == outcomes["failed"]

    committed_rounds = [s for s in spans if s.name.startswith("2pc:")
                        and s.attrs.get("outcome") == "committed"]
    assert len(committed_rounds) == outcomes["committed"]
    assert all(s.finished for s in committed_rounds)

    # client-side termination spans always close, even when servers were
    # crashed or partitioned at the time (reapers carry on in background)
    for name in ("commit", "abort"):
        terminal = [s for s in spans
                    if s.name == name and s.kind == "client"]
        assert all(s.finished for s in terminal)
