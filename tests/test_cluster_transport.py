"""RPC transport: request/reply, retransmission, at-most-once, errors."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkConfig
from repro.cluster.node import Node
from repro.cluster.transport import RpcTransport
from repro.errors import LockRefused, RpcTimeout
from repro.sim.kernel import Kernel, Timeout


def pair(config=None, seed=0):
    cluster = Cluster(seed=seed, config=config)
    a = cluster.add_node("a")
    b = cluster.add_node("b")
    return cluster, cluster.transports["a"], cluster.transports["b"]


def test_basic_call_returns_value():
    cluster, ta, tb = pair()
    calls = []
    tb.register("echo", lambda msg, respond: (
        calls.append(msg.payload["text"]),
        respond(True, msg.payload["text"].upper()),
    ))

    def app():
        result = yield from ta.call("b", "echo", {"text": "hi"})
        return result

    assert cluster.run_process("a", app()) == "HI"
    assert calls == ["hi"]


def test_error_reply_raises_matching_exception():
    cluster, ta, tb = pair()
    tb.register("deny", lambda msg, respond: respond(
        False, LockRefused("not yours")
    ))

    def app():
        try:
            yield from ta.call("b", "deny", {})
        except LockRefused as error:
            return str(error)

    assert "not yours" in cluster.run_process("a", app())


def test_retransmission_survives_heavy_loss():
    cluster, ta, tb = pair(
        config=NetworkConfig(drop_probability=0.4), seed=9
    )
    tb.register("echo", lambda msg, respond: respond(True, "pong"))

    def app():
        results = []
        for _ in range(10):
            value = yield from ta.call("b", "echo", {}, timeout=5.0, retries=10)
            results.append(value)
        return results

    assert cluster.run_process("a", app()) == ["pong"] * 10


def test_at_most_once_execution_under_duplication_and_loss():
    """Retransmitted requests must not re-execute the handler."""
    cluster, ta, tb = pair(
        config=NetworkConfig(drop_probability=0.3, duplicate_probability=0.3),
        seed=21,
    )
    executions = {"n": 0}

    def handler(msg, respond):
        executions["n"] += 1
        respond(True, executions["n"])

    tb.register("bump", handler)

    def app():
        values = []
        for _ in range(20):
            value = yield from ta.call("b", "bump", {}, timeout=4.0, retries=12)
            values.append(value)
        return values

    values = cluster.run_process("a", app())
    assert values == list(range(1, 21))          # each call executed once
    assert executions["n"] == 20


def test_timeout_when_target_down():
    cluster, ta, tb = pair()
    cluster.crash("b")

    def app():
        try:
            yield from ta.call("b", "anything", {}, timeout=2.0, retries=1)
        except RpcTimeout:
            return "timed out"

    assert cluster.run_process("a", app()) == "timed out"


def test_delayed_response_supported():
    """Handlers may respond later (lock waits do); client keeps waiting."""
    cluster, ta, tb = pair()

    def slow(msg, respond):
        cluster.kernel.schedule(7.0, lambda: respond(True, "eventually"))

    tb.register("slow", slow)

    def app():
        value = yield from ta.call("b", "slow", {}, timeout=20.0)
        return (value, cluster.kernel.now)

    value, when = cluster.run_process("a", app())
    assert value == "eventually"
    assert when >= 7.0


def test_reply_cache_cleared_by_crash():
    """After a crash the server forgets processed rpc ids — a *new* rpc id
    re-executes (the old incarnation's effects are volatile anyway)."""
    cluster, ta, tb = pair()
    executions = {"n": 0}
    tb.register("bump", lambda msg, respond: (
        executions.__setitem__("n", executions["n"] + 1),
        respond(True, executions["n"]),
    ))

    def first():
        return (yield from ta.call("b", "bump", {}))

    cluster.run_process("a", first())
    cluster.crash("b")
    cluster.restart("b")

    def second():
        return (yield from ta.call("b", "bump", {}))

    assert cluster.run_process("a", second()) == 2
    assert executions["n"] == 2


def test_duplicate_handler_registration_rejected():
    from repro.errors import ClusterError
    cluster, ta, tb = pair()
    tb.register("x", lambda m, r: r(True))
    with pytest.raises(ClusterError):
        tb.register("x", lambda m, r: r(True))


def test_handler_crash_answers_promptly_and_clears_inflight():
    """A handler raising a non-Repro error must still answer (as a cluster
    error) — not strand the rpc_id in rpc_inflight until the completion
    timeout while retransmits are ACKed but never answered."""
    from repro.errors import ClusterError
    cluster, ta, tb = pair()

    def broken(msg, respond):
        raise ValueError("boom")

    tb.register("broken", broken)

    def app():
        try:
            yield from ta.call("b", "broken", {})
        except ClusterError as error:
            return (str(error), cluster.kernel.now)

    text, when = cluster.run_process("a", app())
    assert "boom" in text
    assert when < 30.0  # one round trip, nowhere near the 90s completion cap
    assert cluster.nodes["b"].volatile.get("rpc_inflight", set()) == set()


def test_call_many_returns_aligned_outcomes():
    """One failing sub-call must not mask its batch-mates."""
    cluster, ta, tb = pair()
    tb.register("echo", lambda m, r: r(True, m.payload["text"]))
    tb.register("deny", lambda m, r: r(False, LockRefused("nope")))

    def app():
        outcomes = yield from ta.call_many("b", [
            ("echo", {"text": "x"}),
            ("deny", {}),
            ("echo", {"text": "y"}),
        ])
        return outcomes

    outcomes = cluster.run_process("a", app())
    assert [ok for ok, _ in outcomes] == [True, False, True]
    assert outcomes[0][1] == "x" and outcomes[2][1] == "y"
    assert isinstance(outcomes[1][1], LockRefused)


def test_call_many_dispatches_sub_calls_in_order():
    cluster, ta, tb = pair()
    order = []
    tb.register("mark", lambda m, r: (order.append(m.payload["tag"]),
                                      r(True, m.payload["tag"])))

    def app():
        outcomes = yield from ta.call_many(
            "b", [("mark", {"tag": i}) for i in range(5)])
        return [value for _, value in outcomes]

    assert cluster.run_process("a", app()) == [0, 1, 2, 3, 4]
    assert order == [0, 1, 2, 3, 4]


def test_call_many_at_most_once_under_duplication_and_loss():
    """Retransmitted batches must not re-execute sub-handlers."""
    cluster, ta, tb = pair(
        config=NetworkConfig(drop_probability=0.3, duplicate_probability=0.3),
        seed=13,
    )
    executions = {"n": 0}

    def handler(msg, respond):
        executions["n"] += 1
        respond(True, executions["n"])

    tb.register("bump", handler)

    def app():
        values = []
        for _ in range(10):
            outcomes = yield from ta.call_many(
                "b", [("bump", {}), ("bump", {})], timeout=4.0, retries=12)
            values.extend(value for ok, value in outcomes if ok)
        return values

    values = cluster.run_process("a", app())
    assert values == list(range(1, 21))
    assert executions["n"] == 20


def test_call_many_delayed_sub_replies_supported():
    """Sub-handlers may respond asynchronously (lock waits do); the batch
    answers once the last sub-reply lands."""
    cluster, ta, tb = pair()

    def slow(msg, respond):
        cluster.kernel.schedule(6.0, lambda: respond(True, "late"))

    tb.register("slow", slow)
    tb.register("fast", lambda m, r: r(True, "now"))

    def app():
        outcomes = yield from ta.call_many(
            "b", [("slow", {}), ("fast", {})], completion_timeout=30.0)
        return ([value for _, value in outcomes], cluster.kernel.now)

    values, when = cluster.run_process("a", app())
    assert values == ["late", "now"]
    assert when >= 6.0
