"""Distributed structures: lifecycle edges and fig. 7 over the cluster."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.structures import ClusterGluedGroup, ClusterSerializingAction
from repro.errors import InvalidActionState
from repro.objects.state import ObjectState


def make_cluster():
    cluster = Cluster(seed=0)
    for name in ("home", "s1", "s2"):
        cluster.add_node(name)
    return cluster


def committed_int(cluster, ref):
    stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
    return ObjectState.from_bytes(stored.payload).unpack_int()


def test_independent_action_fig7_on_cluster():
    """B commits independently of A across nodes; A's abort spares it."""
    cluster = make_cluster()
    client = cluster.client("home")

    def app():
        board = yield from client.create("s1", "counter", value=0)
        own = yield from client.create("s2", "counter", value=0)
        a = client.top_level("A")
        yield from client.invoke(a, own, "increment", 1)
        b = client.independent_top_level(a, name="B")
        yield from client.invoke(b, board, "increment", 1)
        yield from client.commit(b)
        yield from client.abort(a)
        return board, own

    board, own = cluster.run_process("home", app())
    assert committed_int(cluster, board) == 1   # B survived
    assert committed_int(cluster, own) == 0     # A's own work undone


def test_async_independent_on_cluster():
    """Fig. 7(b): the invoked action runs as its own process and commits
    after the invoker has already aborted."""
    cluster = make_cluster()
    client = cluster.client("home")
    refs = {}
    marks = {}

    def setup():
        refs["board"] = yield from client.create("s1", "counter", value=0)

    cluster.run_process("home", setup())

    def invoked(action):
        from repro.sim.kernel import Timeout
        yield Timeout(40.0)  # still running when A ends
        yield from client.invoke(action, refs["board"], "increment", 1)
        yield from client.commit(action)
        marks["b_done"] = cluster.kernel.now

    def invoker():
        a = client.top_level("A")
        b = client.independent_top_level(a, name="B")
        handle = cluster.spawn("home", invoked(b), name="B-body")
        yield from client.abort(a)
        marks["a_done"] = cluster.kernel.now
        yield handle.join()

    cluster.run_process("home", invoker())
    assert marks["a_done"] < marks["b_done"]
    assert committed_int(cluster, refs["board"]) == 1


def test_serializing_constituent_after_close_rejected():
    cluster = make_cluster()
    client = cluster.client("home")

    def app():
        ser = ClusterSerializingAction(client, name="ser")
        yield from ser.close()
        try:
            ser.constituent("late")
            return "accepted"
        except InvalidActionState:
            return "rejected"

    assert cluster.run_process("home", app()) == "rejected"


def test_glued_member_after_close_rejected():
    cluster = make_cluster()
    client = cluster.client("home")

    def app():
        glue = ClusterGluedGroup(client, name="g")
        yield from glue.close()
        try:
            glue.member("late")
            return "accepted"
        except InvalidActionState:
            return "rejected"

    assert cluster.run_process("home", app()) == "rejected"


def test_glued_cancel_aborts_active_member_but_keeps_committed_work():
    cluster = make_cluster()
    client = cluster.client("home")

    def app():
        done = yield from client.create("s1", "counter", value=0)
        pending = yield from client.create("s2", "counter", value=0)
        glue = ClusterGluedGroup(client, name="g")
        first = glue.member("A")

        def body():
            yield from client.invoke(first, done, "increment", 1)
            yield from glue.hand_over(first, done)

        yield from client.run_scope(first, body())
        second = glue.member("B")
        yield from client.invoke(second, pending, "increment", 100)
        yield from glue.cancel()   # aborts B, keeps A's committed work
        return done, pending, second.status.value

    done, pending, second_status = cluster.run_process("home", app())
    assert committed_int(cluster, done) == 1
    assert committed_int(cluster, pending) == 0
    assert second_status == "aborted"


def test_nested_serializing_inside_cluster_action():
    """A serializing action nested under an ordinary top-level action."""
    cluster = make_cluster()
    client = cluster.client("home")

    def app():
        obj = yield from client.create("s1", "counter", value=0)
        outer = client.top_level("outer")
        ser = ClusterSerializingAction(client, parent=outer, name="ser")
        constituent = ser.constituent("B")

        def body():
            yield from client.invoke(constituent, obj, "increment", 4)

        yield from ser.run_constituent(constituent, body())
        yield from ser.close()
        yield from client.commit(outer)
        return obj

    obj = cluster.run_process("home", app())
    assert committed_int(cluster, obj) == 4
