"""Direct unit tests of the SemanticLockTable (group grants, FIFO, transfer)."""

from repro.colours.colour import Colour
from repro.locking.owner import StubOwner
from repro.locking.request import LockRequest, RequestStatus
from repro.locking.semantic import SemanticLockTable, SemanticSpec
from repro.util.uid import UidGenerator

auids = UidGenerator("a")
cuids = UidGenerator("c")
ouids = UidGenerator("o")
ruids = UidGenerator("r")

RED = Colour(cuids.fresh(), "red")
BLUE = Colour(cuids.fresh(), "blue")

SPEC = SemanticSpec.build(
    groups={"observe", "update", "admin"},
    compatible_pairs=[("observe", "observe"), ("update", "update")],
)


def owner(path_owners=(), colours=(RED, BLUE)):
    uid = auids.fresh()
    path = tuple(p.uid for p in path_owners) + (uid,)
    return StubOwner(uid=uid, path=path, colours=frozenset(colours))


def request(req_owner, group, colour=RED):
    return LockRequest(ruids.fresh(), req_owner, ouids.fresh(), group, colour)


def table():
    return SemanticLockTable(ouids.fresh(), SPEC)


def test_compatible_groups_granted_concurrently():
    t = table()
    r1, r2 = request(owner(), "update"), request(owner(), "update")
    t.request(r1)
    t.request(r2)
    assert r1.status is RequestStatus.GRANTED
    assert r2.status is RequestStatus.GRANTED
    assert len(t.holders) == 2


def test_incompatible_groups_queue():
    t = table()
    t.request(request(owner(), "update"))
    blocked = request(owner(), "observe")
    t.request(blocked)
    assert blocked.status is RequestStatus.PENDING


def test_ancestry_overrides_incompatibility():
    t = table()
    parent = owner()
    child = owner(path_owners=(parent,))
    t.request(request(parent, "update"))
    r = request(child, "observe")
    t.request(r)
    assert r.status is RequestStatus.GRANTED


def test_admin_conflicts_with_everything_even_itself():
    t = table()
    t.request(request(owner(), "admin"))
    for group in ("admin", "observe", "update"):
        r = request(owner(), group)
        t.request(r)
        assert r.status is RequestStatus.PENDING, group


def test_unknown_group_refused():
    t = table()
    r = request(owner(), "ghost")
    t.request(r)
    assert r.status is RequestStatus.REFUSED


def test_foreign_colour_refused():
    t = table()
    lone = owner(colours=(RED,))
    r = request(lone, "update", colour=BLUE)
    t.request(r)
    assert r.status is RequestStatus.REFUSED


def test_reentrant_grant_increments_count():
    t = table()
    me = owner()
    t.request(request(me, "update"))
    t.request(request(me, "update"))
    records = t.records_of(me.uid)
    assert len(records) == 1 and records[0].count == 2


def test_release_wakes_fifo():
    t = table()
    holder = owner()
    t.request(request(holder, "admin"))
    w1 = request(owner(), "update")
    w2 = request(owner(), "update")
    t.request(w1)
    t.request(w2)
    t.release_all(holder.uid)
    assert w1.status is RequestStatus.GRANTED
    assert w2.status is RequestStatus.GRANTED  # update/update compatible


def test_fifo_no_overtaking_of_incompatible_front():
    t = table()
    t.request(request(owner(), "update"))
    front = request(owner(), "observe")   # blocked
    t.request(front)
    late = request(owner(), "update")     # would be compatible, but FIFO
    t.request(late)
    assert late.status is RequestStatus.PENDING


def test_transfer_routes_by_colour_and_merges_counts():
    t = table()
    parent = owner(colours=(RED,))
    child = owner(path_owners=(parent,), colours=(RED, BLUE))
    r_red = request(child, "update", colour=RED)
    r_blue = request(child, "update", colour=BLUE)
    t.request(r_red)
    t.request(r_blue)
    routed = t.transfer(child.uid,
                        lambda colour: parent if colour == RED else None)
    assert routed == {RED: parent.uid, BLUE: None}
    records = t.records_of(parent.uid)
    assert len(records) == 1 and records[0].colour == RED


def test_blocked_on_reports_blockers_and_fifo_predecessors():
    t = table()
    holder = owner()
    t.request(request(holder, "admin"))
    first = request(owner(), "update")
    second = request(owner(), "update")
    t.request(first)
    t.request(second)
    assert t.blocked_on(first) == [holder.uid]
    assert set(t.blocked_on(second)) == {holder.uid, first.owner.uid}


def test_cancel_owner_and_idle():
    t = table()
    holder = owner()
    t.request(request(holder, "admin"))
    waiter = owner()
    t.request(request(waiter, "update"))
    assert t.cancel_owner(waiter.uid, "abort") == 1
    t.release_all(holder.uid)
    assert t.is_idle()
