"""Termination fan-out: parallel/batched commit delivery, reapers,
prepare cancellation, presumed-abort vote for late prepares."""

from repro.cluster.cluster import Cluster
from repro.cluster.message import encode_colour, encode_uid
from repro.cluster.network import NetworkConfig
from repro.errors import CommitError
from repro.objects.state import ObjectState


FIXED = NetworkConfig(min_delay=1.0, max_delay=1.0)


def make_cluster(names, seed=0, config=None, **kwargs):
    cluster = Cluster(seed=seed, config=config, **kwargs)
    for name in names:
        cluster.add_node(name)
    return cluster


def committed_int(cluster, ref):
    stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
    return ObjectState.from_bytes(stored.payload).unpack_int()


def commit_duration(participants, seed=0):
    """Simulated time spent inside commit() for one write per participant."""
    names = ["coord"] + [f"p{i}" for i in range(participants)]
    cluster = make_cluster(names, seed=seed, config=FIXED)
    client = cluster.client("coord")
    holder = {}

    def app():
        refs = []
        for name in names[1:]:
            ref = yield from client.create(name, "counter", value=0)
            refs.append(ref)
        action = client.top_level("t")
        for ref in refs:
            yield from client.invoke(action, ref, "increment", 7)
        started = cluster.kernel.now
        yield from client.commit(action)
        holder["duration"] = cluster.kernel.now - started
        holder["refs"] = refs

    cluster.run_process("coord", app())
    for ref in holder["refs"]:
        assert committed_int(cluster, ref) == 7
    return holder["duration"]


def test_commit_latency_flat_in_participant_count():
    """Prepare, delegated decision and finish each go out as parallel
    rounds: past the one-phase regime (a single participant commits in a
    single round trip), commit time is bounded by the slowest server, not
    the server count."""
    single = commit_duration(1)
    pair = commit_duration(2)
    assert single < pair  # the one-phase fast path is genuinely cheaper
    wide = commit_duration(6)
    assert wide < pair * 2.0


def test_finish_batch_promotes_before_releasing_locks():
    """The per-server batch orders txn_commit before finish_commit, so the
    committed value is on disk by the time the next action gets the lock."""
    cluster = make_cluster(["coord", "part"], config=FIXED)
    client = cluster.client("coord")

    def app():
        ref = yield from client.create("part", "counter", value=0)
        action = client.top_level("t1")
        yield from client.invoke(action, ref, "increment", 3)
        yield from client.commit(action)
        # lock is free again: a second action reads the promoted state
        action2 = client.top_level("t2")
        value = yield from client.invoke(action2, ref, "get")
        yield from client.commit(action2)
        return value

    assert cluster.run_process("coord", app()) == 3


def test_unreachable_server_gets_reaped_after_heal():
    """finish_commit must not drop a live-but-partitioned server on the
    floor: a reaper keeps delivering until the locks there are released."""
    cluster = make_cluster(["coord", "p1", "p2"], lock_wait_timeout=3000.0)
    client = cluster.client("coord")
    holder = {}

    def app():
        ref1 = yield from client.create("p1", "counter", value=0)
        ref2 = yield from client.create("p2", "counter", value=0)
        action = client.top_level("t")
        yield from client.invoke(action, ref1, "increment", 5)
        yield from client.invoke(action, ref2, "increment", 5)
        # sever coord<->p1 after its prepare has landed but before the
        # decision/finish fan-out reaches it; p2 — the last agent — gets
        # the decision inside its own prepare and stays reachable
        cluster.kernel.schedule(
            6.0, lambda: cluster.network.partition("coord", "p1"))
        yield from client.commit(action)
        holder.update(ref1=ref1, ref2=ref2, action=action)

    cluster.run_process("coord", app())
    # the delegated participant committed; p1 holds prepared state/locks
    assert committed_int(cluster, holder["ref2"]) == 5
    action_uid = holder["action"].uid
    cluster.network.heal_all()
    cluster.run(until=cluster.kernel.now + 600)
    # the reaper delivered txn_commit + finish_commit: value promoted,
    # mirror (and with it every lock) gone — well before any lock timeout
    assert committed_int(cluster, holder["ref1"]) == 5
    assert action_uid not in cluster.servers["p1"].mirrors
    assert cluster.servers["p1"].prepared == {}


def test_prepare_after_txn_abort_votes_rollback():
    """Presumed abort: a straggling prepare that races past the txn_abort
    must not park the object in-doubt — the server votes rollback."""
    cluster = make_cluster(["coord", "part"], config=FIXED)
    client = cluster.client("coord")
    transport = cluster.transports["coord"]
    holder = {}

    def app():
        ref = yield from client.create("part", "counter", value=1)
        action = client.top_level("t")
        yield from client.invoke(action, ref, "increment", 9)
        txn_id = "txn:test:late"
        # decision already broadcast: abort arrives first...
        yield from transport.call("part", "txn_abort", {"txn_id": txn_id})
        # ...then the straggler prepare for the same transaction
        reply = yield from transport.call("part", "txn_prepare", {
            "txn_id": txn_id,
            "action_uid": encode_uid(action.uid),
            "colour": encode_colour(next(iter(action.colours))),
            "object_uids": [encode_uid(ref.uid)],
            "expected_epoch": action.server_epochs.get("part"),
        })
        holder["vote"] = reply["vote"]
        holder["ref"] = ref

    cluster.run_process("coord", app())
    assert holder["vote"] == "rollback"
    server = cluster.servers["part"]
    assert server.prepared == {}
    assert holder["ref"].uid not in server.in_doubt_objects
    assert cluster.nodes["part"].stable_store.read_shadow(
        holder["ref"].uid) is None


def test_failed_prepare_round_leaves_no_prepared_state():
    """One participant unreachable => 2PC fails; the *other* participant's
    prepare must be actively aborted, not left in-doubt."""
    cluster = make_cluster(["coord", "fast", "dead"])
    client = cluster.client("coord")
    holder = {}

    def app():
        action = client.top_level("t")
        ref_fast = yield from client.create("fast", "counter", value=0)
        ref_dead = yield from client.create("dead", "counter", value=0)
        yield from client.invoke(action, ref_fast, "increment", 2)
        yield from client.invoke(action, ref_dead, "increment", 2)
        cluster.network.partition("coord", "dead")
        try:
            yield from client.commit(action)
            holder["outcome"] = "committed"
        except CommitError:
            holder["outcome"] = "commit-error"
        holder.update(ref_fast=ref_fast, ref_dead=ref_dead)

    cluster.run_process("coord", app())
    assert holder["outcome"] == "commit-error"
    fast = cluster.servers["fast"]
    assert fast.prepared == {}
    assert holder["ref_fast"].uid not in fast.in_doubt_objects
    assert cluster.nodes["fast"].stable_store.read_shadow(
        holder["ref_fast"].uid) is None
    assert committed_int(cluster, holder["ref_fast"]) == 0
    # after healing, the reapers deliver txn_abort/abort_action to 'dead'
    cluster.network.heal_all()
    cluster.run(until=cluster.kernel.now + 600)
    assert cluster.servers["dead"].prepared == {}
    assert committed_int(cluster, holder["ref_dead"]) == 0


def test_partial_multi_colour_commit_delivers_decided_colours():
    """When a later colour's 2PC fails, earlier colours' logged decisions
    are still delivered before the abort undoes anything."""
    cluster = make_cluster(["coord", "a", "b"])
    client = cluster.client("coord")
    holder = {}

    def app():
        c1 = client.fresh_colour("c1")
        c2 = client.fresh_colour("c2")
        action = client.coloured([c1, c2], name="two")
        ref_a = yield from client.create("a", "counter", value=0)
        ref_b = yield from client.create("b", "counter", value=0)
        yield from client.invoke(action, ref_a, "increment", 4, colour=c1)
        yield from client.invoke(action, ref_b, "increment", 4, colour=c2)
        # the second colour's participant becomes unreachable: its 2PC
        # fails, the first colour's already-decided commit must survive
        later = max((c1, c2), key=lambda c: c.uid)
        victim = "a" if later is c1 else "b"
        cluster.network.partition("coord", victim)
        try:
            yield from client.commit(action)
            holder["outcome"] = "committed"
        except CommitError:
            holder["outcome"] = "commit-error"
        holder.update(ref_a=ref_a, ref_b=ref_b, victim=victim)

    cluster.run_process("coord", app())
    assert holder["outcome"] == "commit-error"
    survivor_ref = (holder["ref_b"] if holder["victim"] == "a"
                    else holder["ref_a"])
    cluster.run(until=cluster.kernel.now + 100)
    # the earlier colour's update is permanent despite the overall abort
    assert committed_int(cluster, survivor_ref) == 4
