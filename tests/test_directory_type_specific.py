"""Directory: type-specific (per-entry) concurrency control (§2)."""

import pytest

from repro.errors import LockTimeout, ObjectNotFound
from repro.locking.modes import LockMode
from repro.stdobjects import Directory


def test_add_lookup_remove(runtime):
    directory = Directory(runtime, "ns")
    with runtime.top_level():
        directory.add("printer", "node-3")
    with runtime.top_level():
        assert directory.lookup("printer") == "node-3"
        directory.remove("printer")
    with runtime.top_level():
        with pytest.raises(ObjectNotFound):
            directory.lookup("printer")


def test_lookup_missing_raises(runtime):
    directory = Directory(runtime, "ns")
    with runtime.top_level():
        with pytest.raises(ObjectNotFound):
            directory.lookup("ghost")
        with pytest.raises(ObjectNotFound):
            directory.remove("ghost")


def test_abort_restores_added_entry(runtime):
    directory = Directory(runtime, "ns")
    with pytest.raises(RuntimeError):
        with runtime.top_level():
            directory.add("x", 1)
            raise RuntimeError
    with runtime.top_level():
        assert not directory.contains("x")


def test_abort_restores_removed_entry(runtime):
    directory = Directory(runtime, "ns")
    with runtime.top_level():
        directory.add("x", 1)
    with pytest.raises(RuntimeError):
        with runtime.top_level():
            directory.remove("x")
            raise RuntimeError
    with runtime.top_level():
        assert directory.lookup("x") == 1


def test_different_entries_do_not_conflict(runtime):
    """The paper's motivating case: reading entry a while deleting entry b."""
    directory = Directory(runtime, "ns")
    with runtime.top_level():
        directory.add("a", 1)
        directory.add("b", 2)
    scope1 = runtime.top_level(name="deleter")
    deleter = scope1.__enter__()
    directory.remove("b", action=deleter)      # holds write lock on entry b
    with runtime.top_level(name="reader") as reader:
        # reading a different entry succeeds immediately
        assert directory.lookup("a", action=reader) == 1
    scope1.__exit__(None, None, None)


def test_same_entry_conflicts(runtime):
    directory = Directory(runtime, "ns")
    with runtime.top_level():
        directory.add("a", 1)
    scope1 = runtime.top_level(name="deleter")
    deleter = scope1.__enter__()
    directory.remove("a", action=deleter)
    with runtime.top_level(name="reader") as reader:
        entry = directory._entry("a")
        with pytest.raises(LockTimeout):
            runtime.acquire(reader, entry, LockMode.READ, timeout=0.05)
        runtime.abort_action(reader)
    scope1.__exit__(None, None, None)


def test_concurrent_aborts_do_not_clobber_other_entries(runtime):
    """Per-entry recovery: aborting a writer of entry b cannot undo a
    committed write to entry a (the hazard of whole-object snapshots)."""
    directory = Directory(runtime, "ns")
    with runtime.top_level():
        directory.add("a", "old-a")
        directory.add("b", "old-b")
    scope_b = runtime.top_level(name="writer-b")
    writer_b = scope_b.__enter__()
    directory.update("b", "dirty-b", action=writer_b)
    with runtime.top_level(name="writer-a"):
        directory.update("a", "new-a")  # commits while writer-b in flight
    runtime.abort_action(writer_b)
    scope_b.__exit__(None, None, None)
    with runtime.top_level():
        assert directory.lookup("a") == "new-a"   # not clobbered
        assert directory.lookup("b") == "old-b"   # writer-b undone


def test_keys_lists_present_entries(runtime):
    directory = Directory(runtime, "ns")
    with runtime.top_level():
        directory.add("a", 1)
        directory.add("b", 2)
        directory.remove("a")
    with runtime.top_level():
        assert directory.keys() == ["b"]


def test_update_missing_raises(runtime):
    directory = Directory(runtime, "ns")
    with runtime.top_level():
        with pytest.raises(ObjectNotFound):
            directory.update("nope", 1)
