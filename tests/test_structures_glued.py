"""Glued actions: hand-over pins, early release, cascade-abort freedom
(figs. 5/6/12 and the §3.2 diary-style requirements)."""

import pytest

from repro.errors import LockTimeout
from repro.locking.modes import LockMode
from repro.structures import GluedGroup
from repro.stdobjects import Counter


def test_member_effects_permanent_at_member_commit(runtime):
    counter = Counter(runtime, value=0)
    with GluedGroup(runtime, name="g") as glue:
        with glue.member(name="A") as m:
            counter.increment(5, action=m.action)
        assert runtime.store.read_committed(counter.uid).payload == counter.snapshot()
    assert counter.value == 5


def test_unhanded_objects_released_at_member_commit(runtime):
    """§3.2: objects in O - P must be free once A commits — the advantage
    over a serializing action."""
    kept = Counter(runtime, value=0)
    released = Counter(runtime, value=0)
    glue = GluedGroup(runtime, name="g")
    with glue.member(name="A") as m:
        kept.increment(1, action=m.action)
        released.increment(1, action=m.action)
        m.hand_over(kept)
    with runtime.top_level(name="bystander") as by:
        runtime.acquire(by, released, LockMode.WRITE, timeout=0.05)  # free
        with pytest.raises(LockTimeout):
            runtime.acquire(by, kept, LockMode.WRITE, timeout=0.05)  # pinned
        runtime.abort_action(by)
    glue.close()


def test_handed_over_objects_unchanged_between_members(runtime):
    """Objects in P remain unchanged between the end of A and start of B."""
    p = Counter(runtime, value=0)
    glue = GluedGroup(runtime, name="g")
    with glue.member(name="A") as m:
        p.increment(1, action=m.action)
        m.hand_over(p)
    with glue.member(name="B") as m2:
        assert p.get(action=m2.action) == 1
        p.increment(10, action=m2.action)
    glue.close()
    assert p.value == 11


def test_a_effects_not_recovered_if_b_fails(runtime):
    """§3.2: 'The effects of A on P should not be recovered if B fails.'"""
    p = Counter(runtime, value=0)
    glue = GluedGroup(runtime, name="g")
    with glue.member(name="A") as m:
        p.increment(1, action=m.action)
        m.hand_over(p)
    with pytest.raises(RuntimeError):
        with glue.member(name="B") as m2:
            p.increment(100, action=m2.action)
            raise RuntimeError("B fails")
    glue.close()
    assert p.value == 1  # A's effect intact, B's undone


def test_group_cancel_preserves_committed_members(runtime):
    p = Counter(runtime, value=0)
    glue = GluedGroup(runtime, name="g")
    with glue.member(name="A") as m:
        p.increment(1, action=m.action)
        m.hand_over(p)
    glue.cancel()
    assert p.value == 1
    # pin dropped: outsiders may now lock it
    with runtime.top_level(name="after") as later:
        runtime.acquire(later, p, LockMode.WRITE, timeout=0.05)


def test_group_cancel_aborts_active_member(runtime):
    p = Counter(runtime, value=0)
    glue = GluedGroup(runtime, name="g")
    member = glue.member(name="A")
    with member as m:
        p.increment(1, action=m.action)
        glue.cancel()
    assert member.action.status.value == "aborted"
    assert p.value == 0


def test_concurrent_glued_members_fig6(runtime):
    """Fig. 6(a): several members glued under one control concurrently."""
    objects = [Counter(runtime, value=0) for _ in range(3)]
    shared_pin = Counter(runtime, value=0)
    glue = GluedGroup(runtime, name="g")
    scopes = [glue.member(name=f"A{i}") for i in range(3)]
    members = [scope.__enter__() for scope in scopes]
    for i, member in enumerate(members):
        objects[i].increment(i + 1, action=member.action)
    members[0].hand_over(shared_pin)
    for scope in scopes:
        scope.__exit__(None, None, None)
    with glue.member(name="B") as b:
        assert shared_pin.get(action=b.action) == 0
    glue.close()
    assert [o.value for o in objects] == [1, 2, 3]


def test_chain_of_glued_members_fig9_style(runtime):
    """I1 -> I2 -> ... -> In, shrinking the pinned set each round."""
    slots = [Counter(runtime, value=0) for _ in range(4)]
    glue = GluedGroup(runtime, name="rounds")
    survivors = list(slots)
    round_no = 0
    while len(survivors) > 1:
        round_no += 1
        with glue.member(name=f"I{round_no}") as m:
            for slot in survivors:
                slot.increment(1, action=m.action)
            survivors = survivors[:-1]          # narrow the choice
            m.hand_over(*survivors)             # keep only survivors pinned
    glue.close()
    assert [s.value for s in slots] == [3, 3, 2, 1]


def test_pin_passes_through_multiple_members(runtime):
    p = Counter(runtime, value=0)
    glue = GluedGroup(runtime, name="g")
    for i in range(3):
        with glue.member(name=f"I{i}") as m:
            p.increment(1, action=m.action)
            m.hand_over(p)
    glue.close()
    assert p.value == 3


def test_member_abort_releases_its_pins(runtime):
    """An aborted member's ER pins are discarded with its other locks."""
    p = Counter(runtime, value=0)
    glue = GluedGroup(runtime, name="g")
    with pytest.raises(RuntimeError):
        with glue.member(name="A") as m:
            p.increment(1, action=m.action)
            m.hand_over(p)
            raise RuntimeError("A fails before handing over")
    with runtime.top_level(name="bystander") as by:
        runtime.acquire(by, p, LockMode.WRITE, timeout=0.05)
        runtime.abort_action(by)
    glue.close()
    assert p.value == 0
