"""The paper's own caveats, demonstrated.

§5.1 states coloured serializability holds "given that no information is
communicated between actions of the same colour using nested actions with
a different colour".  That conditional is real: a differently-coloured
nested action CAN observe its ancestor's uncommitted state (that is what
makes fig. 13(b) deadlock-free) and publish it — creating exactly the
anomaly the caveat warns about.  These tests construct the anomaly, so
the implementation is demonstrably faithful to the *conditional* claim,
not to a stronger one the paper does not make.
"""

import pytest

from repro.stdobjects import Counter
from repro.structures import independent_top_level


def test_independent_action_can_leak_uncommitted_state(runtime):
    """The anomaly: B (fresh colour, nested in A) reads A's uncommitted
    write and publishes it to an outside object; A then aborts.  The
    published value reflects a state that never committed — permitted by
    the caveat, impossible in a single-colour (conventional) system."""
    source = Counter(runtime, value=0)
    board = Counter(runtime, value=0)
    with pytest.raises(RuntimeError):
        with runtime.top_level(name="A"):
            source.increment(42)                    # uncommitted write
            with independent_top_level(runtime, name="B") as b:
                seen = source.get(action=b)        # reads past A's WRITE lock
                board.increment(seen, action=b)    # ... and publishes it
            raise RuntimeError("A aborts")
    assert source.value == 0       # A's write was undone...
    assert board.value == 42       # ... but B published the phantom value


def test_no_leak_without_cross_colour_nesting(runtime):
    """Control: an outside action (not nested in A) cannot observe the
    uncommitted write — plain two-phase locking protects same-colour
    serializability when the caveat's precondition holds."""
    from repro.errors import LockTimeout
    from repro.locking.modes import LockMode
    source = Counter(runtime, value=0)
    scope = runtime.top_level(name="A")
    with scope as a:
        source.increment(42, action=a)
        with runtime.top_level(name="outsider") as outsider:
            with pytest.raises(LockTimeout):
                runtime.acquire(outsider, source, LockMode.READ, timeout=0.05)
            runtime.abort_action(outsider)
        runtime.abort_action(a)
    assert source.value == 0


def test_same_colour_actions_cannot_communicate_uncommitted_state(runtime):
    """Within one colour the conventional guarantees are intact: a nested
    action shares its ancestor's view (by design — it IS part of the same
    computation), but an unrelated same-colour top-level action is fully
    isolated."""
    source = Counter(runtime, value=0)
    observed = {}
    with pytest.raises(RuntimeError):
        with runtime.top_level(name="A"):
            source.increment(7)
            with runtime.atomic(name="child") as child:
                observed["child"] = source.get(action=child)  # same computation
            raise RuntimeError("A aborts")
    assert observed["child"] == 7   # the child is part of A, this is fine
    with runtime.top_level(name="later"):
        assert source.get() == 0    # nobody outside ever saw the 7
