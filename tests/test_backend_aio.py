"""Asyncio backend: kernel surface semantics on a real event loop.

These tests pin the edge cases the backend contract (docs/BACKENDS.md)
promises are backend-independent: ``every(immediate=True)`` daemon timer
semantics, ``settle_all`` fan-out completion, the fault-RNG stream
independence the sim network guarantees (the PR-2 drop/duplicate
entanglement bug must not regress on the real-time transport), and the
drain / watchdog behaviour of ``run`` / ``run_until_settled``.

Wall-clock scales are kept tiny (0.5–2 ms per unit) so the whole module
runs in a few seconds of host time.
"""

import asyncio

import pytest

from repro.backend import (
    AsyncioBackend,
    AsyncioKernel,
    BackendError,
    ExecutionBackend,
    SimBackend,
    resolve_backend,
)
from repro.cluster.message import Message
from repro.cluster.network import Network, NetworkConfig
from repro.errors import SimulationError
from repro.sim.kernel import Kernel, ProcessKilled, Timeout, settle_all
from repro.util.rng import SplitRandom


def make_kernel(time_scale=0.001):
    return AsyncioKernel(time_scale=time_scale)


# -- clock and construction ---------------------------------------------------


def test_clock_advances_with_wall_time():
    kernel = make_kernel()
    try:
        first = kernel.now
        ticks = []
        kernel.spawn(_sleeper(2.0, ticks))
        kernel.run()
        assert kernel.now >= first + 2.0
        assert ticks == ["done"]
    finally:
        kernel.close()


def test_time_scale_must_be_positive():
    with pytest.raises(SimulationError):
        AsyncioKernel(time_scale=0.0)
    with pytest.raises(SimulationError):
        AsyncioKernel(time_scale=-1.0)


def test_spawn_rejects_non_generator():
    kernel = make_kernel()
    try:
        with pytest.raises(SimulationError):
            kernel.spawn(lambda: None)
    finally:
        kernel.close()


def _sleeper(duration, log):
    yield Timeout(duration)
    log.append("done")


# -- run / drain semantics ----------------------------------------------------


def test_run_returns_immediately_when_drained():
    kernel = make_kernel()
    try:
        before = kernel.now
        kernel.run()
        assert kernel.now - before < 100.0  # no blocking wait happened
    finally:
        kernel.close()


def test_run_until_stops_clock_and_leaves_work_scheduled():
    kernel = make_kernel()
    try:
        log = []
        kernel.spawn(_sleeper(50.0, log))
        kernel.run(until=kernel.now + 5.0)
        assert log == []
        kernel.run()  # resumes the pending sleeper to completion
        assert log == ["done"]
    finally:
        kernel.close()


def test_run_until_settled_raises_when_drained():
    kernel = make_kernel()
    try:
        event = kernel.event("never")
        with pytest.raises(SimulationError, match="drained"):
            kernel.run_until_settled(event)
    finally:
        kernel.close()


def test_run_until_settled_enforces_time_limit():
    kernel = make_kernel()
    try:
        log = []
        kernel.spawn(_sleeper(10_000.0, log))
        event = kernel.event("never")
        with pytest.raises(SimulationError, match="limit"):
            kernel.run_until_settled(event, limit=kernel.now + 5.0)
    finally:
        kernel.close()


def test_run_until_settled_returns_value_and_raises_failure():
    kernel = make_kernel()
    try:
        ok = kernel.event("ok")
        kernel.schedule(1.0, lambda: ok.trigger("payload"))
        assert kernel.run_until_settled(ok) == "payload"
        bad = kernel.event("bad")
        kernel.schedule(1.0, lambda: bad.fail(RuntimeError("boom")))
        with pytest.raises(RuntimeError, match="boom"):
            kernel.run_until_settled(bad)
    finally:
        kernel.close()


def test_close_is_idempotent_and_injected_loops_survive():
    kernel = make_kernel()
    kernel.close()
    kernel.close()
    loop = asyncio.new_event_loop()
    try:
        injected = AsyncioKernel(time_scale=0.001, loop=loop)
        injected.close()
        assert not loop.is_closed()
    finally:
        loop.close()


# -- processes, kill, timeout_event ------------------------------------------


def test_process_kill_runs_finally_blocks():
    kernel = make_kernel()
    try:
        log = []

        def victim():
            try:
                yield Timeout(1_000.0)
            finally:
                log.append("cleanup")

        process = kernel.spawn(victim())
        kernel.schedule(2.0, process.kill)
        kernel.run()
        assert log == ["cleanup"]
        assert not process.alive
    finally:
        kernel.close()


def test_timeout_event_triggers_once():
    kernel = make_kernel()
    try:
        event = kernel.timeout_event(2.0, value="fired")
        assert kernel.run_until_settled(event) == "fired"
        assert event.settled and not event.failed
    finally:
        kernel.close()


def test_join_propagates_result():
    kernel = make_kernel()
    try:

        def child():
            yield Timeout(1.0)
            return 42

        def parent(out):
            value = yield kernel.spawn(child())
            out.append(value)

        results = []
        kernel.spawn(parent(results))
        kernel.run()
        assert results == [42]
    finally:
        kernel.close()


# -- every(immediate=) daemon timer semantics --------------------------------


def test_every_immediate_fires_now_then_periodically():
    kernel = make_kernel()
    try:
        fired = []
        log = []
        timer = kernel.every(1.0, lambda: fired.append(kernel.now),
                             immediate=True)
        kernel.spawn(_sleeper(4.5, log))
        kernel.run()
        timer.cancel()
        assert log == ["done"]
        # immediate first firing, then roughly one per unit while alive
        assert len(fired) >= 3
        assert fired[0] < 1.0
    finally:
        kernel.close()


def test_every_without_immediate_waits_one_interval():
    kernel = make_kernel()
    try:
        fired = []
        log = []
        start = kernel.now
        timer = kernel.every(2.0, lambda: fired.append(kernel.now))
        kernel.spawn(_sleeper(5.0, log))
        kernel.run()
        timer.cancel()
        assert fired and fired[0] >= start + 2.0
    finally:
        kernel.close()


def test_periodic_timer_alone_never_keeps_backend_alive():
    """Daemon entries must not count as pending work: a kernel whose only
    scheduled entry is a periodic timer is drained, exactly as on sim."""
    kernel = make_kernel()
    try:
        fired = []
        kernel.every(1.0, lambda: fired.append(kernel.now), immediate=True)
        before = kernel.now
        kernel.run()
        assert kernel.now - before < 100.0  # returned without blocking
    finally:
        kernel.close()


def test_cancelled_timer_stops_firing():
    kernel = make_kernel()
    try:
        fired = []
        log = []
        timer = kernel.every(1.0, lambda: fired.append(kernel.now))
        kernel.schedule(2.5, timer.cancel)
        kernel.spawn(_sleeper(8.0, log))
        kernel.run()
        assert fired and all(t <= 3.5 for t in fired)
    finally:
        kernel.close()


# -- settle_all fan-out -------------------------------------------------------


def test_settle_all_waits_for_every_branch_including_failures():
    kernel = make_kernel()
    try:

        def ok(duration, out):
            yield Timeout(duration)
            out.append(duration)

        def bad():
            yield Timeout(1.0)
            raise RuntimeError("branch failed")

        done = []
        branches = [kernel.spawn(ok(3.0, done)), kernel.spawn(ok(1.0, done)),
                    kernel.spawn(bad())]

        def waiter(out):
            outcomes = yield settle_all(kernel, [b.join() for b in branches])
            out.append((sorted(done), [ok for ok, _value in outcomes]))

        observed = []
        kernel.spawn(waiter(observed))
        kernel.run()
        # the waiter resumed only after the slowest branch finished, and
        # the failing branch did not abort the fan-in
        assert observed == [([1.0, 3.0], [True, True, False])]
        assert isinstance(branches[2].error, RuntimeError)
    finally:
        kernel.close()


# -- native asyncio bridge ----------------------------------------------------


def test_run_coroutine_result_flows_into_generator_world():
    backend = AsyncioBackend(time_scale=0.001)
    try:

        async def native():
            await asyncio.sleep(0.002)
            return "from-asyncio"

        results = []

        def consumer():
            value = yield backend.run_coroutine(native())
            results.append(value)

        backend.kernel.spawn(consumer())
        backend.run()
        assert results == ["from-asyncio"]
    finally:
        backend.close()


def test_run_coroutine_keeps_backend_alive_and_propagates_errors():
    backend = AsyncioBackend(time_scale=0.001)
    try:

        async def native():
            await asyncio.sleep(0.002)
            raise ValueError("native failure")

        event = backend.run_coroutine(native())
        with pytest.raises(ValueError, match="native failure"):
            backend.kernel.run_until_settled(event)
    finally:
        backend.close()


def test_run_coroutine_cancellation_fails_event_with_process_killed():
    backend = AsyncioBackend(time_scale=0.001)
    try:
        started = []

        async def native():
            started.append(True)
            await asyncio.sleep(60.0)

        event = backend.run_coroutine(native())
        failures = []
        event.on_settle(lambda ev: failures.append(ev.value))

        def canceller():
            yield Timeout(2.0)
            for task in asyncio.all_tasks(backend.kernel.loop):
                task.cancel()

        backend.kernel.spawn(canceller())
        backend.run()
        assert started == [True]
        assert len(failures) == 1 and isinstance(failures[0], ProcessKilled)
    finally:
        backend.close()


# -- fault-RNG stream independence on the real-time transport -----------------


def run_fault_pattern_aio(config, seed=7, count=150):
    """Deliver ``count`` messages on an AsyncioKernel-backed network.

    All sends happen inside one callback, so the per-send fault draws are
    consumed in index order regardless of loop scheduling; the resulting
    drop/duplicate fate sets are therefore comparable across knob
    settings and against the sim backend.
    """
    kernel = AsyncioKernel(time_scale=0.0005)
    try:
        network = Network(kernel, SplitRandom(seed), config)
        inbox = []
        network.attach("b", inbox.append)
        network.attach("a", lambda m: None)

        def blast():
            for i in range(count):
                network.send(Message("a", "b", "ping", {"i": i}))

        kernel.schedule(0.0, blast)
        kernel.run()
        seen = {}
        for m in inbox:
            seen[m.payload["i"]] = seen.get(m.payload["i"], 0) + 1
        dropped = {i for i in range(count) if i not in seen}
        duplicated = {i for i, n in seen.items() if n == 2}
        return dropped, duplicated
    finally:
        kernel.close()


def run_fault_pattern_sim(config, seed=7, count=150):
    kernel = Kernel()
    network = Network(kernel, SplitRandom(seed), config)
    inbox = []
    network.attach("b", inbox.append)
    network.attach("a", lambda m: None)
    for i in range(count):
        network.send(Message("a", "b", "ping", {"i": i}))
    kernel.run()
    seen = {}
    for m in inbox:
        seen[m.payload["i"]] = seen.get(m.payload["i"], 0) + 1
    dropped = {i for i in range(count) if i not in seen}
    duplicated = {i for i, n in seen.items() if n == 2}
    return dropped, duplicated


def test_drop_fates_independent_of_duplicate_knob_on_asyncio():
    """PR-2 regression guard, real-time edition: toggling duplication must
    not reshuffle which messages the asyncio-backed network drops."""
    plain, _ = run_fault_pattern_aio(NetworkConfig(drop_probability=0.3))
    entangled, _ = run_fault_pattern_aio(
        NetworkConfig(drop_probability=0.3, duplicate_probability=0.5))
    assert plain == entangled


def test_fault_fates_match_sim_exactly():
    """Same seed, same knobs, same per-index drop and duplicate fate sets
    on both backends: the fault RNG streams are backend-independent."""
    config = NetworkConfig(drop_probability=0.25, duplicate_probability=0.3)
    sim_dropped, sim_dup = run_fault_pattern_sim(config)
    aio_dropped, aio_dup = run_fault_pattern_aio(config)
    assert aio_dropped == sim_dropped
    assert aio_dup == sim_dup


# -- backend resolution and lifecycle ----------------------------------------


def test_resolve_backend_specs():
    default = resolve_backend(None)
    assert isinstance(default, SimBackend) and default.deterministic
    assert isinstance(resolve_backend("sim"), SimBackend)
    for spec in ("asyncio", "aio"):
        backend = resolve_backend(spec)
        assert isinstance(backend, AsyncioBackend) and backend.wall_clock
        backend.close()
    passthrough = SimBackend()
    assert resolve_backend(passthrough) is passthrough
    with pytest.raises(BackendError):
        resolve_backend("threads")
    with pytest.raises(BackendError):
        resolve_backend(42)


def test_backend_context_manager_closes_loop():
    with AsyncioBackend(time_scale=0.001) as backend:
        assert isinstance(backend, ExecutionBackend)
        loop = backend.kernel.loop
        assert not loop.is_closed()
    assert loop.is_closed()


def test_sim_backend_wraps_existing_kernel_unchanged():
    kernel = Kernel()
    backend = SimBackend(kernel)
    assert backend.kernel is kernel
    assert backend.name == "sim" and not backend.wall_clock
    backend.close()  # no-op, must not raise
