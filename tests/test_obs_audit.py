"""The online invariant auditor: seeded violations, clean runs, CLI.

Every test seeds exactly one class of misbehaviour — either through the
real harness (a LocalRuntime mis-driven on purpose) or through a
synthetic event stream — and asserts the auditor reports exactly that
finding kind.  Clean streams and clean harness runs must report nothing.
"""

import json

import pytest

from repro.actions.action import Action
from repro.obs import Observability
from repro.obs.audit import Finding, InvariantAuditor, LockHoldTracker
from repro.obs.audit import findings as F
from repro.obs.audit.__main__ import main as audit_main
from repro.obs.audit.testing import install_online_audit
from repro.obs.bus import ObsEvent
from repro.obs.metrics import MetricsRegistry
from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Counter


def feed(auditor, events):
    """Replay (kind, labels) pairs; ticks are the stream positions."""
    for index, (kind, labels) in enumerate(events):
        auditor.consume(ObsEvent(tick=float(index), kind=kind,
                                 labels=labels))


def kinds_of(auditor):
    return {finding.kind for finding in auditor.report()}


def begin(uid, parent="", colours="c", node="local"):
    return ("action.begin", {"action": uid, "name": uid, "parent": parent,
                             "colours": colours, "node": node})


def grant(owner, obj, mode="write", colour="c", node="local"):
    return ("lock.granted", {"owner": owner, "object": obj, "mode": mode,
                             "colour": colour, "node": node})


def release(owner, obj, colour="c", node="local", reason="commit"):
    return ("lock.released", {"owner": owner, "object": obj,
                              "colour": colour, "node": node,
                              "reason": reason})


# -- real-harness seeded violations -------------------------------------------


def observed_runtime():
    runtime = LocalRuntime()
    hub = Observability()
    runtime.attach_observability(hub)
    return runtime, hub


def test_clean_local_run_has_no_findings():
    runtime, hub = observed_runtime()
    with runtime.top_level(name="outer"):
        counter = Counter(runtime, value=0)
        with runtime.atomic(name="inner"):
            counter.increment(2)
        counter.increment(1)
    assert hub.auditor.report() == []


def test_seeded_premature_release_is_a_two_phase_violation():
    """A buggy runtime that unlocks mid-action and then re-acquires."""
    runtime, hub = observed_runtime()
    with runtime.top_level(name="t") as action:
        counter = Counter(runtime, value=0)
        counter.increment(1)
        runtime.locks.release_action(action.uid)   # the seeded bug
        counter.increment(1)                       # growing after shrinking
    assert kinds_of(hub.auditor) == {F.TWO_PHASE}


def test_seeded_misrouted_commit_is_a_commit_route_violation(monkeypatch):
    """A child that persists a colour its live parent still possesses."""
    runtime, hub = observed_runtime()
    with runtime.top_level(name="outer"):
        counter = Counter(runtime, value=0)
        scope = runtime.atomic(name="inner")
        with scope:
            counter.increment(1)
            # seeded routing bug: "no ancestor has my colours"
            monkeypatch.setattr(Action, "closest_ancestor_with",
                                lambda self, colour: None)
        monkeypatch.undo()
    assert kinds_of(hub.auditor) == {F.COMMIT_ROUTE}


def test_install_online_audit_raises_and_dumps(tmp_path):
    with pytest.raises(AssertionError) as failure:
        with install_online_audit(dump_dir=str(tmp_path)):
            runtime = LocalRuntime()   # auto-instrumented by the fixture
            with runtime.top_level(name="t") as action:
                counter = Counter(runtime, value=0)
                counter.increment(1)
                runtime.locks.release_action(action.uid)
                counter.increment(1)
    assert F.TWO_PHASE in str(failure.value)
    dumps = sorted(tmp_path.glob("audit-violation-*.trace.json"))
    assert dumps, "guilty hub dump should be saved for offline replay"
    assert audit_main([str(dumps[0])]) == 2    # CLI agrees on the replay


def test_install_online_audit_passes_clean_runs(tmp_path):
    with install_online_audit(dump_dir=str(tmp_path)):
        runtime = LocalRuntime()
        with runtime.top_level(name="t"):
            Counter(runtime, value=0).increment(1)
    assert list(tmp_path.glob("*.trace.json")) == []


# -- synthetic streams: locking ------------------------------------------------


def test_clean_inheritance_stream_has_no_findings():
    auditor = InvariantAuditor()
    feed(auditor, [
        begin("P"),
        begin("C", parent="P"),
        grant("C", "o1"),
        ("commit.route", {"action": "C", "colour": "c", "dest": "P",
                          "node": "local"}),
        ("lock.inherited", {"owner": "C", "to": "P", "object": "o1",
                            "mode": "write", "colour": "c",
                            "node": "local"}),
        ("action.end", {"action": "C", "outcome": "committed"}),
        ("commit.route", {"action": "P", "colour": "c", "dest": "",
                          "node": "local"}),
        ("colour.permanent", {"action": "P", "colour": "c",
                              "objects": "o1", "node": "local"}),
        release("P", "o1"),
        ("action.end", {"action": "P", "outcome": "committed"}),
    ])
    assert auditor.report() == []


def test_conflicting_write_grant_is_a_lock_rule_violation():
    auditor = InvariantAuditor()
    feed(auditor, [
        begin("A"),
        begin("B"),
        grant("A", "o1"),
        grant("B", "o1"),   # non-ancestor holder: breaks rule W
    ])
    assert kinds_of(auditor) == {F.LOCK_RULE}


def test_cross_colour_write_records_are_a_lock_rule_violation():
    auditor = InvariantAuditor()
    feed(auditor, [
        begin("P", colours="c1,c2"),
        begin("A", parent="P", colours="c1,c2"),
        grant("P", "o1", colour="c1"),
        grant("A", "o1", colour="c2"),   # holder IS an ancestor, but the
                                         # write records disagree on colour
    ])
    assert kinds_of(auditor) == {F.LOCK_RULE}


def test_node_restart_resets_lock_state():
    auditor = InvariantAuditor()
    feed(auditor, [
        begin("A", node="n1"),
        begin("B", node="n1"),
        grant("A", "o1", node="n1"),
        ("node.restart", {"node": "n1"}),
        grant("B", "o1", node="n1"),   # fine: the crash wiped A's record
    ])
    assert auditor.report() == []


def test_unit_cycle_is_a_serialization_violation():
    auditor = InvariantAuditor()
    feed(auditor, [
        begin("A"),
        begin("A1", parent="A"),
        begin("A2", parent="A"),
        begin("B"),
        grant("A1", "o1"),
        release("A1", "o1"),
        grant("B", "o1"),        # unit A before unit B on o1
        grant("B", "o2"),
        release("B", "o1"),
        release("B", "o2"),
        grant("A2", "o2"),       # unit B before unit A on o2: a cycle
    ])
    report = auditor.report()
    assert {finding.kind for finding in report} == {F.SERIALIZATION_CYCLE}
    [finding] = report
    assert "A" in finding.message and "B" in finding.message


def test_misrouted_permanence_is_a_commit_route_violation():
    auditor = InvariantAuditor()
    feed(auditor, [
        begin("P"),
        begin("C", parent="P"),
        ("commit.route", {"action": "C", "colour": "c", "dest": "",
                          "node": "local"}),   # P is live and coloured c
    ])
    assert kinds_of(auditor) == {F.COMMIT_ROUTE}


def test_persisting_an_unpossessed_colour_is_an_atomicity_violation():
    auditor = InvariantAuditor()
    feed(auditor, [
        begin("A", colours="c1"),
        ("colour.permanent", {"action": "A", "colour": "c2",
                              "objects": "o1", "node": "local"}),
    ])
    assert kinds_of(auditor) == {F.ATOMICITY}


# -- synthetic streams: 2PC state machine -------------------------------------


def test_commit_decision_over_a_rollback_vote():
    auditor = InvariantAuditor()
    feed(auditor, [
        ("twopc.begin", {"txn": "t1", "action": "A", "colour": "c",
                         "participants": "n1", "node": "home"}),
        ("twopc.vote", {"txn": "t1", "node": "n1", "vote": "rollback",
                        "colour": "c"}),
        ("twopc.decision", {"txn": "t1", "decision": "commit",
                            "node": "home"}),
    ])
    assert kinds_of(auditor) == {F.COMMIT_AFTER_ROLLBACK}


def test_shadow_promotion_without_a_decision():
    auditor = InvariantAuditor()
    feed(auditor, [
        ("twopc.vote", {"txn": "t1", "node": "n1", "vote": "commit",
                        "colour": "c"}),
        ("twopc.commit", {"txn": "t1", "node": "n1", "objects": "o1"}),
    ])
    assert kinds_of(auditor) == {F.COMMIT_WITHOUT_DECISION}


def test_shadow_promotion_after_an_abort_decision():
    auditor = InvariantAuditor()
    feed(auditor, [
        ("twopc.decision", {"txn": "t1", "decision": "abort",
                            "node": "home"}),
        ("twopc.commit", {"txn": "t1", "node": "n1", "objects": "o1"}),
    ])
    assert kinds_of(auditor) == {F.ATOMICITY, F.COMMIT_WITHOUT_DECISION}


def test_presumed_abort_contradicting_a_logged_commit():
    auditor = InvariantAuditor()
    feed(auditor, [
        ("twopc.decision", {"txn": "t1", "decision": "commit",
                            "node": "home"}),
        ("twopc.decision_query", {"txn": "t1", "decision": "abort",
                                  "node": "home"}),
    ])
    assert kinds_of(auditor) == {F.PRESUMED_ABORT}


def test_opposite_decisions_conflict():
    auditor = InvariantAuditor()
    feed(auditor, [
        ("twopc.decision", {"txn": "t1", "decision": "commit",
                            "node": "home"}),
        ("twopc.decision", {"txn": "t1", "decision": "abort",
                            "node": "home"}),
    ])
    assert kinds_of(auditor) == {F.DECISION_CONFLICT}


def test_commit_voter_left_in_doubt_after_coordinator_end():
    auditor = InvariantAuditor()
    feed(auditor, [
        ("twopc.vote", {"txn": "t1", "node": "n1", "vote": "commit",
                        "colour": "c"}),
        ("twopc.decision", {"txn": "t1", "decision": "commit",
                            "node": "home"}),
        ("twopc.end", {"txn": "t1", "node": "home"}),
    ])
    assert kinds_of(auditor) == {F.IN_DOUBT_AFTER_END}


def test_clean_twopc_round_has_no_findings():
    auditor = InvariantAuditor()
    feed(auditor, [
        ("twopc.begin", {"txn": "t1", "action": "A", "colour": "c",
                         "participants": "n1,n2", "node": "home"}),
        ("twopc.vote", {"txn": "t1", "node": "n1", "vote": "commit",
                        "colour": "c"}),
        ("twopc.vote", {"txn": "t1", "node": "n2", "vote": "commit",
                        "colour": "c"}),
        ("twopc.decision", {"txn": "t1", "decision": "commit",
                            "node": "home"}),
        ("twopc.commit", {"txn": "t1", "node": "n1", "objects": "o1"}),
        ("twopc.commit", {"txn": "t1", "node": "n2", "objects": "o2"}),
        ("twopc.end", {"txn": "t1", "node": "home"}),
    ])
    assert auditor.report() == []


def test_fast_path_decision_without_quorum():
    """A delegated (piggybacked) decision is only sound once every other
    participant's affirmative vote is in evidence."""
    auditor = InvariantAuditor()
    feed(auditor, [
        ("twopc.begin", {"txn": "t1", "action": "A", "colour": "c",
                         "participants": "n1,n2", "node": "home"}),
        # n1 never voted, yet the last agent decides commit
        ("twopc.vote", {"txn": "t1", "node": "n2", "vote": "commit",
                        "colour": "c"}),
        ("twopc.decision", {"txn": "t1", "decision": "commit",
                            "fast_path": "piggyback", "node": "n2",
                            "colour": "c"}),
    ])
    assert kinds_of(auditor) == {F.FAST_PATH_NO_QUORUM}


def test_fast_path_decision_with_quorum_is_clean():
    auditor = InvariantAuditor()
    feed(auditor, [
        ("twopc.begin", {"txn": "t1", "action": "A", "colour": "c",
                         "participants": "n1,n2", "node": "home"}),
        ("twopc.vote", {"txn": "t1", "node": "n1", "vote": "commit",
                        "colour": "c"}),
        ("twopc.vote", {"txn": "t1", "node": "n2", "vote": "commit",
                        "colour": "c"}),
        ("twopc.decision", {"txn": "t1", "decision": "commit",
                            "fast_path": "piggyback", "node": "n2",
                            "colour": "c"}),
        ("twopc.commit", {"txn": "t1", "node": "n2", "objects": "o2"}),
        ("twopc.commit", {"txn": "t1", "node": "n1", "objects": "o1"}),
        ("twopc.end", {"txn": "t1", "node": "home"}),
    ])
    assert auditor.report() == []


def test_one_phase_decision_at_sole_participant_is_clean():
    auditor = InvariantAuditor()
    feed(auditor, [
        ("twopc.begin", {"txn": "t1", "action": "A", "colour": "c",
                         "participants": "n1", "node": "home"}),
        ("twopc.vote", {"txn": "t1", "node": "n1", "vote": "commit",
                        "colour": "c"}),
        ("twopc.decision", {"txn": "t1", "decision": "commit",
                            "fast_path": "one_phase", "node": "n1",
                            "colour": "c"}),
        ("twopc.commit", {"txn": "t1", "node": "n1", "objects": "o1"}),
        ("twopc.end", {"txn": "t1", "node": "home"}),
    ])
    assert auditor.report() == []


def test_read_only_voter_in_phase_two():
    """A read-only voter released its locks at vote time; driving it
    through phase two anyway is a protocol violation."""
    auditor = InvariantAuditor()
    feed(auditor, [
        ("twopc.begin", {"txn": "t1", "action": "A", "colour": "c",
                         "participants": "n1", "node": "home"}),
        ("twopc.vote", {"txn": "t1", "node": "n1", "vote": "commit",
                        "colour": "c"}),
        ("twopc.vote", {"txn": "t1", "node": "n2", "vote": "read-only",
                        "colour": "c"}),
        ("twopc.decision", {"txn": "t1", "decision": "commit",
                            "node": "home"}),
        ("twopc.commit", {"txn": "t1", "node": "n1", "objects": "o1"}),
        ("twopc.commit", {"txn": "t1", "node": "n2", "objects": "o2"}),
        ("twopc.end", {"txn": "t1", "node": "home"}),
    ])
    assert kinds_of(auditor) == {F.READ_ONLY_IN_PHASE_TWO}


def test_read_only_vote_is_affirmative_and_leaves_the_protocol():
    """read-only neither negates a commit decision nor counts as an
    in-doubt participant once the coordinator ends the transaction."""
    auditor = InvariantAuditor()
    feed(auditor, [
        ("twopc.begin", {"txn": "t1", "action": "A", "colour": "c",
                         "participants": "n1", "node": "home"}),
        ("twopc.vote", {"txn": "t1", "node": "n1", "vote": "commit",
                        "colour": "c"}),
        ("twopc.vote", {"txn": "t1", "node": "n2", "vote": "read-only",
                        "colour": "c"}),
        ("twopc.decision", {"txn": "t1", "decision": "commit",
                            "node": "home"}),
        ("twopc.commit", {"txn": "t1", "node": "n1", "objects": "o1"}),
        ("twopc.end", {"txn": "t1", "node": "home"}),
    ])
    assert auditor.report() == []


def test_findings_are_counted_once_in_metrics():
    registry = MetricsRegistry()
    auditor = InvariantAuditor(metrics=registry)
    feed(auditor, [
        begin("A"),
        ("colour.permanent", {"action": "A", "colour": "zz",
                              "objects": "o1", "node": "local"}),
    ])
    auditor.report()
    auditor.report()   # report-time checks must not double-count
    assert registry.value("audit_findings_total",
                          kind=F.ATOMICITY) == 1


def test_finding_round_trips_through_dict():
    finding = Finding(kind=F.TWO_PHASE, message="m", tick=1.0, colour="c",
                      node="n", action="a", object="o", event_seqs=(1, 2))
    as_dict = finding.to_dict()
    assert as_dict["kind"] == F.TWO_PHASE
    assert as_dict["event_seqs"] == [1, 2]
    assert F.TWO_PHASE in str(finding)


# -- the lock hold-time histogram ---------------------------------------------


def test_hold_time_spans_inheritance_and_is_labelled_by_colour():
    registry = MetricsRegistry()
    tracker = LockHoldTracker(registry)
    labels = {"node": "n1", "owner": "A", "object": "o1", "colour": "c"}
    tracker.consume(ObsEvent(1.0, "lock.granted", dict(labels)))
    tracker.consume(ObsEvent(4.0, "lock.inherited",
                             dict(labels, to="P")))
    tracker.consume(ObsEvent(9.0, "lock.released",
                             dict(labels, owner="P")))
    histogram = registry.histogram("lock_hold_time", node="n1",
                                   colour="c", object="o1")
    assert histogram.count == 1
    assert histogram.total == 8.0   # clock survives the commit hand-off


def test_hold_time_clocks_die_with_their_node():
    registry = MetricsRegistry()
    tracker = LockHoldTracker(registry)
    labels = {"node": "n1", "owner": "A", "object": "o1", "colour": "c"}
    tracker.consume(ObsEvent(1.0, "lock.granted", dict(labels)))
    tracker.consume(ObsEvent(2.0, "node.restart", {"node": "n1"}))
    tracker.consume(ObsEvent(5.0, "lock.released", dict(labels)))
    histogram = registry.histogram("lock_hold_time", node="n1",
                                   colour="c", object="o1")
    assert histogram.count == 0


def test_local_runtime_populates_hold_time_histogram():
    runtime, hub = observed_runtime()
    with runtime.top_level(name="t"):
        Counter(runtime, value=0).increment(1)
    rows = [row for row in hub.dump()["histograms"]
            if row["name"] == "lock_hold_time"]
    assert rows
    assert all(row["labels"].get("colour") for row in rows)


# -- CLI: python -m repro.obs.audit -------------------------------------------


def save_hub(hub, tmp_path, name="run.trace.json"):
    path = tmp_path / name
    hub.save(str(path))
    return str(path)


def test_audit_cli_clean_dump_exits_zero(tmp_path, capsys):
    runtime, hub = observed_runtime()
    with runtime.top_level(name="t"):
        Counter(runtime, value=0).increment(1)
    assert audit_main([save_hub(hub, tmp_path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_audit_cli_violation_dump_exits_two(tmp_path, capsys):
    runtime, hub = observed_runtime()
    with runtime.top_level(name="t") as action:
        counter = Counter(runtime, value=0)
        counter.increment(1)
        runtime.locks.release_action(action.uid)
        counter.increment(1)
    path = save_hub(hub, tmp_path)
    assert audit_main([path]) == 2
    assert F.TWO_PHASE in capsys.readouterr().out
    assert audit_main([path, "--json"]) == 2
    found = json.loads(capsys.readouterr().out)
    assert F.TWO_PHASE in {entry["kind"] for entry in found}


# (CLI exit-code one-offs moved to test_obs_cli_contract.py)


# -- type-specific (semantic) lock grants --------------------------------------


def semantic_grant(owner, obj, group, compatible, colour="c", node="local"):
    """A grant event as the registry emits it for operation-group locks."""
    return ("lock.granted", {"owner": owner, "object": obj, "mode": group,
                             "colour": colour, "node": node,
                             "semantic": "1", "compatible": compatible})


def test_incompatible_semantic_grant_is_a_violation():
    auditor = InvariantAuditor()
    feed(auditor, [
        begin("a1"),
        begin("a2"),
        semantic_grant("a1", "ctr", "update", compatible="update"),
        # observe does not commute with update, and a2 is no ancestor of a1
        semantic_grant("a2", "ctr", "observe", compatible="observe"),
    ])
    assert kinds_of(auditor) == {F.SEMANTIC_LOCK_RULE}
    finding = auditor.report()[0]
    assert "observe" in finding.message and "update" in finding.message


def test_commuting_semantic_grants_are_clean():
    auditor = InvariantAuditor()
    feed(auditor, [
        begin("a1"),
        begin("a2"),
        semantic_grant("a1", "ctr", "update", compatible="update"),
        semantic_grant("a2", "ctr", "update", compatible="update"),
    ])
    assert auditor.report() == []


def test_incompatible_semantic_grant_to_descendant_is_clean():
    auditor = InvariantAuditor()
    feed(auditor, [
        begin("a1"),
        begin("a2", parent="a1"),
        semantic_grant("a1", "ctr", "update", compatible="update"),
        # a1 is an inclusive ancestor of a2: §5.2 lets the child in
        semantic_grant("a2", "ctr", "observe", compatible="observe"),
    ])
    assert auditor.report() == []


def test_cluster_commuting_run_audits_clean_with_semantic_labels():
    from repro.cluster.cluster import Cluster

    cluster = Cluster(seed=0)
    for name in ("c1", "c2", "server"):
        cluster.add_node(name)
    c1, c2 = cluster.client("c1", "c1"), cluster.client("c2", "c2")
    refs = {}

    def setup():
        refs["ctr"] = yield from c1.create("server", "commuting_counter",
                                           value=0)

    def adder(client, label, amount):
        action = client.top_level(label)
        yield from client.invoke(action, refs["ctr"], "add", amount)
        yield from client.commit(action)

    cluster.run_process("c1", setup())
    cluster.spawn("c1", adder(c1, "u1", 1))
    cluster.spawn("c2", adder(c2, "u2", 10))
    cluster.run()
    assert cluster.obs.auditor.report() == []
    semantic_grants = [
        e for e in cluster.obs.auditor.event_dicts()
        if e["kind"] == "lock.granted" and e["labels"].get("semantic")
    ]
    assert semantic_grants, "registry emitted no semantic grant events"
    assert all("update" in g["labels"]["compatible"]
               for g in semantic_grants
               if g["labels"]["mode"] == "update")
