"""Synthetic make workload generator."""

from repro.apps.make.graph import DependencyGraph
from repro.apps.make.workload import generate_project

NODES = ["a", "b", "c"]


def test_generated_project_is_acyclic_and_buildable():
    project = generate_project(seed=1, layers=3, width=4, fan_in=2, nodes=NODES)
    graph = DependencyGraph(project.makefile)  # raises on cycles
    order = graph.build_order("goal")
    assert order[-1] == "goal"


def test_layer_structure_and_goal():
    project = generate_project(seed=2, layers=2, width=3, fan_in=2, nodes=NODES)
    graph = DependencyGraph(project.makefile)
    levels = graph.levels("goal")
    assert levels[-1] == ["goal"]
    assert len(levels) == 3  # two layers + the goal


def test_sources_have_content_and_no_rules():
    project = generate_project(seed=3, layers=1, width=4, fan_in=2, nodes=NODES)
    graph = DependencyGraph(project.makefile)
    assert set(project.sources) == graph.sources()
    for name, content in project.sources.items():
        assert name in content


def test_every_file_is_placed():
    project = generate_project(seed=4, layers=2, width=3, fan_in=2, nodes=NODES)
    everything = set(project.makefile.rules) | set(project.sources)
    assert everything == set(project.placement)
    assert set(project.placement.values()) <= set(NODES)


def test_same_seed_same_project():
    a = generate_project(seed=9, layers=2, width=4, fan_in=2, nodes=NODES)
    b = generate_project(seed=9, layers=2, width=4, fan_in=2, nodes=NODES)
    assert {t: r.prerequisites for t, r in a.makefile.rules.items()} == \
        {t: r.prerequisites for t, r in b.makefile.rules.items()}
    assert a.placement == b.placement


def test_different_seeds_differ():
    a = generate_project(seed=1, layers=2, width=6, fan_in=2, nodes=NODES)
    b = generate_project(seed=2, layers=2, width=6, fan_in=2, nodes=NODES)
    assert {t: r.prerequisites for t, r in a.makefile.rules.items()} != \
        {t: r.prerequisites for t, r in b.makefile.rules.items()}


def test_fan_in_respected():
    project = generate_project(seed=5, layers=2, width=5, fan_in=3, nodes=NODES)
    for target, rule in project.makefile.rules.items():
        if target == "goal":
            continue
        assert len(rule.prerequisites) == 3
