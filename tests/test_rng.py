"""Splittable seeded randomness."""

from repro.util.rng import SplitRandom


def test_same_seed_same_stream():
    a, b = SplitRandom(7), SplitRandom(7)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a, b = SplitRandom(1), SplitRandom(2)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_split_is_deterministic_by_label():
    root_a, root_b = SplitRandom(99), SplitRandom(99)
    child_a = root_a.split("network")
    child_b = root_b.split("network")
    assert [child_a.random() for _ in range(5)] == [child_b.random() for _ in range(5)]


def test_split_children_are_independent_of_parent_consumption():
    root_a, root_b = SplitRandom(5), SplitRandom(5)
    root_a.random()  # consume from one parent only
    assert root_a.split("x").random() == root_b.split("x").random()


def test_split_labels_give_distinct_streams():
    root = SplitRandom(3)
    xs = [root.split("a").random(), root.split("b").random(), root.split("c").random()]
    assert len(set(xs)) == 3
