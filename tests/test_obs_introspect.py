"""Live introspection: probes, snapshots, drift detection, health verdicts.

The ground-truth tests drive the seeded demo arms
(:mod:`repro.obs.introspect.demo`) and compare the stitched snapshots
against the simulator's own state — node epochs, prepared-transaction
tables, lock registries — which the probe can only have learned over the
RPC plane.  The fault arms must produce drift *without* the invariant
auditor seeing anything: drift is an expected symptom of injected faults,
findings are not.
"""

import json

import pytest

from repro.cluster.cluster import Cluster
from repro.errors import LockTimeout
from repro.obs.audit.findings import INTROSPECT_DRIFT
from repro.obs.introspect import (
    DEGRADED,
    EPOCH_DRIFT,
    FINISHED_IN_FLIGHT,
    HEALTHY,
    STALLED,
    render_drift,
    render_snapshot,
)
from repro.obs.introspect.demo import run_demo
from repro.obs.top import main as top_main
from repro.sim.kernel import Timeout

# -- fault-free arm: snapshots match simulator ground truth --------------------


def test_fault_free_probe_matches_ground_truth():
    out = run_demo(seed=3, arm="fault-free", interval=10.0)
    cluster, inspector = out["cluster"], out["inspector"]

    assert out["stats"] == {"committed": 6, "failed": 0}
    assert inspector.drift == []
    assert inspector.findings() == []
    assert inspector.probes >= 2

    snapshot = inspector.last
    assert snapshot["overall"] == HEALTHY
    for name, node in cluster.nodes.items():
        status = snapshot["servers"][name]
        assert status is not None
        # the epoch travelled over the wire, not out of shared memory
        assert status["epoch"] == node.epoch
        server = cluster.servers[name]
        reported = {entry["txn"] for entry in status["in_flight"]}
        assert reported == (set(server.prepared) | set(server.in_doubt_txns))
        truth = server.registry.snapshot()
        assert status["locks"]["held"] == truth["held"]
        assert status["locks"]["queued"] == truth["queued"]
        assert snapshot["health"][name] == {"verdict": HEALTHY, "causes": []}
        assert cluster.obs.metrics.gauge("cluster_health",
                                         node=name).value == 0.0
    # settled cluster: nothing in flight, nothing waiting anywhere
    assert snapshot["waits_for"] == []
    assert all(status["in_flight"] == []
               for status in snapshot["servers"].values())
    assert snapshot["coordinator"]["clients"] == 1
    assert snapshot["coordinator"]["live_actions"] == 0


def test_fault_free_arm_emits_probe_events_and_no_drift_counters():
    out = run_demo(seed=4, arm="fault-free", interval=15.0)
    obs = out["cluster"].obs
    retained = [event for _seq, event in obs.auditor.events]
    probes = [e for e in retained if e.kind == "introspect.probe"]
    assert len(probes) == out["inspector"].probes
    assert all(e.labels["drift"] == 0 for e in probes)
    assert not [e for e in retained if e.kind == "introspect.drift"]


# -- partition arm: finished-txn-in-flight drift -------------------------------


def test_partition_arm_detects_finished_txn_in_flight_drift():
    out = run_demo(seed=0, arm="partition", interval=10.0)
    cluster, inspector = out["cluster"], out["inspector"]

    kinds = {d.kind for d in inspector.drift}
    assert FINISHED_IN_FLIGHT in kinds
    drift = next(d for d in inspector.drift if d.kind == FINISHED_IN_FLIGHT)
    # gamma is the participant cut off from the coordinator on beta
    assert drift.node == "gamma"
    assert drift.txn

    # drift never contaminates the invariant auditor
    assert cluster.obs.auditor.findings == []
    rendered = inspector.findings()
    assert rendered and all(f.kind == INTROSPECT_DRIFT for f in rendered)
    assert any(f.message.startswith(FINISHED_IN_FLIGHT) for f in rendered)

    # the mid-fault snapshot degraded gamma on the strength of the drift
    drifted = [s for s in inspector.snapshots if s["drift"]]
    assert drifted
    assert any("drift" in s["health"]["gamma"]["causes"] for s in drifted)

    # after heal_all the reaper finishes phase two: the decided transaction
    # is gone from gamma and the final frame is green again
    final = inspector.last
    assert final["overall"] == HEALTHY
    gamma = final["servers"]["gamma"]
    assert drift.txn not in {entry["txn"] for entry in gamma["in_flight"]}

    counter = cluster.obs.metrics.counter("introspect_drift_total",
                                          kind=FINISHED_IN_FLIGHT)
    assert counter.value >= 1


def test_partition_arm_conserves_money_despite_probing():
    out = run_demo(seed=0, arm="partition", interval=5.0)
    cluster, client, refs = out["cluster"], out["client"], out["refs"]
    balances = {}

    def audit_balances():
        action = client.top_level("balance-audit")
        for key in ("A", "B"):
            balances[key] = yield from client.invoke(
                action, refs[key], "read_balance")
        yield from client.commit(action)

    cluster.run_process("beta", audit_balances())
    committed = out["stats"]["committed"]
    assert balances["A"] + balances["B"] == 100
    assert balances["B"] == 5 * committed


# -- restart arm: epoch drift plus the unreachable window ----------------------


def test_restart_arm_sees_unreachable_then_epoch_drift():
    out = run_demo(seed=0, arm="restart", interval=10.0)
    cluster, inspector = out["cluster"], out["inspector"]

    assert EPOCH_DRIFT in {d.kind for d in inspector.drift}
    drift = next(d for d in inspector.drift if d.kind == EPOCH_DRIFT)
    assert drift.node == "gamma"
    assert drift.action
    assert cluster.obs.auditor.findings == []

    # the ring holds the whole arc: crashed (stalled/unreachable), then
    # restarted with a bumped epoch under the live action (degraded/drift)
    down = [s for s in inspector.snapshots
            if s["health"]["gamma"]["verdict"] == STALLED
            and "unreachable" in s["health"]["gamma"]["causes"]]
    assert down
    assert all(s["servers"]["gamma"] is None for s in down)
    drifted = [s for s in inspector.snapshots
               if any(d["kind"] == EPOCH_DRIFT for d in s["drift"])]
    assert drifted
    assert drifted[0]["health"]["gamma"]["verdict"] == DEGRADED
    assert drifted[0]["tick"] > down[0]["tick"]

    # during the outage the gauge showed stalled for gamma alone; the final
    # probe (action aborted, epoch agreed) restores every gauge to healthy
    assert inspector.last["overall"] == HEALTHY
    for name in cluster.nodes:
        assert cluster.obs.metrics.gauge("cluster_health",
                                         node=name).value == 0.0


# -- waits-for edges and queue-depth health ------------------------------------


def _contended_cluster():
    """A holder camping on a counter while a victim queues behind it."""
    cluster = Cluster(seed=7, lock_wait_timeout=60.0)
    for name in ("n0", "n1"):
        cluster.add_node(name)
    c1 = cluster.client("n0", name="c1")
    c2 = cluster.client("n0", name="c2")
    refs = {}

    def setup():
        refs["x"] = yield from c1.create("n1", "counter", value=0)

    cluster.run_process("n0", setup())

    def holder():
        action = c1.top_level("holder")
        yield from c1.invoke(action, refs["x"], "increment", 1)
        yield Timeout(40.0)
        yield from c1.commit(action)

    def victim():
        yield Timeout(1.0)
        action = c2.top_level("victim")
        try:
            yield from c2.invoke(action, refs["x"], "increment", 1)
            yield from c2.commit(action)
        except LockTimeout:
            if not action.status.terminated:
                yield from c2.abort(action)

    cluster.spawn("n0", holder())
    cluster.spawn("n0", victim())
    return cluster


def test_probe_mid_wait_surfaces_waits_for_edge_and_degrades_queue():
    cluster = _contended_cluster()
    inspector = cluster.attach_introspection(interval=0,
                                             queue_depth_threshold=1)
    # let the victim reach the queue, then probe while it is still blocked
    cluster.run(until=10.0)
    snapshot = inspector.probe_once()

    edges = [e for e in snapshot["waits_for"] if e["node"] == "n1"]
    assert len(edges) == 1
    edge = edges[0]
    truth = cluster.servers["n1"].registry.snapshot()["waits_for"]
    assert {"waiter": edge["waiter"], "holder": edge["holder"],
            "object": edge["object"]} in truth
    assert edge["waiter"] != edge["holder"]

    health = snapshot["health"]["n1"]
    assert health["verdict"] == DEGRADED
    assert any(c.startswith("lock-queue-depth") for c in health["causes"])
    assert snapshot["overall"] == DEGRADED
    assert inspector.drift == []

    # probing changed nothing: the camped transfer still commits cleanly
    cluster.run()
    assert cluster.obs.auditor.findings == []
    after = inspector.probe_once()
    assert after["waits_for"] == []
    assert after["overall"] == HEALTHY


def test_probe_tolerates_default_queue_threshold():
    cluster = _contended_cluster()
    inspector = cluster.attach_introspection(interval=0)
    cluster.run(until=10.0)
    snapshot = inspector.probe_once()
    # one queued waiter is normal traffic under the default threshold
    assert snapshot["health"]["n1"]["verdict"] == HEALTHY
    assert snapshot["servers"]["n1"]["locks"]["queued"] == 1
    cluster.run()
    assert cluster.obs.auditor.findings == []
    assert inspector.drift == []


# -- periodic probing under faults stays non-disruptive ------------------------


def test_periodic_probing_under_lossy_network_leaves_auditor_clean():
    from repro.cluster.network import NetworkConfig

    cluster = Cluster(seed=11,
                      config=NetworkConfig(drop_probability=0.10,
                                           duplicate_probability=0.05))
    for name in ("alpha", "beta", "gamma"):
        cluster.add_node(name)
    client = cluster.client("beta")
    inspector = cluster.attach_introspection(interval=6.0)
    refs = {}
    stats = {"committed": 0, "failed": 0}

    def setup():
        refs["A"] = yield from client.create("beta", "account", balance=60)
        refs["B"] = yield from client.create("gamma", "account", balance=0)

    cluster.run_process("beta", setup())

    def workload():
        for index in range(5):
            action = client.top_level(f"xfer{index}")
            try:
                yield from client.invoke(action, refs["A"], "withdraw", 10)
                yield from client.invoke(action, refs["B"], "deposit", 10)
                yield from client.commit(action)
                stats["committed"] += 1
            except Exception:
                stats["failed"] += 1
                if not action.status.terminated:
                    yield from client.abort(action)
            yield Timeout(4.0)

    cluster.run_process("beta", workload())
    cluster.run(until=cluster.kernel.now + 60.0)

    assert cluster.obs.auditor.findings == []
    assert inspector.probes >= 5
    assert inspector.snapshots
    balances = {}

    def audit_balances():
        action = client.top_level("balance-audit")
        for key in ("A", "B"):
            balances[key] = yield from client.invoke(
                action, refs[key], "read_balance")
        yield from client.commit(action)

    cluster.run_process("beta", audit_balances())
    assert balances["A"] + balances["B"] == 60
    assert balances["B"] == 10 * stats["committed"]


# -- snapshot ring, dump embedding, operator console ---------------------------


def test_snapshot_ring_is_capped_and_probe_count_keeps_growing():
    cluster = Cluster(seed=1)
    cluster.add_node("solo")
    inspector = cluster.attach_introspection(interval=0, max_snapshots=3)
    for _ in range(5):
        inspector.probe_once()
    assert inspector.probes == 5
    assert len(inspector.snapshots) == 3
    ticks = [s["tick"] for s in inspector.snapshots]
    assert ticks == sorted(ticks)
    assert inspector.dump()["probes"] == 5
    assert len(inspector.dump()["snapshots"]) == 3


def test_introspection_rides_in_obs_dump_and_top_replays_it(tmp_path, capsys):
    out = run_demo(seed=2, arm="fault-free", interval=0)
    cluster, inspector = out["cluster"], out["inspector"]
    path = tmp_path / "demo.trace.json"
    cluster.obs.save(str(path))

    document = json.loads(path.read_text())
    embedded = document["extra"]["introspection"]
    assert embedded["probes"] == inspector.probes
    assert embedded["overall"] == HEALTHY
    assert embedded["snapshots"][-1]["tick"] == inspector.last["tick"]

    assert top_main([str(path), "--snapshot"]) == 0
    text = capsys.readouterr().out
    for name in ("alpha", "beta", "gamma"):
        assert name in text

    # --snapshot --json prints the latest frame; --json alone, the whole doc
    assert top_main([str(path), "--snapshot", "--json"]) == 0
    frame = json.loads(capsys.readouterr().out)
    assert frame["tick"] == inspector.last["tick"]
    assert frame["overall"] == HEALTHY

    assert top_main([str(path), "--json"]) == 0
    replayed = json.loads(capsys.readouterr().out)
    assert replayed["probes"] == inspector.probes
    assert replayed["snapshots"][-1]["overall"] == HEALTHY


def test_render_covers_drift_and_unreachable_rows():
    out = run_demo(seed=0, arm="restart", interval=0)
    inspector = out["inspector"]
    drifted = next(s for s in inspector.snapshots if s["drift"])
    lines = render_snapshot(drifted)
    joined = "\n".join(lines)
    assert "DRIFT" in joined
    assert EPOCH_DRIFT in joined
    down = next(s for s in inspector.snapshots
                if s["servers"]["gamma"] is None)
    joined = "\n".join(render_snapshot(down))
    assert "unreachable" in joined
    assert "\n".join(render_drift([d.to_dict() for d in inspector.drift]))


def test_demo_rejects_unknown_arm():
    with pytest.raises(ValueError):
        run_demo(arm="meteor")
