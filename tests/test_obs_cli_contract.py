"""The exit-code contract every obs CLI honours, asserted in one place.

All seven consoles — ``report``, ``audit``, ``perf``, ``why``, ``top``,
``slo`` and ``soak`` — speak the same language to CI and shell scripts:

* **0** — input understood, nothing demands attention;
* **1** — unusable input (missing file, malformed JSON, wrong shape);
* **2** — input understood and something *does* demand attention
  (auditor findings, a gated perf regression, attribution gaps,
  introspection drift / a stalled server).

Each case builds the smallest artifact that drives one CLI to one code.
This file replaces the per-CLI exit-code one-offs that used to live in
``test_obs_audit`` / ``test_obs_postmortem`` / ``test_obs_perf`` /
``test_obs_export``; CLI-specific *content* assertions stay with their
suites.
"""

import json

import pytest

from repro.obs import Observability
from repro.obs.audit.__main__ import main as audit_main
from repro.obs.perf.__main__ import main as perf_main
from repro.obs.report import main as report_main
from repro.obs.slo.__main__ import main as slo_main
from repro.obs.soak.__main__ import main as soak_main
from repro.obs.top import main as top_main
from repro.obs.why import main as why_main
from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Counter


def _save_run(tmp_path, name, violate=False):
    """A real (tiny) observed run, optionally with a 2PL violation."""
    runtime = LocalRuntime()
    hub = Observability()
    runtime.attach_observability(hub)
    with runtime.top_level(name="t") as action:
        counter = Counter(runtime, value=0)
        counter.increment(1)
        if violate:
            runtime.locks.release_action(action.uid)
            counter.increment(1)
    path = tmp_path / name
    hub.save(str(path))
    return str(path)


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


def _gapped_dump(tmp_path):
    """One abort whose cause the postmortem taxonomy cannot place."""
    events = [
        ("action.begin", {"action": "a1", "name": "a1", "parent": "",
                          "colours": "c", "node": "local"}),
        ("action.failure", {"action": "a1", "cause": "meteor-strike",
                            "op": "op"}),
        ("action.end", {"action": "a1", "name": "a1", "outcome": "aborted",
                        "colours": "c", "node": "local"}),
    ]
    return _write(tmp_path, "gapped.json", {
        "format": "repro-obs/1", "spans": [], "metrics": {"counters": []},
        "events": [{"tick": float(i), "kind": kind, "labels": labels}
                   for i, (kind, labels) in enumerate(events)],
    })


def _introspection_dump(tmp_path, name, drift):
    """An obs dump carrying a minimal embedded introspection section."""
    snapshot = {
        "tick": 10.0, "overall": "degraded" if drift else "healthy",
        "servers": {"n1": None}, "waits_for": [],
        "health": {"n1": {"verdict": "degraded" if drift else "healthy",
                          "causes": ["drift"] if drift else []}},
        "drift": list(drift),
        "coordinator": {"clients": 1, "live_actions": 0,
                        "txns_tracked": 0, "reaper_backlog": {}},
    }
    return _write(tmp_path, name, {
        "extra": {"introspection": {
            "probes": 1, "drift": list(drift), "snapshots": [snapshot],
            "overall": snapshot["overall"],
        }},
    })


def _bench(tmp_path, sub, metrics):
    root = tmp_path / sub
    root.mkdir(exist_ok=True)
    (root / "BENCH_s.json").write_text(json.dumps(
        {"scenario": "s", "metrics": metrics}))
    return str(root)


_DRIFT = [{"kind": "epoch-drift", "node": "n1", "tick": 10.0,
           "message": "server n1 reports epoch 2 but live action a1 "
                      "first met it at epoch 1"}]


def _report_argv(tmp_path, code):
    if code == 0:
        return [_save_run(tmp_path, "clean.json")]
    if code == 1:
        return [str(tmp_path / "missing.json")]
    return [_save_run(tmp_path, "red.json", violate=True)]


def _audit_argv(tmp_path, code):
    if code == 0:
        return [_save_run(tmp_path, "clean.json")]
    if code == 1:
        return [_write(tmp_path, "bare.json", {"metrics": {}})]
    return [_save_run(tmp_path, "red.json", violate=True)]


def _perf_argv(tmp_path, code):
    if code == 1:
        empty = tmp_path / "empty"
        empty.mkdir(exist_ok=True)
        return ["compare", "--baseline", str(empty), "--current", str(empty)]
    baseline = _bench(tmp_path, "base", {"x": 10.0})
    current = _bench(tmp_path, "run", {"x": 10.2 if code == 0 else 20.0})
    return ["compare", "--baseline", baseline, "--current", current]


def _why_argv(tmp_path, code):
    if code == 0:
        return [_save_run(tmp_path, "clean.json"), "--aborts"]
    if code == 1:
        return [_write(tmp_path, "list.json", [1, 2])]
    return [_gapped_dump(tmp_path), "--aborts"]


def _top_argv(tmp_path, code):
    if code == 0:
        return [_introspection_dump(tmp_path, "healthy.json", drift=[])]
    if code == 1:
        return [_write(tmp_path, "list.json", [1, 2])]
    return [_introspection_dump(tmp_path, "drifted.json", drift=_DRIFT)]


def _slo_argv(tmp_path, code):
    if code == 0:
        return [_write(tmp_path, "green.json",
                       {"extra": {"slo": {"breaches": []}}})]
    if code == 1:
        return [str(tmp_path / "missing.json")]
    return [_write(tmp_path, "breached.json", {"extra": {"slo": {
        "breaches": [{"objective": "commit-latency", "start_tick": 10.0,
                      "end_tick": 40.0, "peak_burn": 3.0}]}}})]


def _soak_argv(tmp_path, code):
    # 0/2 run real (tiny) soak arms in memory; 1 is unusable input
    if code == 0:
        return ["--arm", "clean", "--horizon", "240",
                "--segment-every", "80", "--interval", "10", "--no-rotate"]
    if code == 1:
        return ["--arm", "chaotic-neutral"]
    return ["--arm", "faulty", "--horizon", "600",
            "--segment-every", "200", "--interval", "10", "--no-rotate",
            "--burst-start", "150", "--burst-duration", "200",
            "--surge", "12"]


_CLIS = {
    "report": (report_main, _report_argv),
    "audit": (audit_main, _audit_argv),
    "perf": (perf_main, _perf_argv),
    "why": (why_main, _why_argv),
    "top": (top_main, _top_argv),
    "slo": (slo_main, _slo_argv),
    "soak": (soak_main, _soak_argv),
}


@pytest.mark.parametrize("code", [0, 1, 2])
@pytest.mark.parametrize("cli", sorted(_CLIS))
def test_obs_cli_exit_code_contract(cli, code, tmp_path, capsys):
    main, argv_for = _CLIS[cli]
    assert main(argv_for(tmp_path, code)) == code
    captured = capsys.readouterr()
    if code == 1:
        # operational errors go to stderr, never a traceback to stdout
        assert captured.err
        assert "Traceback" not in captured.err


def test_top_module_shim_is_the_same_program():
    from repro.obs.introspect import __main__ as introspect_main

    assert top_main is introspect_main.main
