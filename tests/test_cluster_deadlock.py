"""Distributed deadlock detection: edge-chasing probes across servers."""

from repro.cluster.cluster import Cluster
from repro.errors import DeadlockDetected, LockTimeout
from repro.sim.kernel import Timeout


def make_cluster(edge_chasing=True, lock_wait_timeout=600.0):
    """Long wait timeout so only the probes (not the backstop) can break
    cycles within the test horizon."""
    cluster = Cluster(seed=0, edge_chasing=edge_chasing,
                      lock_wait_timeout=lock_wait_timeout,
                      probe_interval=3.0)
    for name in ("home1", "home2", "s1", "s2"):
        cluster.add_node(name)
    return cluster


def cross_server_deadlock(cluster, results):
    """Client 1 (home1): lock obj1@s1 then obj2@s2.
    Client 2 (home2): lock obj2@s2 then obj1@s1 — a 2-cycle across servers."""
    c1 = cluster.client("home1", "c1")
    c2 = cluster.client("home2", "c2")
    refs = {}

    def setup():
        refs["obj1"] = yield from c1.create("s1", "counter", value=0)
        refs["obj2"] = yield from c1.create("s2", "counter", value=0)

    def worker(client, label, first, second):
        action = client.top_level(label)
        try:
            yield from client.invoke(action, refs[first], "increment", 1)
            yield Timeout(5.0)  # ensure both hold their first lock
            yield from client.invoke(action, refs[second], "increment", 1)
            yield from client.commit(action)
            results[label] = "committed"
        except (DeadlockDetected, LockTimeout) as error:
            results[label] = type(error).__name__
            if not action.status.terminated:
                yield from client.abort(action)

    cluster.run_process("home1", setup())
    h1 = cluster.spawn("home1", worker(c1, "t1", "obj1", "obj2"))
    h2 = cluster.spawn("home2", worker(c2, "t2", "obj2", "obj1"))
    return h1, h2, refs


def test_edge_chasing_breaks_cross_server_cycle():
    cluster = make_cluster(edge_chasing=True)
    results = {}
    h1, h2, refs = cross_server_deadlock(cluster, results)
    cluster.run(until=400)
    assert not h1.alive and not h2.alive
    outcomes = sorted(results.values())
    # exactly one victim (the youngest), and the survivor commits — within
    # the 400-unit horizon, far inside the 600-unit timeout backstop.
    assert outcomes == ["DeadlockDetected", "committed"]
    chasers = [s.edge_chaser for s in cluster.servers.values()]
    assert sum(c.cycles_detected for c in chasers) >= 1


def test_without_edge_chasing_only_timeout_breaks_it():
    """The contrast: with only the timeout backstop, *both* symmetric
    waiters expire — the blunt instrument cannot pick a single victim, so
    the whole episode's work is lost (this is why the probes exist)."""
    cluster = make_cluster(edge_chasing=False, lock_wait_timeout=50.0)
    results = {}
    h1, h2, refs = cross_server_deadlock(cluster, results)
    cluster.run(until=600)
    assert not h1.alive and not h2.alive
    outcomes = sorted(results.values())
    assert outcomes == ["LockTimeout", "LockTimeout"]


def test_probes_do_not_disturb_contention_without_cycle():
    """Plain contention (no cycle): the waiter gets the lock when the
    holder commits; nobody is aborted by a probe."""
    cluster = make_cluster(edge_chasing=True)
    c1 = cluster.client("home1", "c1")
    c2 = cluster.client("home2", "c2")
    results = {}
    refs = {}

    def setup():
        refs["obj"] = yield from c1.create("s1", "counter", value=0)

    def holder():
        action = c1.top_level("holder")
        yield from c1.invoke(action, refs["obj"], "increment", 1)
        yield Timeout(30.0)
        yield from c1.commit(action)
        results["holder"] = "committed"

    def waiter():
        yield Timeout(5.0)
        action = c2.top_level("waiter")
        yield from c2.invoke(action, refs["obj"], "increment", 10)
        yield from c2.commit(action)
        results["waiter"] = "committed"

    cluster.run_process("home1", setup())
    cluster.spawn("home1", holder())
    cluster.spawn("home2", waiter())
    cluster.run(until=300)
    assert results == {"holder": "committed", "waiter": "committed"}


def test_three_party_cycle_detected():
    """A 3-cycle across three servers and three homes."""
    cluster = Cluster(seed=0, edge_chasing=True, lock_wait_timeout=600.0,
                      probe_interval=3.0)
    for name in ("h1", "h2", "h3", "sA", "sB", "sC"):
        cluster.add_node(name)
    clients = {f"t{i}": cluster.client(f"h{i}", f"c{i}") for i in (1, 2, 3)}
    refs = {}
    results = {}

    def setup():
        bootstrap = cluster.client("h1", "setup")
        refs["A"] = yield from bootstrap.create("sA", "counter", value=0)
        refs["B"] = yield from bootstrap.create("sB", "counter", value=0)
        refs["C"] = yield from bootstrap.create("sC", "counter", value=0)

    def worker(label, client, first, second):
        action = client.top_level(label)
        try:
            yield from client.invoke(action, refs[first], "increment", 1)
            yield Timeout(5.0)
            yield from client.invoke(action, refs[second], "increment", 1)
            yield from client.commit(action)
            results[label] = "committed"
        except (DeadlockDetected, LockTimeout) as error:
            results[label] = type(error).__name__
            if not action.status.terminated:
                yield from client.abort(action)

    cluster.run_process("h1", setup())
    cluster.spawn("h1", worker("t1", clients["t1"], "A", "B"))
    cluster.spawn("h2", worker("t2", clients["t2"], "B", "C"))
    cluster.spawn("h3", worker("t3", clients["t3"], "C", "A"))
    cluster.run(until=500)
    outcomes = sorted(results.values())
    assert outcomes.count("committed") >= 1
    assert "DeadlockDetected" in outcomes
    assert len(results) == 3  # nobody left hanging