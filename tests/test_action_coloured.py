"""Multi-coloured action semantics: figs. 10, 14, 15 and §5.1 properties."""

import pytest

from repro.errors import LockTimeout
from repro.locking.modes import LockMode
from repro.stdobjects import Counter


def test_fig10_red_permanent_blue_undone(runtime):
    """B {red,blue} inside A {blue}: at B's commit red effects are permanent
    and red locks released; blue effects/locks are retained by A and undone
    when A aborts."""
    red, blue = runtime.colours.fresh("red"), runtime.colours.fresh("blue")
    o_red = Counter(runtime, value=1)
    o_blue = Counter(runtime, value=2)
    with pytest.raises(RuntimeError):
        with runtime.coloured([blue], name="A") as a:
            with runtime.coloured([red, blue], name="B") as b:
                o_red.increment(10, colour=red, action=b)
                o_blue.increment(20, colour=blue, action=b)
            # after B's commit:
            assert not runtime.locks.holds(a.uid, o_red.uid, LockMode.READ)   # red released
            assert runtime.locks.holds(a.uid, o_blue.uid, LockMode.WRITE)     # blue retained
            stored_red = runtime.store.read_committed(o_red.uid)
            assert stored_red.payload == o_red.snapshot()                     # red permanent
            raise RuntimeError("A aborts")
    assert o_red.value == 11   # survives
    assert o_blue.value == 2   # undone


def test_fig10_commit_path_makes_blue_permanent_at_a(runtime):
    red, blue = runtime.colours.fresh("red"), runtime.colours.fresh("blue")
    o_red, o_blue = Counter(runtime, value=1), Counter(runtime, value=2)
    with runtime.coloured([blue], name="A"):
        with runtime.coloured([red, blue], name="B") as b:
            o_red.increment(10, colour=red, action=b)
            o_blue.increment(20, colour=blue, action=b)
    assert o_blue.value == 22
    assert runtime.store.read_committed(o_blue.uid).payload == o_blue.snapshot()


def test_commit_routing_skips_to_closest_coloured_ancestor(runtime):
    """Colour routing ignores intermediates without the colour."""
    red, blue = runtime.colours.fresh("red"), runtime.colours.fresh("blue")
    counter = Counter(runtime, value=0)
    with pytest.raises(RuntimeError):
        with runtime.coloured([blue], name="grandparent") as gp:
            with runtime.coloured([red], name="parent") as p:
                with runtime.coloured([blue], name="child") as c:
                    counter.increment(5, colour=blue, action=c)
                # child's blue goes past red parent to blue grandparent
                assert runtime.locks.holds(gp.uid, counter.uid, LockMode.WRITE)
                assert not runtime.locks.holds(p.uid, counter.uid, LockMode.READ)
                runtime.commit_action(p)
            raise RuntimeError("grandparent aborts")
    assert counter.value == 0  # undone by the blue ancestor's abort


def test_fig14_15_nlevel_scheme_explicit_colours(runtime):
    """The full fig. 15 colouring: C, F survive anything; E survives B's
    abort but falls with A; D falls with B (via A's red)."""
    red = runtime.colours.fresh("red")
    blue = runtime.colours.fresh("blue")
    green = runtime.colours.fresh("green")
    oc = Counter(runtime, value=0)   # written by C (green)
    od = Counter(runtime, value=0)   # written by D (red)
    oe = Counter(runtime, value=0)   # written by E (blue)
    of = Counter(runtime, value=0)   # written by F (green)

    with pytest.raises(RuntimeError):
        with runtime.coloured([red, blue], name="A") as a:
            with runtime.coloured([green], parent=a, name="C") as c:
                oc.increment(1, action=c)
            with runtime.coloured([red], parent=a, name="B") as b:
                with runtime.coloured([red], parent=b, name="D") as d:
                    od.increment(1, action=d)
                with runtime.coloured([blue], parent=b, name="E") as e:
                    oe.increment(1, action=e)
                with runtime.coloured([green], parent=b, name="F") as f:
                    of.increment(1, action=f)
            raise RuntimeError("A aborts")
    assert oc.value == 1   # C: top-level independent, survives
    assert of.value == 1   # F: top-level independent, survives
    assert od.value == 0   # D: red, undone via B -> A
    assert oe.value == 0   # E: blue anchored at A, undone by A's abort


def test_fig14_e_survives_b_abort(runtime):
    """Second-level independence: B aborts after invoking E; E's effects stay
    (pending A's fate)."""
    red = runtime.colours.fresh("red")
    blue = runtime.colours.fresh("blue")
    oe = Counter(runtime, value=0)
    with runtime.coloured([red, blue], name="A") as a:
        with pytest.raises(RuntimeError):
            with runtime.coloured([red], parent=a, name="B") as b:
                with runtime.coloured([blue], parent=b, name="E") as e:
                    oe.increment(1, action=e)
                raise RuntimeError("B aborts after invoking E")
        assert oe.value == 1           # E not undone by B
        assert runtime.locks.holds(a.uid, oe.uid, LockMode.WRITE)  # A owns E's fate
    assert oe.value == 1               # A committed


def test_write_responsibility_single_coloured(runtime):
    """An action cannot WRITE-lock in colour b over its own write in colour a.

    The request is contention (the red lock might be released later), so it
    waits rather than being refused — here it times out.
    """
    red, blue = runtime.colours.fresh("red"), runtime.colours.fresh("blue")
    counter = Counter(runtime, value=0)
    with runtime.coloured([red, blue], name="X") as x:
        counter.increment(1, colour=red, action=x)
        with pytest.raises(LockTimeout):
            runtime.acquire(x, counter, LockMode.WRITE, colour=blue, timeout=0.1)
        runtime.abort_action(x)


def test_sequential_same_colour_writes_responsibility_chain(runtime):
    """B writes under red, commits to A; C then writes under red; C's abort
    restores B's committed value, and A's abort restores the original."""
    red = runtime.colours.fresh("red")
    counter = Counter(runtime, value=0)
    with pytest.raises(RuntimeError):
        with runtime.coloured([red], name="A") as a:
            with runtime.coloured([red], parent=a, name="B") as b:
                counter.increment(5, action=b)
            with pytest.raises(ValueError):
                with runtime.coloured([red], parent=a, name="C") as c:
                    counter.increment(100, action=c)
                    raise ValueError("C aborts")
            assert counter.value == 5   # C undone to B's state
            raise RuntimeError("A aborts")
    assert counter.value == 0


def test_single_colour_everything_reduces_to_atomic(runtime):
    """§5.1: one colour everywhere behaves as conventional nesting."""
    colour = runtime.colours.fresh("only")
    counter = Counter(runtime, value=0)
    with pytest.raises(RuntimeError):
        with runtime.coloured([colour], name="A") as a:
            with runtime.coloured([colour], parent=a, name="B") as b:
                counter.increment(42, action=b)
            raise RuntimeError("A aborts")
    assert counter.value == 0


def test_independent_child_detached_on_parent_abort(runtime):
    """A colour-disjoint (independent) child survives its parent's abort."""
    red, blue = runtime.colours.fresh("red"), runtime.colours.fresh("blue")
    counter = Counter(runtime, value=0)
    with runtime.coloured([red], name="A") as a:
        child = runtime.coloured([blue], parent=a, name="indep")
        b = child.__enter__()
        runtime.abort_action(a)
        assert b.status.value == "active"   # not killed
        counter.increment(9, action=b)
        child.__exit__(None, None, None)
    assert counter.value == 9


def test_shared_colour_child_aborted_with_parent(runtime):
    red = runtime.colours.fresh("red")
    counter = Counter(runtime, value=0)
    with runtime.coloured([red], name="A") as a:
        child_scope = runtime.coloured([red], parent=a, name="child")
        child = child_scope.__enter__()
        counter.increment(3, action=child)
        runtime.abort_action(a)
        assert child.status.value == "aborted"
        child_scope.__exit__(None, None, None)
    assert counter.value == 0
