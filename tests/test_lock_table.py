"""LockTable: grants, FIFO queueing, upgrades, commit routing, releases."""

from repro.colours.colour import Colour
from repro.locking.modes import LockMode
from repro.locking.owner import StubOwner
from repro.locking.request import LockRequest, RequestStatus
from repro.locking.rules import ColouredRules
from repro.locking.table import LockTable
from repro.util.uid import UidGenerator

auids = UidGenerator("a")
cuids = UidGenerator("colour")
ouids = UidGenerator("obj")
ruids = UidGenerator("req")

RED = Colour(cuids.fresh(), "red")
BLUE = Colour(cuids.fresh(), "blue")


def owner(path_owners=(), colours=(RED, BLUE)):
    uid = auids.fresh()
    path = tuple(p.uid for p in path_owners) + (uid,)
    return StubOwner(uid=uid, path=path, colours=frozenset(colours))


def make_request(req_owner, mode, colour=RED):
    return LockRequest(ruids.fresh(), req_owner, ouids.fresh(), mode, colour)


def fresh_table():
    return LockTable(ouids.fresh(), ColouredRules())


def test_grant_on_unlocked_object():
    table = fresh_table()
    req = make_request(owner(), LockMode.WRITE)
    table.request(req)
    assert req.status is RequestStatus.GRANTED
    assert len(table.holders) == 1


def test_conflicting_request_queues():
    table = fresh_table()
    table.request(make_request(owner(), LockMode.WRITE))
    blocked = make_request(owner(), LockMode.WRITE)
    table.request(blocked)
    assert blocked.status is RequestStatus.PENDING
    assert len(table.queue) == 1


def test_release_wakes_fifo_in_order():
    table = fresh_table()
    first = owner()
    req = make_request(first, LockMode.WRITE)
    table.request(req)
    waiters = [make_request(owner(), LockMode.WRITE) for _ in range(3)]
    for waiter in waiters:
        table.request(waiter)
    table.release_all(first.uid)
    # only the front writer is granted; the rest stay FIFO
    assert waiters[0].status is RequestStatus.GRANTED
    assert waiters[1].status is RequestStatus.PENDING


def test_readers_granted_together_on_release():
    table = fresh_table()
    writer = owner()
    table.request(make_request(writer, LockMode.WRITE))
    readers = [make_request(owner(), LockMode.READ) for _ in range(3)]
    for reader in readers:
        table.request(reader)
    table.release_all(writer.uid)
    assert all(r.status is RequestStatus.GRANTED for r in readers)


def test_strict_fifo_no_reader_overtaking():
    """A read compatible with holders still queues behind an earlier writer."""
    table = fresh_table()
    reader_holder = owner()
    table.request(make_request(reader_holder, LockMode.READ))
    blocked_writer = make_request(owner(), LockMode.WRITE)
    table.request(blocked_writer)
    late_reader = make_request(owner(), LockMode.READ)
    table.request(late_reader)
    assert late_reader.status is RequestStatus.PENDING


def test_holder_upgrade_jumps_queue_when_rules_allow():
    """An existing holder's upgrade is a continuation, not a new access."""
    table = fresh_table()
    holder = owner()
    table.request(make_request(holder, LockMode.READ))
    stranger_write = make_request(owner(), LockMode.WRITE)
    table.request(stranger_write)  # queues behind holder's READ
    upgrade = make_request(holder, LockMode.WRITE)
    table.request(upgrade)
    assert upgrade.status is RequestStatus.GRANTED
    records = table.records_of(holder.uid)
    assert len(records) == 1 and records[0].mode is LockMode.WRITE


def test_idempotent_reacquisition_granted_without_new_record():
    table = fresh_table()
    holder = owner()
    table.request(make_request(holder, LockMode.WRITE))
    again = make_request(holder, LockMode.READ)  # weaker, same colour
    table.request(again)
    assert again.status is RequestStatus.GRANTED
    assert len(table.records_of(holder.uid)) == 1


def test_same_owner_different_colours_two_records():
    table = fresh_table()
    holder = owner(colours=(RED, BLUE))
    r1 = make_request(holder, LockMode.WRITE, colour=RED)
    table.request(r1)
    r2 = make_request(holder, LockMode.EXCLUSIVE_READ, colour=BLUE)
    table.request(r2)
    assert r2.status is RequestStatus.GRANTED
    assert len(table.records_of(holder.uid)) == 2


def test_rule_violation_refused_not_queued():
    table = fresh_table()
    req = make_request(owner(colours=(RED,)), LockMode.WRITE, colour=BLUE)
    table.request(req)
    assert req.status is RequestStatus.REFUSED
    assert not table.queue


def test_cancel_removes_from_queue_and_wakes():
    table = fresh_table()
    holder = owner()
    table.request(make_request(holder, LockMode.WRITE))
    doomed = make_request(owner(), LockMode.WRITE)
    table.request(doomed)
    behind = make_request(owner(), LockMode.READ)
    table.request(behind)
    assert table.cancel(doomed.request_uid)
    assert doomed.status is RequestStatus.CANCELLED
    table.release_all(holder.uid)
    assert behind.status is RequestStatus.GRANTED


def test_cancel_owner_cancels_all_their_requests():
    table = fresh_table()
    table.request(make_request(owner(), LockMode.WRITE))
    victim = owner()
    reqs = [make_request(victim, LockMode.WRITE) for _ in range(2)]
    for req in reqs:
        table.request(req)
    assert table.cancel_owner(victim.uid, "abort") == 2
    assert all(r.status is RequestStatus.CANCELLED for r in reqs)


def test_transfer_routes_by_colour():
    """Commit: red released (outermost), blue inherited by the ancestor.

    The fig. 11 pattern: WRITE in the data colour plus EXCLUSIVE_READ in
    the control colour (a second WRITE in another colour would rightly be
    refused — write responsibility must be single-coloured).
    """
    table = fresh_table()
    parent = owner(colours=(BLUE,))
    child = owner(path_owners=(parent,), colours=(RED, BLUE))
    table.request(make_request(child, LockMode.WRITE, colour=RED))
    table.request(make_request(child, LockMode.EXCLUSIVE_READ, colour=BLUE))

    def router(colour):
        return parent if colour == BLUE else None

    routed = table.transfer(child.uid, router)
    assert routed == {RED: None, BLUE: parent.uid}
    assert not table.records_of(child.uid)
    parent_records = table.records_of(parent.uid)
    assert len(parent_records) == 1 and parent_records[0].colour == BLUE


def test_transfer_merges_with_parent_keeping_stronger_mode():
    table = fresh_table()
    parent = owner(colours=(BLUE,))
    child = owner(path_owners=(parent,), colours=(BLUE,))
    table.request(make_request(parent, LockMode.READ, colour=BLUE))
    table.request(make_request(child, LockMode.WRITE, colour=BLUE))
    table.transfer(child.uid, lambda colour: parent)
    records = table.records_of(parent.uid)
    assert len(records) == 1 and records[0].mode is LockMode.WRITE


def test_transfer_wakes_waiters_for_released_colour():
    table = fresh_table()
    child = owner(colours=(RED,))
    table.request(make_request(child, LockMode.WRITE, colour=RED))
    waiter = make_request(owner(), LockMode.WRITE, colour=RED)
    table.request(waiter)
    table.transfer(child.uid, lambda colour: None)  # outermost: release
    assert waiter.status is RequestStatus.GRANTED


def test_abort_release_keeps_ancestor_locks():
    table = fresh_table()
    parent = owner(colours=(RED,))
    child = owner(path_owners=(parent,), colours=(RED,))
    table.request(make_request(parent, LockMode.WRITE, colour=RED))
    table.request(make_request(child, LockMode.WRITE, colour=RED))
    table.release_all(child.uid)
    assert table.records_of(parent.uid)
    stranger = make_request(owner(), LockMode.WRITE, colour=RED)
    table.request(stranger)
    assert stranger.status is RequestStatus.PENDING  # parent still holds


def test_blocked_on_lists_blockers_and_queue_predecessors():
    table = fresh_table()
    holder = owner()
    table.request(make_request(holder, LockMode.WRITE))
    first = make_request(owner(), LockMode.WRITE)
    second = make_request(owner(), LockMode.WRITE)
    table.request(first)
    table.request(second)
    assert table.blocked_on(first) == [holder.uid]
    assert set(table.blocked_on(second)) == {holder.uid, first.owner.uid}


def test_is_idle_after_full_release():
    table = fresh_table()
    holder = owner()
    table.request(make_request(holder, LockMode.WRITE))
    table.release_all(holder.uid)
    assert table.is_idle()
