"""Simulated network: delivery, faults, partitions, payload isolation."""

import pytest

from repro.cluster.message import Message
from repro.cluster.network import Network, NetworkConfig
from repro.errors import ClusterError
from repro.sim.kernel import Kernel
from repro.util.rng import SplitRandom


def make_network(config=None, seed=0):
    kernel = Kernel()
    network = Network(kernel, SplitRandom(seed), config)
    return kernel, network


def attach_sink(network, name):
    inbox = []
    network.attach(name, inbox.append)
    return inbox


def test_message_delivered_within_delay_bounds():
    kernel, network = make_network(NetworkConfig(min_delay=1.0, max_delay=3.0))
    inbox = attach_sink(network, "b")
    network.attach("a", lambda m: None)
    network.send(Message("a", "b", "ping", {}, msg_id=1))
    kernel.run()
    assert len(inbox) == 1
    assert 1.0 <= kernel.now <= 3.0


def test_send_to_unknown_endpoint_raises():
    _, network = make_network()
    network.attach("a", lambda m: None)
    with pytest.raises(ClusterError):
        network.send(Message("a", "ghost", "ping", {}))


def test_down_endpoint_drops_silently():
    kernel, network = make_network()
    inbox = attach_sink(network, "b")
    network.attach("a", lambda m: None)
    network.set_up("b", False)
    network.send(Message("a", "b", "ping", {}))
    kernel.run()
    assert inbox == []
    assert network.dropped_count == 1


def test_crash_during_flight_loses_message():
    """Reachability is evaluated at delivery time."""
    kernel, network = make_network(NetworkConfig(min_delay=5.0, max_delay=5.0))
    inbox = attach_sink(network, "b")
    network.attach("a", lambda m: None)
    network.send(Message("a", "b", "ping", {}))
    kernel.schedule(1.0, lambda: network.set_up("b", False))
    kernel.run()
    assert inbox == []


def test_partition_blocks_both_directions_until_healed():
    kernel, network = make_network()
    inbox_a = attach_sink(network, "a")
    inbox_b = attach_sink(network, "b")
    network.partition("a", "b")
    network.send(Message("a", "b", "x", {}))
    network.send(Message("b", "a", "y", {}))
    kernel.run()
    assert inbox_a == [] and inbox_b == []
    network.heal("a", "b")
    network.send(Message("a", "b", "x", {}))
    kernel.run()
    assert len(inbox_b) == 1


def test_drop_probability_loses_some_messages():
    kernel, network = make_network(NetworkConfig(drop_probability=0.5), seed=3)
    inbox = attach_sink(network, "b")
    network.attach("a", lambda m: None)
    for i in range(200):
        network.send(Message("a", "b", "ping", {"i": i}))
    kernel.run()
    assert 0 < len(inbox) < 200
    assert network.dropped_count == 200 - len(inbox)


def test_duplicate_probability_duplicates_some_messages():
    kernel, network = make_network(NetworkConfig(duplicate_probability=0.5), seed=5)
    inbox = attach_sink(network, "b")
    network.attach("a", lambda m: None)
    for i in range(100):
        network.send(Message("a", "b", "ping", {"i": i}))
    kernel.run()
    assert len(inbox) > 100


def test_payload_deep_copied_at_send():
    """Mutating the payload after send must not affect the receiver."""
    kernel, network = make_network()
    inbox = attach_sink(network, "b")
    network.attach("a", lambda m: None)
    payload = {"xs": [1, 2]}
    network.send(Message("a", "b", "data", payload))
    payload["xs"].append(99)
    kernel.run()
    assert inbox[0].payload["xs"] == [1, 2]


def test_same_seed_same_fault_pattern():
    def run(seed):
        kernel, network = make_network(
            NetworkConfig(drop_probability=0.3, duplicate_probability=0.2), seed=seed
        )
        inbox = attach_sink(network, "b")
        network.attach("a", lambda m: None)
        for i in range(50):
            network.send(Message("a", "b", "ping", {"i": i}))
        kernel.run()
        return [m.payload["i"] for m in inbox]

    assert run(11) == run(11)
    assert run(11) != run(12)


def test_invalid_config_rejected():
    with pytest.raises(ClusterError):
        NetworkConfig(min_delay=2.0, max_delay=1.0).validate()
    with pytest.raises(ClusterError):
        NetworkConfig(drop_probability=1.5).validate()


def run_fault_pattern(config, seed=7, count=150):
    """Deliver ``count`` messages; return (dropped, duplicated) index sets."""
    kernel, network = make_network(config, seed=seed)
    inbox = attach_sink(network, "b")
    network.attach("a", lambda m: None)
    for i in range(count):
        network.send(Message("a", "b", "ping", {"i": i}))
    kernel.run()
    seen = {}
    for m in inbox:
        seen[m.payload["i"]] = seen.get(m.payload["i"], 0) + 1
    dropped = {i for i in range(count) if i not in seen}
    duplicated = {i for i, n in seen.items() if n == 2}
    return dropped, duplicated


def test_drop_decisions_independent_of_duplicate_knob():
    """The Nth message's drop fate depends only on (seed, N): turning
    duplication on must not reshuffle which messages get dropped."""
    dropped_plain, _ = run_fault_pattern(NetworkConfig(drop_probability=0.3))
    dropped_dup, _ = run_fault_pattern(
        NetworkConfig(drop_probability=0.3, duplicate_probability=0.5))
    assert dropped_plain == dropped_dup


def test_duplicate_decisions_independent_of_drop_knob():
    """Duplicate draws are consumed for every send — dropped or not — so
    the per-index duplicate pattern is fixed: under loss, the surviving
    duplicated messages are exactly the fixed pattern minus the drops."""
    _, dup_baseline = run_fault_pattern(
        NetworkConfig(duplicate_probability=0.4))
    dropped, dup_lossy = run_fault_pattern(
        NetworkConfig(drop_probability=0.3, duplicate_probability=0.4))
    assert dup_lossy == dup_baseline - dropped
