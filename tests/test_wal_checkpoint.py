"""Server write-ahead-log checkpointing.

Pinned to the classic protocol (``fast_paths=False``): the record-count
arithmetic below assumes one ``prepared`` + one ``committed`` record per
transaction on the participant.  Checkpointing of the fast paths'
``committed(delegated)`` records is covered in test_twopc_fastpath.py.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.message import encode_colour, encode_uid
from repro.objects.state import ObjectState


def make_cluster():
    cluster = Cluster(seed=0, fast_paths=False)
    for name in ("coord", "part"):
        cluster.add_node(name)
    return cluster


def run_transfers(cluster, client, count=4):
    refs = {}

    def app():
        refs["obj"] = yield from client.create("part", "counter", value=0)
        for index in range(count):
            action = client.top_level(f"t{index}")
            yield from client.invoke(action, refs["obj"], "increment", 1)
            yield from client.commit(action)

    cluster.run_process("coord", app())
    return refs["obj"]


def test_checkpoint_drops_decided_records():
    cluster = make_cluster()
    client = cluster.client("coord")
    run_transfers(cluster, client, count=4)
    part = cluster.servers["part"]
    before = len(part.node.wal)
    assert before >= 8  # 4 prepared + 4 committed
    stats = part.checkpoint()
    assert stats["dropped"] >= 8
    assert len(part.node.wal) <= 1 + 0 + 1  # checkpoint marker (+ slack)


def test_checkpoint_keeps_undecided_prepared():
    cluster = make_cluster()
    client = cluster.client("coord")
    ref = run_transfers(cluster, client, count=2)
    part = cluster.servers["part"]

    # drive an extra prepare with no decision
    def prepare_only():
        action = client.top_level("limbo")
        yield from client.invoke(action, ref, "increment", 5)
        yield from cluster.transports["coord"].call("part", "txn_prepare", {
            "txn_id": "txn:limbo",
            "action_uid": encode_uid(action.uid),
            "colour": encode_colour(next(iter(action.colours))),
            "object_uids": [encode_uid(ref.uid)],
            "expected_epoch": action.server_epochs.get("part"),
        })

    cluster.run_process("coord", prepare_only())
    part.checkpoint()
    kinds = [r.kind for r in part.node.wal.records()]
    assert "prepared" in kinds  # the in-doubt record survived
    # ... and recovery after a crash still sees it as in doubt
    cluster.crash("part")
    cluster.restart("part")
    assert ref.uid in part.in_doubt_objects


def test_checkpoint_keeps_unended_coordinator_decisions():
    cluster = make_cluster()
    client = cluster.client("coord")
    run_transfers(cluster, client, count=1)
    coord = cluster.servers["coord"]
    # simulate a decision whose participant never acked
    coord.node.wal.append("coord_commit", txn_id="txn:unacked")
    coord.checkpoint()
    surviving = [r.payload.get("txn_id") for r in
                 coord.node.wal.records("coord_commit")]
    assert "txn:unacked" in surviving
    # decisions with coord_end are gone
    assert all(txn == "txn:unacked" for txn in surviving)


def test_checkpoint_is_idempotent_and_recovery_safe():
    cluster = make_cluster()
    client = cluster.client("coord")
    ref = run_transfers(cluster, client, count=3)
    part = cluster.servers["part"]
    part.checkpoint()
    part.checkpoint()
    cluster.crash("part")
    cluster.restart("part")
    cluster.run(until=cluster.kernel.now + 100)
    assert part.in_doubt_objects == set()
    # the object still serves after restart with a truncated log
    def read():
        action = client.top_level("r")
        value = yield from client.invoke(action, ref, "get")
        yield from client.commit(action)
        return value

    assert cluster.run_process("coord", read()) == 3
