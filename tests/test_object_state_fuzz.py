"""Fuzzing ObjectState against malformed buffers.

Whatever bytes arrive (bit rot, truncation, adversarial input), unpacking
must either produce a value or raise :class:`CorruptState` — never hang,
never leak another exception type.  This is the property the commit
protocols rely on when activating states from logs and stores.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptState
from repro.objects.state import ObjectState


@settings(max_examples=300, deadline=None)
@given(st.binary(max_size=200))
def test_random_bytes_unpack_value_or_corrupt(payload):
    state = ObjectState.from_bytes(payload)
    try:
        while not state.exhausted:
            state.unpack_value()
    except CorruptState:
        pass


@settings(max_examples=200, deadline=None)
@given(st.binary(max_size=120), st.integers(0, 119), st.integers(0, 255))
def test_bit_flipped_valid_buffer_never_escapes(payload, position, new_byte):
    """Start from a VALID buffer, corrupt one byte: same guarantee."""
    state = ObjectState()
    state.pack_value({"xs": [1, 2.5, "three"], "flag": True, "blob": payload})
    buffer = bytearray(state.to_bytes())
    index = position % len(buffer)
    buffer[index] = new_byte
    corrupted = ObjectState.from_bytes(bytes(buffer))
    try:
        while not corrupted.exhausted:
            corrupted.unpack_value()
    except CorruptState:
        pass


@settings(max_examples=150, deadline=None)
@given(st.binary(max_size=80), st.integers(1, 79))
def test_truncation_never_escapes(payload, cut):
    state = ObjectState()
    state.pack_value([payload.decode("latin-1"), len(payload), None])
    buffer = state.to_bytes()
    truncated = ObjectState.from_bytes(buffer[:max(0, len(buffer) - cut)])
    try:
        while not truncated.exhausted:
            truncated.unpack_value()
    except CorruptState:
        pass


def test_typed_unpack_wrong_tag_is_corrupt_not_type_error():
    buffer = ObjectState().pack_string("hello").to_bytes()
    reader = ObjectState.from_bytes(buffer)
    with pytest.raises(CorruptState):
        reader.unpack_uid()
