"""The threaded local runtime under real concurrency."""

import threading

import pytest

from repro.errors import DeadlockDetected
from repro.locking.modes import LockMode
from repro.runtime.runtime import LocalRuntime
from repro.stdobjects import Account, Counter


def run_threads(workers):
    threads = [threading.Thread(target=w) for w in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    assert not any(t.is_alive() for t in threads), "worker thread hung"


def test_concurrent_increments_serialize():
    runtime = LocalRuntime()
    counter = Counter(runtime, value=0)
    per_thread, thread_count = 25, 4

    def worker():
        for _ in range(per_thread):
            with runtime.top_level():
                counter.increment(1)

    run_threads([worker] * thread_count)
    assert counter.value == per_thread * thread_count


def test_transfer_between_accounts_preserves_total():
    """Classic bank invariant under concurrent transfers with aborts."""
    runtime = LocalRuntime()
    accounts = [Account(runtime, f"acc{i}", balance=100) for i in range(4)]
    errors = []

    def worker(seed):
        import random
        rng = random.Random(seed)
        for _ in range(20):
            src, dst = rng.sample(range(4), 2)
            try:
                with runtime.top_level(name=f"xfer{seed}"):
                    accounts[src].withdraw(5)
                    accounts[dst].deposit(5)
                    if rng.random() < 0.3:
                        raise RuntimeError("change of mind")
            except (RuntimeError, DeadlockDetected):
                continue
            except Exception as error:  # noqa: BLE001
                errors.append(error)

    run_threads([lambda s=s: worker(s) for s in range(4)])
    assert errors == []
    assert sum(a.balance for a in accounts) == 400


def test_reader_blocks_until_writer_commits():
    runtime = LocalRuntime()
    counter = Counter(runtime, value=0)
    writer_holding = threading.Event()
    release_writer = threading.Event()
    observed = []

    def writer():
        with runtime.top_level(name="writer"):
            counter.increment(10)
            writer_holding.set()
            release_writer.wait(10)

    def reader():
        writer_holding.wait(10)
        with runtime.top_level(name="reader"):
            observed.append(counter.get())

    writer_thread = threading.Thread(target=writer)
    reader_thread = threading.Thread(target=reader)
    writer_thread.start()
    reader_thread.start()
    writer_holding.wait(10)
    assert observed == []         # reader still blocked
    release_writer.set()
    writer_thread.join(10)
    reader_thread.join(10)
    assert observed == [10]       # reader saw the committed value only


def test_aborted_writer_invisible_to_reader():
    runtime = LocalRuntime()
    counter = Counter(runtime, value=0)
    holding = threading.Event()
    release = threading.Event()
    observed = []

    def writer():
        try:
            with runtime.top_level(name="writer"):
                counter.increment(99)
                holding.set()
                release.wait(10)
                raise RuntimeError("abort")
        except RuntimeError:
            pass

    def reader():
        holding.wait(10)
        with runtime.top_level(name="reader"):
            observed.append(counter.get())

    threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
    for t in threads:
        t.start()
    holding.wait(10)
    release.set()
    for t in threads:
        t.join(10)
    assert observed == [0]


def test_cross_thread_deadlock_detected_and_victim_aborted():
    runtime = LocalRuntime()
    a = Counter(runtime, value=0)
    b = Counter(runtime, value=0)
    barrier = threading.Barrier(2, timeout=10)
    outcomes = []

    def worker(first, second, label):
        try:
            with runtime.top_level(name=label):
                first.increment(1)
                barrier.wait()
                second.increment(1)
            outcomes.append((label, "committed"))
        except DeadlockDetected:
            outcomes.append((label, "deadlock"))

    run_threads([
        lambda: worker(a, b, "t1"),
        lambda: worker(b, a, "t2"),
    ])
    results = dict(outcomes)
    assert sorted(results.values()) == ["committed", "deadlock"]


def test_victim_can_retry_and_succeed():
    runtime = LocalRuntime()
    a = Counter(runtime, value=0)
    b = Counter(runtime, value=0)
    barrier = threading.Barrier(2, timeout=10)
    done = []

    def worker(first, second, label):
        for attempt in range(3):
            try:
                with runtime.top_level(name=f"{label}#{attempt}"):
                    first.increment(1)
                    if attempt == 0:
                        try:
                            barrier.wait()
                        except threading.BrokenBarrierError:
                            pass
                    second.increment(1)
                done.append(label)
                return
            except DeadlockDetected:
                continue

    run_threads([
        lambda: worker(a, b, "t1"),
        lambda: worker(b, a, "t2"),
    ])
    assert sorted(done) == ["t1", "t2"]
    assert a.value == 2 and b.value == 2


def test_concurrent_independent_objects_no_interference():
    runtime = LocalRuntime()
    counters = [Counter(runtime, value=0) for _ in range(4)]

    def worker(index):
        for _ in range(50):
            with runtime.top_level():
                counters[index].increment(1)

    run_threads([lambda i=i: worker(i) for i in range(4)])
    assert [c.value for c in counters] == [50] * 4
