"""Postmortems: seeded chaos must attribute to exactly the injected cause.

Mirrors ``test_obs_audit.py``'s structure: every scenario seeds one class
of death — through the real cluster harness (contention, an ABBA
deadlock, a crashed participant) or through a synthetic event stream —
and asserts the engine attributes exactly that taxonomy reason, names
the blocker where one exists, and that the ``why`` CLI agrees offline.
"""

import json

import pytest

from repro.cluster.cluster import Cluster
from repro.errors import DeadlockDetected, LockTimeout
from repro.obs.bus import ObsEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.postmortem import (
    APP_ERROR,
    CASCADE,
    CRASH_PARTITION,
    DEADLOCK_VICTIM,
    EXPLICIT_ABORT,
    FAST_PATH_DOWNGRADE,
    INJECTED_FAULT,
    LOCK_CONFLICT,
    UNKNOWN,
    VOTE_ROLLBACK,
    PostmortemEngine,
)
from repro.obs.postmortem import render
from repro.obs.postmortem.__main__ import main as why_main
from repro.sim.kernel import Timeout


# -- synthetic event streams ---------------------------------------------------


def replayed(events):
    """Run (kind, labels) pairs through a fresh engine; ticks are the
    stream positions (the audit suite's ``feed`` idiom)."""
    return PostmortemEngine.replay(
        ObsEvent(tick=float(index), kind=kind, labels=labels)
        for index, (kind, labels) in enumerate(events))


def begin(uid, colours="c", node="local", parent=""):
    return ("action.begin", {"action": uid, "name": uid, "parent": parent,
                             "colours": colours, "node": node})


def end(uid, outcome="aborted", colours="c", node="local"):
    return ("action.end", {"action": uid, "name": uid, "outcome": outcome,
                           "colours": colours, "node": node})


def failure(uid, cause, **labels):
    labels.setdefault("op", "op")
    return ("action.failure", {"action": uid, "cause": cause, **labels})


def grant(owner, obj, mode="write", colour="c", node="local"):
    return ("lock.granted", {"owner": owner, "object": obj, "mode": mode,
                             "colour": colour, "node": node})


def blocked(owner, obj, blockers, mode="write", colour="c", node="local"):
    return ("lock.blocked", {"owner": owner, "object": obj, "mode": mode,
                             "colour": colour, "node": node,
                             "blockers": blockers})


def refused(owner, obj, error="LockTimeout", mode="write", colour="c",
            node="local", reason="timeout"):
    return ("lock.refused", {"owner": owner, "object": obj, "mode": mode,
                             "colour": colour, "node": node,
                             "reason": reason, "error": error})


def release(owner, obj, mode="write", colour="c", node="local",
            reason="abort"):
    return ("lock.released", {"owner": owner, "object": obj, "mode": mode,
                              "colour": colour, "node": node,
                              "reason": reason})


def twopc(txn, action, colour="c", participants="n1"):
    return ("twopc.begin", {"txn": txn, "action": action, "colour": colour,
                            "participants": participants})


def vote(txn, node, what="commit", reason=""):
    return ("twopc.vote", {"txn": txn, "node": node, "vote": what,
                           "reason": reason})


def decision(txn, what="abort", cause=""):
    return ("twopc.decision", {"txn": txn, "decision": what, "cause": cause})


def only(engine):
    records = [r for r in engine.records if r.outcome == "aborted"]
    assert len(records) == 1, records
    return records[0]


def test_committed_actions_get_plain_records():
    engine = replayed([begin("a1"), end("a1", outcome="committed")])
    (record,) = engine.records
    assert record.outcome == "committed"
    assert record.reason == "" and record.blockers == ()
    assert engine.reason_counts == {}


def test_synthetic_lock_conflict_names_the_live_holder():
    engine = replayed([
        begin("holder"), begin("victim"),
        grant("holder", "obj", colour="h"),
        blocked("victim", "obj", blockers="holder"),
        refused("victim", "obj", error="LockTimeout"),
        end("victim"),
    ])
    record = only(engine)
    assert record.reason == LOCK_CONFLICT
    assert "blocked by holder" in record.detail
    (link,) = record.blockers
    assert (link.holder, link.object, link.status) == ("holder", "obj",
                                                       "holds")
    assert link.colour == "h" and link.held_for > 0


def test_synthetic_deadlock_refusal_is_a_deadlock_victim():
    engine = replayed([
        begin("holder"), begin("victim"),
        grant("holder", "obj"),
        blocked("victim", "obj", blockers="holder"),
        refused("victim", "obj", error="DeadlockDetected", reason="deadlock"),
        end("victim"),
    ])
    record = only(engine)
    assert record.reason == DEADLOCK_VICTIM
    assert "deadlock victim" in record.detail
    assert record.blockers[0].holder == "holder"


def test_released_holder_is_still_blamed_after_it_let_go():
    """The guilty party released before the timeout fired: the chain
    falls back to who the victim was queued behind, with its hold time."""
    engine = replayed([
        begin("holder"), begin("victim"),
        grant("holder", "obj"),
        blocked("victim", "obj", blockers="holder"),
        release("holder", "obj"),
        refused("victim", "obj", error="LockTimeout"),
        end("victim"),
    ])
    record = only(engine)
    assert record.reason == LOCK_CONFLICT
    (link,) = record.blockers
    assert link.holder == "holder" and link.status == "released"
    assert link.held_for > 0


def test_unseen_blocker_is_reported_as_queued_ahead():
    engine = replayed([
        begin("victim"),
        blocked("victim", "obj", blockers="ghost"),
        refused("victim", "obj", error="LockTimeout"),
        end("victim"),
    ])
    (link,) = only(engine).blockers
    assert link.holder == "ghost" and link.status == "queued-ahead"


def test_blocker_chain_chases_transitive_waits():
    """victim waits on a, a waits on b: the chain surfaces both hops."""
    engine = replayed([
        begin("a"), begin("b"), begin("victim"),
        grant("b", "obj2"),
        grant("a", "obj1"),
        blocked("a", "obj2", blockers="b"),
        blocked("victim", "obj1", blockers="a"),
        refused("victim", "obj1", error="LockTimeout"),
        end("victim"),
    ])
    record = only(engine)
    holders = [(link.holder, link.object, link.depth)
               for link in record.blockers]
    assert holders == [("a", "obj1", 0), ("b", "obj2", 1)]


def test_vote_rollback_blames_the_refusing_participant():
    engine = replayed([
        begin("a1"),
        twopc("txn:1", "a1", participants="n1,n2"),
        vote("txn:1", "n1", what="commit"),
        vote("txn:1", "n2", what="rollback"),
        decision("txn:1", "abort", cause="vote-rollback"),
        failure("a1", "commit-failed", colour="c"),
        end("a1"),
    ])
    record = only(engine)
    assert record.reason == VOTE_ROLLBACK
    assert "n2 voted rollback" in record.detail
    assert record.txns == ("txn:1",)


def test_epoch_restart_vote_is_a_crash_partition():
    engine = replayed([
        begin("a1"),
        twopc("txn:1", "a1"),
        vote("txn:1", "n1", what="rollback", reason="epoch-restart"),
        decision("txn:1", "abort", cause="vote-rollback"),
        failure("a1", "commit-failed", colour="c"),
        end("a1"),
    ])
    record = only(engine)
    assert record.reason == CRASH_PARTITION
    assert "restarted mid-prepare" in record.detail


def test_downgraded_fast_path_owns_the_abort():
    engine = replayed([
        begin("a1"),
        twopc("txn:1", "a1"),
        ("twopc.downgrade", {"txn": "txn:1", "reason": "mixed-votes",
                             "resolution": "classic", "dst": "n1"}),
        decision("txn:1", "abort", cause="fast-path-downgrade"),
        failure("a1", "commit-failed", colour="c"),
        end("a1"),
    ])
    record = only(engine)
    assert record.reason == FAST_PATH_DOWNGRADE
    assert "fast path degenerated" in record.detail


def test_downgrade_forced_by_a_dead_peer_is_a_crash_partition():
    engine = replayed([
        begin("a1"),
        twopc("txn:1", "a1"),
        ("node.crash", {"node": "n1"}),
        ("twopc.downgrade", {"txn": "txn:1", "reason": "delegated-reply-lost",
                             "resolution": "abort", "dst": "n1"}),
        decision("txn:1", "abort", cause="fast-path-downgrade"),
        failure("a1", "commit-failed", colour="c"),
        end("a1"),
    ])
    record = only(engine)
    assert record.reason == CRASH_PARTITION
    assert "crashed under the fast path" in record.detail


def test_silent_participant_on_crashed_node_is_a_crash_partition():
    engine = replayed([
        begin("a1"),
        twopc("txn:1", "a1", participants="n1,n2"),
        vote("txn:1", "n1", what="commit"),
        ("node.crash", {"node": "n2"}),
        decision("txn:1", "abort", cause="participant-unreachable"),
        failure("a1", "commit-failed", colour="c"),
        end("a1"),
    ])
    record = only(engine)
    assert record.reason == CRASH_PARTITION
    assert "n2 crashed before deciding" in record.detail


def test_silent_participant_with_all_nodes_alive_is_an_injected_fault():
    engine = replayed([
        begin("a1"),
        twopc("txn:1", "a1", participants="n1,n2"),
        vote("txn:1", "n1", what="commit"),
        decision("txn:1", "abort", cause="participant-unreachable"),
        failure("a1", "commit-failed", colour="c"),
        end("a1"),
    ])
    assert only(engine).reason == INJECTED_FAULT


def test_rpc_timeout_classification_depends_on_fault_knowledge():
    dead = replayed([
        begin("a1"),
        ("node.crash", {"node": "n2"}),
        failure("a1", "rpc-timeout", dst="n2"),
        end("a1"),
    ])
    assert only(dead).reason == CRASH_PARTITION
    alive = replayed([
        begin("a1"),
        failure("a1", "rpc-timeout", dst="n2"),
        end("a1"),
    ])
    assert only(alive).reason == INJECTED_FAULT


def test_parent_settled_and_app_error_and_explicit_abort():
    cascade = replayed([begin("a1"),
                        failure("a1", "parent-settled", detail="p1"),
                        end("a1")])
    assert only(cascade).reason == CASCADE
    app = replayed([begin("a1"),
                    failure("a1", "app-error", error="ValueError",
                            detail="boom"),
                    end("a1")])
    record = only(app)
    assert record.reason == APP_ERROR and "ValueError" in record.detail
    bare = replayed([begin("a1"), end("a1")])
    assert only(bare).reason == EXPLICIT_ABORT


def test_unclassifiable_cause_falls_back_to_unknown_and_gates():
    engine = replayed([begin("a1"),
                       failure("a1", "meteor-strike"),
                       end("a1")])
    record = only(engine)
    assert record.reason == UNKNOWN
    lines, gaps = render.abort_report(list(engine.records))
    assert gaps and "unknown" in gaps[0]
    assert any("ATTRIBUTION GAPS" in line for line in lines)


def test_abort_metrics_count_once_per_colour():
    metrics = MetricsRegistry()
    engine = PostmortemEngine(metrics=metrics)
    for index, (kind, labels) in enumerate([
            begin("a1", colours="red,blue"),
            failure("a1", "app-error", error="E", detail="d"),
            end("a1", colours="red,blue")]):
        engine.consume(ObsEvent(tick=float(index), kind=kind, labels=labels))
    assert engine.reason_counts == {APP_ERROR: 1}
    series = {row["labels"]["colour"]: row["value"]
              for row in metrics.dump()["counters"]
              if row["name"] == "abort_reason_total"}
    assert series == {"red": 1, "blue": 1}


def test_crosscheck_matches_and_flags_mismatches():
    engine = replayed([begin("a1", colours="red"),
                       failure("a1", "app-error", error="E"),
                       end("a1", colours="red")])
    records = list(engine.records)
    clean = {"counters": [{"name": "actions_aborted_total",
                           "labels": {"colour": "red"}, "value": 1}]}
    assert render.crosscheck(records, clean) == []
    off = {"counters": [{"name": "actions_aborted_total",
                         "labels": {"colour": "red"}, "value": 2}]}
    problems = render.crosscheck(records, off)
    assert problems and "colour red" in problems[0]


def test_record_for_matches_uid_name_and_txn():
    engine = replayed([
        begin("a1"),
        twopc("txn:9", "a1"),
        decision("txn:9", "commit"),
        end("a1", outcome="committed"),
    ])
    for query in ("a1", "txn:9"):
        assert engine.record_for(query) is not None, query
    assert engine.record_for("nothing") is None


def test_engine_bounds_and_validates_record_count():
    with pytest.raises(ValueError):
        PostmortemEngine(max_records=0)
    engine = PostmortemEngine(max_records=2)
    for index in range(4):
        for tick, (kind, labels) in enumerate(
                [begin(f"a{index}"), end(f"a{index}", outcome="committed")]):
            engine.consume(ObsEvent(tick=float(tick), kind=kind,
                                    labels=labels))
    assert [r.action for r in engine.records] == ["a2", "a3"]


def test_engine_refuses_double_attach_and_detaches_cleanly():
    from repro.obs import Observability

    hub = Observability()
    engine = PostmortemEngine().attach(hub)
    assert hub.postmortem is engine
    with pytest.raises(RuntimeError):
        engine.attach(hub)
    engine.detach()
    assert hub.postmortem is None
    hub.bus.publish(ObsEvent(tick=0.0, kind="action.begin",
                             labels={"action": "a1"}))
    assert engine.seen == 0


# -- real-harness seeded deaths ------------------------------------------------


def contention_run(tmp_path=None):
    """One holder camps on the lock past the victim's wait timeout."""
    cluster = Cluster(seed=7, lock_wait_timeout=12.0)
    for name in ("n0", "n1"):
        cluster.add_node(name)
    cluster.attach_perf(interval=3.0)
    engine = cluster.attach_postmortem()
    c1 = cluster.client("n0", name="c1")
    c2 = cluster.client("n0", name="c2")
    refs = {}

    def setup():
        refs["x"] = yield from c1.create("n1", "counter", value=0)

    cluster.run_process("n0", setup())

    def holder():
        action = c1.top_level("holder")
        yield from c1.invoke(action, refs["x"], "increment", 1)
        yield Timeout(30.0)
        yield from c1.commit(action)

    def victim():
        yield Timeout(1.0)
        action = c2.top_level("victim")
        try:
            yield from c2.invoke(action, refs["x"], "increment", 1)
            yield from c2.commit(action)
        except LockTimeout:
            if not action.status.terminated:
                yield from c2.abort(action)

    cluster.spawn("n0", holder())
    cluster.spawn("n0", victim())
    cluster.run()
    path = None
    if tmp_path is not None:
        path = str(tmp_path / "contention.trace.json")
        cluster.obs.save(path)
    return cluster, engine, path


def test_cluster_contention_attributes_lock_conflict_with_blocker():
    cluster, engine, _path = contention_run()
    aborted = engine.aborted()
    assert len(aborted) == 1
    record = aborted[0]
    assert record.reason == LOCK_CONFLICT
    assert record.name == "victim"
    # the blocker chain names the holder's action and its colour
    assert record.blockers, "lock-conflict abort must carry a blocker"
    head = record.blockers[0]
    holder_record = engine.record_for("holder")
    assert head.holder == holder_record.action
    assert head.colour in holder_record.colours
    assert head.held_for > 0
    # attribution totals agree with the bridge's per-colour counters
    assert render.crosscheck(list(engine.records),
                             cluster.obs.metrics.dump()) == []


def test_cluster_deadlock_attributes_exactly_one_victim():
    cluster = Cluster(seed=0, edge_chasing=True, lock_wait_timeout=600.0,
                      probe_interval=3.0)
    for name in ("home1", "home2", "s1", "s2"):
        cluster.add_node(name)
    engine = cluster.attach_postmortem()
    c1 = cluster.client("home1", "c1")
    c2 = cluster.client("home2", "c2")
    refs = {}

    def setup():
        refs["obj1"] = yield from c1.create("s1", "counter", value=0)
        refs["obj2"] = yield from c1.create("s2", "counter", value=0)

    def worker(client, label, first, second):
        action = client.top_level(label)
        try:
            yield from client.invoke(action, refs[first], "increment", 1)
            yield Timeout(5.0)
            yield from client.invoke(action, refs[second], "increment", 1)
            yield from client.commit(action)
        except (DeadlockDetected, LockTimeout):
            if not action.status.terminated:
                yield from client.abort(action)

    cluster.run_process("home1", setup())
    cluster.spawn("home1", worker(c1, "t1", "obj1", "obj2"))
    cluster.spawn("home2", worker(c2, "t2", "obj2", "obj1"))
    cluster.run(until=400)
    aborted = engine.aborted()
    assert len(aborted) == 1, aborted
    record = aborted[0]
    assert record.reason == DEADLOCK_VICTIM
    assert record.blockers, "the cycle partner must be named"
    survivor = {"t1", "t2"} - {record.name}
    assert engine.record_for(survivor.pop()).outcome == "committed"
    assert engine.reason_counts == {DEADLOCK_VICTIM: 1}


def test_cluster_crashed_participant_attributes_crash_partition():
    cluster = Cluster(seed=3, rpc_retries=1, lock_wait_timeout=60.0)
    for name in ("n0", "n1"):
        cluster.add_node(name)
    engine = cluster.attach_postmortem()
    client = cluster.client("n0", name="c")
    refs = {}

    def setup():
        refs["x"] = yield from client.create("n1", "counter", value=0)

    cluster.run_process("n0", setup())

    def doomed():
        action = client.top_level("doomed")
        try:
            yield from client.invoke(action, refs["x"], "increment", 1)
            cluster.crash("n1")
            # the termination protocol polls until the participant is
            # back; give it a corpse to interrogate eventually
            cluster.restart_at("n1", cluster.kernel.now + 60.0)
            yield from client.commit(action)
        except Exception:
            if not action.status.terminated:
                yield from client.abort(action)

    cluster.spawn("n0", doomed())
    cluster.run(until=2_000.0)
    record = engine.record_for("doomed")
    assert record is not None and record.outcome == "aborted"
    # the crash owns the abort even though the single-participant fast
    # path is what mechanically degenerated
    assert record.reason == CRASH_PARTITION
    assert "n1" in record.detail
    assert engine.reason_counts == {CRASH_PARTITION: 1}


# -- the why CLI ---------------------------------------------------------------


@pytest.fixture(scope="module")
def contention_dump(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("why")
    _cluster, _engine, path = contention_run(tmp_path)
    return path


def test_why_cli_summary_exits_zero(contention_dump, capsys):
    assert why_main([contention_dump]) == 0
    out = capsys.readouterr().out
    assert "1 aborted" in out
    assert LOCK_CONFLICT in out


def test_why_cli_aborts_is_clean_and_names_the_blocker(contention_dump,
                                                       capsys):
    assert why_main([contention_dump, "--aborts"]) == 0
    out = capsys.readouterr().out
    assert "top blockers" in out
    assert "blocked by:" in out
    assert "ATTRIBUTION GAPS" not in out


def test_why_cli_aborts_json_round_trips(contention_dump, capsys):
    assert why_main([contention_dump, "--aborts", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["reasons"] == {LOCK_CONFLICT: 1}
    assert doc["gaps"] == []
    (record,) = doc["records"]
    assert record["name"] == "victim"
    assert record["blockers"][0]["holder"]


def test_why_cli_explains_one_transaction_by_name(contention_dump, capsys):
    assert why_main([contention_dump, "victim"]) == 0
    out = capsys.readouterr().out
    assert LOCK_CONFLICT in out and "blocked by:" in out
    # the committed holder resolves too, with its commit critical path
    assert why_main([contention_dump, "holder"]) == 0
    out = capsys.readouterr().out
    assert "committed" in out and "commit took" in out


def test_why_cli_slowest_renders_gating_chains(contention_dump, capsys):
    assert why_main([contention_dump, "--slowest", "2"]) == 0
    out = capsys.readouterr().out
    assert "commit took" in out
    assert "serve:txn_prepare" in out


def test_why_cli_unknown_query_exits_one(contention_dump, capsys):
    assert why_main([contention_dump, "no-such-txn"]) == 1
    assert "no finished action" in capsys.readouterr().err


def test_why_cli_gapped_dump_exits_two(tmp_path, capsys):
    """An abort the taxonomy cannot place must gate (exit 2), exactly as
    the acceptance bar demands zero ``unknown`` on healthy runs."""
    stream = [begin("a1"), failure("a1", "meteor-strike"), end("a1")]
    dump = {
        "format": "repro-obs/1",
        "spans": [],
        "metrics": {"counters": []},
        "events": [{"tick": float(index), "kind": kind, "labels": labels}
                   for index, (kind, labels) in enumerate(stream)],
    }
    path = tmp_path / "gapped.trace.json"
    path.write_text(json.dumps(dump))
    assert why_main([str(path), "--aborts"]) == 2
    assert "ATTRIBUTION GAPS" in capsys.readouterr().out


def test_why_module_shim_is_the_same_program():
    from repro.obs import why

    assert why.main is why_main
