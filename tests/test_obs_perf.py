"""The performance observatory: sampler, flight recorder, overhead meter,
perf-regression gate, and their kernel/cluster attach points."""

import json

import pytest

from repro.cluster.cluster import Cluster
from repro.obs import Observability
from repro.obs.perf import (
    Deviation,
    FlightRecorder,
    ObsOverheadMeter,
    TimeSeriesSampler,
    compare_documents,
    compare_trees,
    load_bench_files,
)
from repro.obs.perf.__main__ import main as perf_main
from repro.obs.perf.overhead import measure_noop_path
from repro.obs.report import aggregate_documents
from repro.sim.kernel import Kernel, Timeout
from repro.errors import SimulationError


# -- Kernel.every (daemon timers) ---------------------------------------------

def test_periodic_timer_fires_and_never_keeps_run_alive():
    kernel = Kernel()
    ticks = []
    timer = kernel.every(2.0, lambda: ticks.append(kernel.now))

    def work():
        yield Timeout(7.0)
        return "done"

    handle = kernel.spawn(work())
    end = kernel.run()
    # run() returned although the timer would fire forever
    assert handle.result == "done"
    assert ticks == [2.0, 4.0, 6.0]
    assert timer.fires == 3
    assert end == pytest.approx(7.0)


def test_periodic_timer_cancel_stops_firing():
    kernel = Kernel()
    ticks = []
    timer = kernel.every(1.0, lambda: ticks.append(kernel.now))

    def work():
        yield Timeout(2.5)
        timer.cancel()
        yield Timeout(5.0)

    kernel.run_until_settled(kernel.spawn(work()).join())
    assert ticks == [1.0, 2.0]


def test_run_until_settled_reports_drain_with_daemon_only_queue():
    kernel = Kernel()
    kernel.every(1.0, lambda: None)
    never = kernel.event("never")
    with pytest.raises(SimulationError, match="drained"):
        kernel.run_until_settled(never)


def test_every_rejects_non_positive_interval():
    kernel = Kernel()
    with pytest.raises(SimulationError):
        kernel.every(0.0, lambda: None)


# -- TimeSeriesSampler --------------------------------------------------------

def _sampled_cluster_run(seed: int):
    cluster = Cluster(seed=seed)
    for name in ("a", "b"):
        cluster.add_node(name)
    sampler, _recorder = cluster.attach_perf(interval=3.0, seed=seed)
    client = cluster.client("a")

    def app():
        ref = yield from client.create("b", "counter", value=0)
        for index in range(6):
            action = client.top_level(f"t{index}")
            yield from client.invoke(action, ref, "increment", 1)
            yield from client.commit(action)
            yield Timeout(2.0)

    cluster.run_process("a", app())
    return sampler.timeline()


def test_sampler_timeline_is_deterministic_for_a_seed():
    assert _sampled_cluster_run(5) == _sampled_cluster_run(5)


def test_sampler_records_per_colour_deltas_and_gauges():
    timeline = _sampled_cluster_run(5)
    assert timeline["interval"] == 3.0
    points = timeline["points"]
    assert points, "sampler never fired"
    committed = 0.0
    saw_gauges = False
    for point in points:
        for row in point.get("colours", {}).values():
            committed += row.get("committed", 0.0)
        saw_gauges = saw_gauges or "gauges" in point
    # counter deltas across the timeline sum to the cumulative total
    assert committed == 6.0
    assert saw_gauges


def test_sampler_decimates_at_max_points():
    hub = Observability()
    sampler = TimeSeriesSampler(hub, interval=1.0, max_points=8)
    for _ in range(20):
        sampler.sample()
    # every time the timeline fills, half the points drop and the stride
    # doubles: 20 manual samples through an 8-point budget decimate 4 times
    assert len(sampler.points) == 4
    assert sampler.stride == 16
    assert sampler.decimations == 4


def test_sampler_rejects_tiny_max_points():
    with pytest.raises(ValueError):
        TimeSeriesSampler(Observability(), max_points=1)


# -- FlightRecorder -----------------------------------------------------------

def test_ring_evicts_oldest_first_and_keeps_sequence_order():
    hub = Observability()
    recorder = FlightRecorder(hub, capacity=5)
    for index in range(12):
        hub.emit("span.start", index=index)
    events = recorder.ring_events()
    assert [e["labels"]["index"] for e in events] == [7, 8, 9, 10, 11]
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs)
    assert recorder.evicted == 7
    assert recorder.dump()["seen"] == 12


def test_sampling_is_deterministic_and_spares_critical_kinds():
    def run(seed):
        hub = Observability()
        recorder = FlightRecorder(hub, capacity=100, sample_rate=0.3,
                                  seed=seed)
        for index in range(40):
            hub.emit("span.start", index=index)
            if index % 10 == 0:
                hub.emit("twopc.decision", txn=f"t{index}")
        return recorder.ring_events()

    first, second = run(9), run(9)
    assert first == second
    kinds = [e["kind"] for e in first]
    # every critical event survives the 30% sampling
    assert kinds.count("twopc.decision") == 4
    assert 0 < kinds.count("span.start") < 40


def test_recorder_freezes_ring_on_auditor_finding():
    hub = Observability()
    recorder = FlightRecorder(hub, capacity=10)
    # a grant after the owner began releasing = two-phase violation
    hub.emit("lock.granted", node="n", owner="a1", object="o1",
             mode="write", colour="c1")
    hub.emit("lock.released", node="n", owner="a1", object="o1", colour="c1")
    hub.emit("lock.granted", node="n", owner="a1", object="o2",
             mode="write", colour="c1")
    assert hub.auditor.findings
    assert len(recorder.finding_snapshots) == len(hub.auditor.findings)
    snapshot = recorder.finding_snapshots[0]
    assert snapshot["kind"] == "two-phase-violation"
    assert snapshot["events"], "snapshot must carry the ring contents"


def test_recorder_freezes_one_ring_per_same_tick_finding():
    """A burst of findings in one tick freezes one snapshot each — every
    finding gets the ring *as it stood when that finding fired*, and the
    MAX_SNAPSHOTS cap still bounds the dump."""
    from repro.obs.audit.findings import Finding
    from repro.obs.perf.recorder import MAX_SNAPSHOTS

    hub = Observability()
    recorder = FlightRecorder(hub, capacity=8)
    hub.emit("span.start", name="setup")
    for index in range(MAX_SNAPSHOTS + 2):
        # the listener path the auditor uses, all at tick 0.0
        hub.auditor._finding("two-phase-violation",
                             f"burst finding {index}", tick=0.0,
                             node=f"n{index}")
        hub.emit("span.start", name=f"between-{index}")
    assert len(hub.auditor.findings) == MAX_SNAPSHOTS + 2
    assert len(recorder.finding_snapshots) == MAX_SNAPSHOTS
    # each frozen ring reflects its own instant: later snapshots carry the
    # events emitted between earlier findings
    ring_sizes = [len(s["events"]) for s in recorder.finding_snapshots]
    assert ring_sizes == sorted(ring_sizes)
    assert ring_sizes[0] < ring_sizes[-1]
    messages = [s["finding"] for s in recorder.finding_snapshots]
    assert all(f"burst finding {i}" in messages[i]
               for i in range(MAX_SNAPSHOTS))
    # the cap is also what travels in a saved dump
    dumped = recorder.dump()["finding_snapshots"]
    assert len(dumped) == MAX_SNAPSHOTS
    assert isinstance(hub.auditor.findings[0], Finding)


def test_recorder_dump_travels_in_hub_save(tmp_path):
    hub = Observability()
    FlightRecorder(hub, capacity=4)
    hub.emit("span.start", name="x")
    doc = hub.save(str(tmp_path / "dump.json"))
    assert doc["extra"]["flight_recorder"]["seen"] == 1
    assert "timeline" not in doc["extra"]    # no sampler attached


def test_recorder_validates_parameters():
    hub = Observability()
    with pytest.raises(ValueError):
        FlightRecorder(hub, capacity=0)
    with pytest.raises(ValueError):
        FlightRecorder(hub, sample_rate=1.5)


# -- ObsOverheadMeter ---------------------------------------------------------

def test_overhead_meter_accounts_events_and_restores_bus():
    hub = Observability()
    original_publish = hub.bus.publish
    with ObsOverheadMeter(hub) as meter:
        for _ in range(10):
            hub.emit("span.start")
    assert hub.bus.publish == original_publish
    report = meter.report()
    assert report["events_total"] == 10
    assert 0.0 <= report["obs_share"] <= 1.0
    assert report["obs_wall_seconds"] <= report["run_wall_seconds"]


def test_overhead_meter_refuses_double_attach():
    meter = ObsOverheadMeter(Observability()).attach()
    with pytest.raises(RuntimeError):
        meter.attach()
    meter.detach()


def test_noop_path_is_measurable():
    result = measure_noop_path(iterations=1000)
    assert result["nanos_per_call"] > 0.0


# -- compare / perf gate ------------------------------------------------------

def _bench(metrics, scenario="s", **extra):
    doc = {"format": "repro-perf/1", "scenario": scenario,
           "metrics": metrics}
    doc.update(extra)
    return doc


def test_compare_within_tolerance_passes():
    base = _bench({"latency": 10.0, "messages": 100.0})
    run = _bench({"latency": 10.5, "messages": 95.0})
    assert compare_documents("s", run, base) == []


def test_compare_flags_two_sided_regressions():
    base = _bench({"latency": 10.0})
    for drifted in (12.0, 8.0):      # slower AND "faster" both gate
        devs = compare_documents("s", _bench({"latency": drifted}), base)
        assert [d.kind for d in devs] == ["regression"]
        assert devs[0].failing


def test_compare_missing_metric_fails_new_metric_passes():
    base = _bench({"latency": 10.0})
    run = _bench({"throughput": 5.0})
    kinds = {d.kind: d.failing for d in compare_documents("s", run, base)}
    assert kinds == {"missing-metric": True, "new-metric": False}


def test_compare_per_metric_tolerance_override():
    base = _bench({"latency": 10.0}, tolerances={"latency": 0.5})
    assert compare_documents("s", _bench({"latency": 14.0}), base) == []
    devs = compare_documents("s", _bench({"latency": 25.0}), base)
    assert [d.kind for d in devs] == ["regression"]


def test_compare_zero_baseline_requires_zero():
    base = _bench({"aborted": 0.0})
    assert compare_documents("s", _bench({"aborted": 0.0}), base) == []
    devs = compare_documents("s", _bench({"aborted": 3.0}), base)
    assert [d.kind for d in devs] == ["regression"]


def test_compare_flattens_legacy_row_documents():
    base = {"figure": "fanout", "rows": [{"participants": 1, "latency": 4.0}]}
    run = {"figure": "fanout", "rows": [{"participants": 1, "latency": 9.0}]}
    devs = compare_documents("fanout", run, base)
    assert [d.metric for d in devs if d.failing] == ["rows[0].latency"]


def _write_bench(directory, name, doc):
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(doc))
    return path


def test_compare_trees_scenario_presence_rules(tmp_path):
    baseline, current = tmp_path / "base", tmp_path / "run"
    baseline.mkdir(), current.mkdir()
    _write_bench(baseline, "kept", _bench({"x": 1.0}, scenario="kept"))
    _write_bench(baseline, "lost", _bench({"x": 1.0}, scenario="lost"))
    _write_bench(current, "kept", _bench({"x": 1.0}, scenario="kept"))
    _write_bench(current, "fresh", _bench({"x": 1.0}, scenario="fresh"))
    devs = compare_trees(str(baseline), str(current))
    by_kind = {d.kind: d for d in devs}
    # a skipped baselined scenario fails; a brand-new one only notices
    assert by_kind["missing-scenario"].failing
    assert by_kind["missing-scenario"].scenario == "lost"
    assert not by_kind["new-scenario"].failing
    assert by_kind["new-scenario"].scenario == "fresh"


def test_load_bench_files_names_from_doc_or_filename(tmp_path):
    _write_bench(tmp_path, "named", _bench({}, scenario="inner"))
    (tmp_path / "BENCH_bare.json").write_text(json.dumps({"metrics": {}}))
    found = load_bench_files(str(tmp_path))
    assert set(found) == {"inner", "bare"}


def test_deviation_descriptions_cover_all_kinds():
    cases = [
        Deviation("s", "regression", "m", 10.0, 12.0, 0.1),
        Deviation("s", "missing-metric", "m", baseline=10.0),
        Deviation("s", "new-metric", "m", current=1.0),
        Deviation("s", "missing-scenario"),
        Deviation("s", "new-scenario"),
    ]
    for deviation in cases:
        assert deviation.describe().startswith("[s]")


# -- report aggregation -------------------------------------------------------

def test_aggregate_documents_sums_counters_and_merges_histograms():
    first = {"metrics": {
        "counters": [{"name": "c", "labels": {"k": "a"}, "value": 2.0}],
        "gauges": [],
        "histograms": [{"name": "h", "labels": {}, "count": 2, "sum": 10.0,
                        "min": 4.0, "max": 6.0}],
    }}
    second = {"metrics": {
        "counters": [{"name": "c", "labels": {"k": "a"}, "value": 3.0},
                     {"name": "c", "labels": {"k": "b"}, "value": 1.0}],
        "gauges": [],
        "histograms": [{"name": "h", "labels": {}, "count": 2, "sum": 30.0,
                        "min": 14.0, "max": 16.0}],
    }}
    merged = aggregate_documents([first, second])["metrics"]
    values = {tuple(sorted(r["labels"].items())): r["value"]
              for r in merged["counters"]}
    assert values == {(("k", "a"),): 5.0, (("k", "b"),): 1.0}
    hist = merged["histograms"][0]
    assert (hist["count"], hist["sum"]) == (4, 40.0)
    assert (hist["min"], hist["max"]) == (4.0, 16.0)
    assert hist["mean"] == 10.0
    assert "p50" not in hist                  # unmergeable: omitted
    assert hist["merged_from"] == 2


def test_report_cli_aggregates_multiple_dumps(tmp_path, capsys):
    from repro.obs.report import main as report_main
    dump = {"metrics": {
        "counters": [{"name": "ops", "labels": {}, "value": 4.0}],
        "gauges": [], "histograms": [],
    }}
    paths = []
    for index in range(2):
        path = tmp_path / f"d{index}.json"
        path.write_text(json.dumps(dump))
        paths.append(str(path))
    assert report_main(paths) == 0
    out = capsys.readouterr().out
    assert "aggregating 2 dumps" in out
    assert "8" in out


# -- batched prepare (multi-colour commit over call_many) ---------------------

def _multi_colour_cluster():
    from repro.objects.state import ObjectState

    cluster = Cluster(seed=3)
    for name in ("app", "s1", "s2"):
        cluster.add_node(name)
    client = cluster.client("app")

    def committed_int(ref):
        stored = cluster.nodes[ref.node].stable_store.read_committed(ref.uid)
        return ObjectState.from_bytes(stored.payload).unpack_int()

    return cluster, client, committed_int


def _saved_rpcs(cluster):
    return sum(instrument.value for _labels, instrument in
               cluster.obs.metrics.series("prepare_batch_saved_rpcs_total"))


def test_multi_colour_commit_batches_prepares_per_server():
    cluster, client, committed_int = _multi_colour_cluster()
    refs = {}

    def app():
        red = client.fresh_colour("red")
        blue = client.fresh_colour("blue")
        for key, node in (("r1", "s1"), ("r2", "s2"),
                          ("b1", "s1"), ("b2", "s2")):
            refs[key] = yield from client.create(node, "counter", value=0)
        action = client.coloured([red, blue], name="multi")
        for key, colour in (("r1", red), ("r2", red),
                            ("b1", blue), ("b2", blue)):
            yield from client.invoke(action, refs[key], "increment", 1,
                                     colour=colour)
        yield from client.commit(action)

    cluster.run_process("app", app())
    assert [committed_int(refs[k]) for k in ("r1", "r2", "b1", "b2")] \
        == [1, 1, 1, 1]
    # both colours span both servers: one batch of 2 sub-calls per server
    # replaces 2 sequential prepare round trips -> 1 saved on each
    assert _saved_rpcs(cluster) == 2.0
    assert cluster.obs.auditor.report() == []


def test_multi_colour_commit_fails_atomically_when_a_server_is_down():
    from repro.errors import CommitError

    cluster, client, committed_int = _multi_colour_cluster()
    refs = {}
    outcome = {}

    def app():
        red = client.fresh_colour("red")
        blue = client.fresh_colour("blue")
        refs["r1"] = yield from client.create("s1", "counter", value=7)
        refs["r2"] = yield from client.create("s2", "counter", value=7)
        refs["b2"] = yield from client.create("s2", "counter", value=7)
        action = client.coloured([red, blue], name="doomed")
        yield from client.invoke(action, refs["r1"], "increment", 1,
                                 colour=red)
        yield from client.invoke(action, refs["r2"], "increment", 1,
                                 colour=red)
        yield from client.invoke(action, refs["b2"], "increment", 1,
                                 colour=blue)
        cluster.crash("s2")
        try:
            yield from client.commit(action)
        except CommitError as error:
            outcome["error"] = error

    cluster.run_process("app", app())
    assert "error" in outcome, "commit against a crashed participant passed"
    # nothing became permanent: the live server still holds the old value
    assert committed_int(refs["r1"]) == 7


# -- process probes and the timeline renderer (text / HTML / CLI) -------------


def test_process_probes_are_off_by_default():
    timeline = _sampled_cluster_run(5)
    assert all("process" not in point for point in timeline["points"])


def test_process_probes_sample_host_gc_pressure():
    hub = Observability()
    sampler = TimeSeriesSampler(hub, interval=1.0, process_probes=True)
    sampler.sample()
    (point,) = sampler.points
    process = point["process"]
    assert {"gc_gen0", "gc_gen1", "gc_gen2", "gc_collections",
            "objects", "alloc_blocks"} <= set(process)
    assert process["objects"] > 0 and process["alloc_blocks"] > 0


def _dumped_run(tmp_path, seed=5):
    cluster = Cluster(seed=seed)
    for name in ("a", "b"):
        cluster.add_node(name)
    cluster.attach_perf(interval=3.0, seed=seed)
    client = cluster.client("a")

    def app():
        ref = yield from client.create("b", "counter", value=0)
        for index in range(6):
            action = client.top_level(f"t{index}")
            yield from client.invoke(action, ref, "increment", 1)
            yield from client.commit(action)
            yield Timeout(2.0)

    cluster.run_process("a", app())
    path = str(tmp_path / "run.trace.json")
    cluster.obs.save(path)
    return path


def test_timeline_text_renders_a_sparkline_per_series(tmp_path):
    from repro.obs.perf import timeline_text

    path = _dumped_run(tmp_path)
    with open(path) as handle:
        timeline = json.load(handle)["extra"]["timeline"]
    text = timeline_text(timeline, width=40)
    assert "colours:" in text and "gauges:" in text
    committed_rows = [line for line in text.splitlines()
                      if "/committed" in line]
    assert committed_rows and "last" in committed_rows[0]
    # an empty timeline degrades, not raises
    assert "no series" in timeline_text({"points": []})


def test_timeline_html_is_self_contained(tmp_path):
    from repro.obs.perf import timeline_html

    path = _dumped_run(tmp_path)
    with open(path) as handle:
        timeline = json.load(handle)["extra"]["timeline"]
    page = timeline_html(timeline, title="run #5")
    assert page.startswith("<!DOCTYPE html>")
    assert "<svg" in page and "<polyline" in page
    assert "run #5" in page
    # self-contained: no scripts, no external fetches
    assert "<script" not in page and "http" not in page.lower()


def test_perf_timeline_cli_text_html_and_errors(tmp_path, capsys):
    path = _dumped_run(tmp_path)
    assert perf_main(["timeline", path]) == 0
    assert "timeline:" in capsys.readouterr().out
    out_html = str(tmp_path / "timeline.html")
    assert perf_main(["timeline", path, "--html", out_html]) == 0
    capsys.readouterr()
    with open(out_html) as handle:
        assert "<svg" in handle.read()
    # operational errors: missing file, non-object, no timeline section
    assert perf_main(["timeline", str(tmp_path / "nope.json")]) == 1
    bare = tmp_path / "bare.json"
    bare.write_text("{}")
    assert perf_main(["timeline", str(bare)]) == 1
    errors = capsys.readouterr().err
    assert "no timeline" in errors
