"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause.  Errors are
split along the lines the paper draws: locking (concurrency control), action
lifecycle (failure atomicity), storage (permanence of effect), and the
distributed substrate (nodes and messages).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ActionError(ReproError):
    """Base class for action lifecycle errors."""


class InvalidActionState(ActionError):
    """An operation was attempted in an action state that forbids it.

    For example committing an already-aborted action, or acquiring a lock
    from a terminated action.
    """


class ActionAborted(ActionError):
    """Raised to signal that the current action has been aborted.

    Application code running inside an action sees this when the runtime
    decides to abort it (deadlock victim, crashed node, explicit abort from
    an ancestor).
    """

    def __init__(self, action_uid, reason: str = ""):
        self.action_uid = action_uid
        self.reason = reason
        message = f"action {action_uid} aborted"
        if reason:
            message = f"{message}: {reason}"
        super().__init__(message)


class NoCurrentAction(ActionError):
    """An operation requiring an ambient action found none in scope."""


class ColourError(ActionError):
    """A colour-rule violation.

    Raised when an action requests a lock in a colour it does not possess,
    or a structure is configured with an inconsistent colour scheme.
    """


class LockingError(ReproError):
    """Base class for concurrency-control errors."""


class LockRefused(LockingError):
    """A lock request was refused outright (rule violation, not contention)."""


class LockTimeout(LockingError):
    """A blocking lock request did not complete within its deadline."""


class DeadlockDetected(LockingError):
    """The waits-for graph contained a cycle and this request was the victim."""

    def __init__(self, cycle=None):
        self.cycle = list(cycle or [])
        detail = " -> ".join(str(uid) for uid in self.cycle)
        super().__init__(f"deadlock detected: {detail}" if detail else "deadlock detected")


class StorageError(ReproError):
    """Base class for object-store and log errors."""


class ObjectNotFound(StorageError):
    """The requested object state is not present in the store."""


class CorruptState(StorageError):
    """An object state buffer failed to unpack cleanly."""


class CommitError(ReproError):
    """Base class for commit-protocol errors."""


class PrepareFailed(CommitError):
    """A participant voted no (or was unreachable) during phase one."""


class ClusterError(ReproError):
    """Base class for simulated-distribution errors."""


class NodeDown(ClusterError):
    """The addressed node is crashed."""


class RpcTimeout(ClusterError):
    """A remote procedure call exhausted its retries without a reply."""


class NameNotBound(ClusterError):
    """A name-server lookup found no binding."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation kernel."""
