"""The simulated message network.

Failure model (§2): messages may be lost, duplicated or delayed; corrupted
messages are assumed to be detected and dropped by checksums, so corruption
is folded into loss.  Nodes that are crashed or partitioned away receive
nothing — silently, as a real network gives no receipt.

Payloads are **deep-copied at send time**: sender and receiver can never
share mutable state by accident, keeping the simulation honest about
distribution.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

from repro.cluster.message import Message
from repro.errors import ClusterError
from repro.sim.kernel import Kernel
from repro.util.rng import SplitRandom


@dataclass
class NetworkConfig:
    """Tunable fault injection for the network."""

    min_delay: float = 0.5
    max_delay: float = 2.0
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0

    def validate(self) -> None:
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise ClusterError("invalid delay bounds")
        for p in (self.drop_probability, self.duplicate_probability):
            if not 0.0 <= p < 1.0:
                raise ClusterError("probabilities must be in [0, 1)")


class Network:
    """Message delivery between named endpoints."""

    def __init__(self, kernel: Kernel, rng: SplitRandom,
                 config: Optional[NetworkConfig] = None,
                 observability=None):
        self.kernel = kernel
        #: delay draws (one per delivered copy)
        self.rng = rng.split("network")
        #: drop/duplicate decision draws — a *separate* stream consuming
        #: exactly two draws per send, so the Nth message's fate depends
        #: only on (seed, N), never on how many copies earlier messages
        #: produced or on the other probability's setting.
        self.fault_rng = rng.split("network.faults")
        self.config = config or NetworkConfig()
        self.config.validate()
        self._endpoints: Dict[str, Callable[[Message], None]] = {}
        self._up: Dict[str, bool] = {}
        self._partitions: Set[frozenset] = set()
        self._msg_ids = itertools.count(1)
        # observability: aggregate counts plus (when a hub is attached)
        # per-message-kind labelled counters in the metrics registry.
        self.obs = observability
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0
        self.duplicated_count = 0

    # -- topology --------------------------------------------------------------

    def attach(self, name: str, deliver: Callable[[Message], None]) -> None:
        """Register an endpoint; ``deliver`` is called for each arriving message."""
        self._endpoints[name] = deliver
        self._up[name] = True

    def set_up(self, name: str, up: bool) -> None:
        """Mark an endpoint reachable/unreachable (node crash/restart)."""
        if name not in self._endpoints:
            raise ClusterError(f"unknown endpoint {name}")
        self._up[name] = up

    def partition(self, a: str, b: str) -> None:
        """Sever the link between two endpoints (both directions)."""
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitions.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        self._partitions.clear()

    def is_reachable(self, src: str, dst: str) -> bool:
        return (
            self._up.get(dst, False)
            and frozenset((src, dst)) not in self._partitions
        )

    # -- sending -----------------------------------------------------------------

    def fresh_msg_id(self) -> int:
        return next(self._msg_ids)

    def send(self, message: Message) -> None:
        """Fire-and-forget: schedule delivery, subject to the fault model."""
        self.sent_count += 1
        if self.obs is not None:
            self.obs.count("messages_sent_total", kind=message.kind)
        if message.dst not in self._endpoints:
            raise ClusterError(f"message to unknown endpoint {message.dst}")
        # Both draws happen unconditionally: the old ``elif`` consumed the
        # duplicate draw only when the drop draw failed, which entangled
        # the two probabilities' RNG streams (changing one config knob
        # reshuffled the other's outcomes under the same seed).  A dropped
        # message still cannot be duplicated — the drop decision wins —
        # but its duplicate draw is consumed regardless.
        drop_roll = self.fault_rng.random()
        duplicate_roll = self.fault_rng.random()
        copies = 1
        if drop_roll < self.config.drop_probability:
            copies = 0
        elif duplicate_roll < self.config.duplicate_probability:
            copies = 2
            self.duplicated_count += 1
        if copies == 0:
            self.dropped_count += 1
            if self.obs is not None:
                self.obs.count("messages_dropped_total", kind=message.kind)
            return
        for _ in range(copies):
            delay = self.rng.uniform(self.config.min_delay, self.config.max_delay)
            # Payload copied at send time: the receiver sees the message as
            # it was when sent, never a later mutation.
            frozen = Message(
                src=message.src, dst=message.dst, kind=message.kind,
                payload=copy.deepcopy(message.payload),
                msg_id=message.msg_id, reply_to=message.reply_to,
            )
            self.kernel.schedule(delay, self._deliver, frozen)

    def _deliver(self, message: Message) -> None:
        # Reachability is evaluated at delivery time: a message in flight
        # to a node that crashes meanwhile is lost, as on a real network.
        if not self.is_reachable(message.src, message.dst):
            self.dropped_count += 1
            if self.obs is not None:
                self.obs.count("messages_dropped_total", kind=message.kind)
            return
        self.delivered_count += 1
        if self.obs is not None:
            self.obs.count("messages_delivered_total", kind=message.kind)
        self._endpoints[message.dst](message)

    # -- metrics -------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "sent": self.sent_count,
            "delivered": self.delivered_count,
            "dropped": self.dropped_count,
            "duplicated": self.duplicated_count,
        }
