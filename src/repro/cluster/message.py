"""Messages and wire encoding of colours and action contexts.

The simulated network deep-copies payloads, so nothing structured survives
by reference — colours and action ancestry cross the wire as plain dicts,
and the receiving server reconstructs them.  This mirrors what a real
distributed Arjuna would marshal into RPC parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.colours.colour import Colour
from repro.util.uid import Uid


@dataclass(frozen=True)
class Message:
    """One network message."""

    src: str
    dst: str
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)
    msg_id: int = 0
    reply_to: int = 0

    def reply(self, kind: str, payload: Dict[str, Any], msg_id: int) -> "Message":
        return Message(
            src=self.dst, dst=self.src, kind=kind,
            payload=payload, msg_id=msg_id, reply_to=self.msg_id,
        )


# -- wire encoding ------------------------------------------------------------

def encode_uid(uid: Uid) -> Tuple[str, int]:
    return (uid.namespace, uid.sequence)


def decode_uid(raw) -> Uid:
    namespace, sequence = raw
    return Uid(str(namespace), int(sequence))


def encode_colour(colour: Colour) -> Dict[str, Any]:
    return {"uid": encode_uid(colour.uid), "name": colour.name}


def decode_colour(raw: Dict[str, Any]) -> Colour:
    return Colour(decode_uid(raw["uid"]), str(raw["name"]))


def encode_action_context(action) -> List[Dict[str, Any]]:
    """Serialise an action's ancestry, root first.

    ``action`` is anything with ``uid``, ``colours``, ``parent`` and
    (optionally) ``home`` — the cluster client's action records.  The
    server rebuilds mirrors from this; ``home`` (the node the action's
    client runs on) is what distributed deadlock probes route through.
    """
    chain = []
    walker = action
    while walker is not None:
        chain.append(walker)
        walker = walker.parent
    chain.reverse()
    return [
        {
            "uid": encode_uid(entry.uid),
            "colours": [encode_colour(c) for c in sorted(entry.colours, key=lambda c: c.uid)],
            "home": getattr(entry, "home", ""),
        }
        for entry in chain
    ]


def decode_action_context(raw: List[Dict[str, Any]]) -> List[Tuple[Uid, frozenset, str]]:
    """Decode to a list of (uid, colours, home) triples, root first."""
    return [
        (decode_uid(entry["uid"]),
         frozenset(decode_colour(c) for c in entry["colours"]),
         str(entry.get("home", "")))
        for entry in raw
    ]
