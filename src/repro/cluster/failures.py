"""Fault-injection schedules for cluster experiments.

§2's failure model says nodes crash and are "repaired within a finite
amount of time".  A :class:`FaultSchedule` generates that behaviour over a
horizon: per-node alternating up/down periods drawn from a seeded stream,
so chaos runs replay deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.cluster.cluster import Cluster
from repro.util.rng import SplitRandom


@dataclass
class FaultSchedule:
    """Deterministic crash/restart timelines for a set of nodes."""

    cluster: Cluster
    seed: int = 0
    mean_uptime: float = 150.0
    mean_downtime: float = 30.0
    #: (time, node, "crash"|"restart") — filled by arm()
    planned: List[Tuple[float, str, str]] = field(default_factory=list)

    def arm(self, nodes: List[str], horizon: float,
            start_after: float = 0.0) -> List[Tuple[float, str, str]]:
        """Schedule alternating crashes/restarts for each node up to
        ``horizon``; every node is left (scheduled to be) up at the end."""
        rng = SplitRandom(self.seed).split("faults")
        for node in nodes:
            stream = rng.split(node)
            now = start_after + stream.expovariate(1.0 / self.mean_uptime)
            while now < horizon:
                down_for = stream.expovariate(1.0 / self.mean_downtime)
                self.planned.append((now, node, "crash"))
                self.cluster.crash_at(node, now)
                up_at = min(now + down_for, horizon)
                self.planned.append((up_at, node, "restart"))
                self.cluster.restart_at(node, up_at)
                now = up_at + stream.expovariate(1.0 / self.mean_uptime)
        self.planned.sort()
        return list(self.planned)

    def crash_count(self) -> int:
        return sum(1 for _, _, kind in self.planned if kind == "crash")
