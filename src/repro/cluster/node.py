"""Fail-silent nodes (§2).

A node either works or has crashed; a crash kills its processes, wipes its
volatile memory (including lock tables and reply caches), and bumps its
epoch on restart.  Stable storage — the object store and the write-ahead
log — survives.  Services register a message dispatcher and a recovery
hook; restart runs recovery before the node serves again.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.cluster.message import Message
from repro.cluster.network import Network
from repro.errors import NodeDown
from repro.sim.kernel import Kernel, Process
from repro.store.stable import StableStore
from repro.store.wal import WriteAheadLog


class Node:
    """One workstation: stable + volatile storage, an inbox, services."""

    def __init__(self, name: str, kernel: Kernel, network: Network):
        self.name = name
        self.kernel = kernel
        self.network = network
        self.alive = True
        self.crash_count = 0
        # stable: survives crashes
        self.stable_store = StableStore()
        self.wal = WriteAheadLog()
        self._stable_meta: Dict[str, Any] = {"epoch": 1}
        # volatile: wiped by crashes
        self.volatile: Dict[str, Any] = {}
        self._processes: List[Process] = []
        self._dispatchers: List[Callable[[Message], bool]] = []
        self._recovery_hooks: List[Callable[[], None]] = []
        network.attach(name, self._on_message)

    @property
    def epoch(self) -> int:
        """Incarnation number; bumped at every restart (stable)."""
        return self._stable_meta["epoch"]

    # -- services ---------------------------------------------------------------

    def add_dispatcher(self, dispatcher: Callable[[Message], bool]) -> None:
        """Register a message handler; it returns True if it consumed the message."""
        self._dispatchers.append(dispatcher)

    def add_recovery_hook(self, hook: Callable[[], None]) -> None:
        """Run at restart, before the node serves traffic."""
        self._recovery_hooks.append(hook)

    def spawn(self, body, name: str = "") -> Process:
        """Start a process that dies with the node."""
        if not self.alive:
            raise NodeDown(f"{self.name} is down")
        process = self.kernel.spawn(body, name=f"{self.name}/{name or 'proc'}")
        self._processes.append(process)
        self._processes = [p for p in self._processes if p.alive]
        return process

    # -- messaging ----------------------------------------------------------------

    def send(self, dst: str, kind: str, payload: Optional[Dict[str, Any]] = None,
             msg_id: int = 0, reply_to: int = 0) -> Message:
        if not self.alive:
            raise NodeDown(f"{self.name} is down")
        message = Message(
            src=self.name, dst=dst, kind=kind,
            payload=payload or {},
            msg_id=msg_id or self.network.fresh_msg_id(),
            reply_to=reply_to,
        )
        self.network.send(message)
        return message

    def _on_message(self, message: Message) -> None:
        if not self.alive:
            return
        for dispatcher in self._dispatchers:
            if dispatcher(message):
                return
        # Unconsumed messages are dropped; fail-silence means no NAKs.

    # -- failure injection -------------------------------------------------------------

    def crash(self) -> None:
        """Fail-silent crash: processes die, volatile state vanishes."""
        if not self.alive:
            return
        self.alive = False
        self.crash_count += 1
        self.network.set_up(self.name, False)
        processes, self._processes = self._processes, []
        for process in processes:
            process.kill()
        self.volatile.clear()

    def restart(self) -> None:
        """Repair (§2: 'repaired within a finite amount of time').

        Bumps the epoch, runs recovery hooks (log-driven), then rejoins the
        network.
        """
        if self.alive:
            return
        self._stable_meta["epoch"] += 1
        self.alive = True
        for hook in self._recovery_hooks:
            hook()
        self.network.set_up(self.name, True)

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<Node {self.name} {state} epoch={self.epoch}>"
