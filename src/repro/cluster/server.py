"""The object server: hosts objects, lock tables, and the 2PC participant.

One server runs per node (the Arjuna object-store + lock-manager pair).
Everything except the stable object store and the write-ahead log is
volatile: lock tables, action mirrors, undo records and the RPC reply cache
vanish at a crash — the client-side epoch checks and the prepared-state
recovery below are what make that survivable.

Server-side model: for each remote action that touches this node, a local
:class:`ActionMirror` is rebuilt from the action context carried in the
request (uids, ancestry path, colours).  The mirror holds the locks (it
implements the LockOwner interface) and the per-colour undo records and
write sets, exactly like a local :class:`~repro.actions.action.Action`.
Commit-time routing decisions are made by the *client* (it knows the whole
tree) and arrive as explicit transfer/release/2PC messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.actions.record import OperationUndo, UndoRecord
from repro.cluster.message import (
    Message,
    decode_action_context,
    decode_colour,
    decode_uid,
    encode_uid,
)
from repro.cluster.node import Node
from repro.cluster.transport import Responder, RpcTransport
from repro.colours.colour import Colour
from repro.errors import (
    ClusterError,
    DeadlockDetected,
    LockRefused,
    LockTimeout,
    ObjectNotFound,
    PrepareFailed,
)
from repro.locking.deadlock import DeadlockDetector
from repro.locking.modes import LockMode
from repro.locking.registry import LockRegistry
from repro.locking.request import LockRequest, RequestStatus
from repro.locking.rules import ColouredRules
from repro.objects.state_manager import StateManager
from repro.sim.kernel import Timeout
from repro.util.uid import Uid, UidGenerator


@dataclass
class ActionMirror:
    """Server-side image of a remote action: identity, ancestry, colours,
    and this node's share of its undo records and write sets."""

    uid: Uid
    path: Tuple[Uid, ...]
    colours: FrozenSet[Colour]
    home: str = ""
    #: sim time the mirror was built — first involvement of the action at
    #: this node; lock hold time is measured from here to retirement.
    created_tick: float = 0.0
    undo: Dict[Colour, Dict[Uid, UndoRecord]] = field(default_factory=dict)
    #: type-specific recovery: one compensation per applied operation
    op_undo: Dict[Colour, List[OperationUndo]] = field(default_factory=dict)
    written: Dict[Colour, Dict[Uid, StateManager]] = field(default_factory=dict)

    def record_write(self, obj: StateManager, colour: Colour, seq: int) -> None:
        per_colour = self.undo.setdefault(colour, {})
        if obj.uid not in per_colour:
            per_colour[obj.uid] = UndoRecord(
                obj=obj, colour=colour, before_image=obj.snapshot(),
                seq=seq, origin_action=self.uid,
            )
        self.written.setdefault(colour, {})[obj.uid] = obj

    def record_operation(self, obj: StateManager, colour: Colour,
                         compensate, description: str, seq: int) -> None:
        self.op_undo.setdefault(colour, []).append(OperationUndo(
            obj=obj, colour=colour, compensate=compensate,
            description=description, seq=seq, origin_action=self.uid,
        ))
        self.written.setdefault(colour, {})[obj.uid] = obj

    def bequeath(self, colour: Colour, destination: "ActionMirror") -> None:
        """Move one colour's undo/write bookkeeping to an ancestor mirror."""
        inherited = self.undo.pop(colour, {})
        dest_undo = destination.undo.setdefault(colour, {})
        for object_uid, record in inherited.items():
            if object_uid not in dest_undo:
                dest_undo[object_uid] = record  # elder image wins
        inherited_ops = self.op_undo.pop(colour, [])
        if inherited_ops:
            destination.op_undo.setdefault(colour, []).extend(inherited_ops)
        destination.written.setdefault(colour, {}).update(self.written.pop(colour, {}))

    def drop_colour(self, colour: Colour) -> None:
        self.undo.pop(colour, None)
        self.op_undo.pop(colour, None)
        self.written.pop(colour, None)

    def all_undo_records(self) -> List:
        records: List = [record for per in self.undo.values()
                         for record in per.values()]
        for ops in self.op_undo.values():
            records.extend(ops)
        return records


class MirrorView:
    """Action-shaped adapter over an :class:`ActionMirror` for observers.

    Observers (``on_lock_granted``) expect the local-runtime action shape:
    ``uid``, ``name``, ``parent`` (with a ``uid``), ``colours``.  The
    mirror knows its ancestry path, so the view reconstructs just enough
    of it.
    """

    __slots__ = ("uid", "name", "colours", "parent")

    def __init__(self, mirror: ActionMirror):
        self.uid = mirror.uid
        self.name = f"caction-{mirror.uid.sequence}"
        self.colours = mirror.colours
        self.parent = None
        if len(mirror.path) > 1:
            parent = MirrorView.__new__(MirrorView)
            parent.uid = mirror.path[-2]
            parent.name = f"caction-{mirror.path[-2].sequence}"
            parent.colours = mirror.colours
            parent.parent = None
            self.parent = parent


class ServerObjectHost:
    """The minimal 'runtime' server-hosted objects are constructed against.

    Objects built on a server never block for locks themselves (the server
    takes locks before running operation bodies), so only uid allocation
    and registration are needed.
    """

    def __init__(self, server: "ObjectServer"):
        self._server = server
        self._object_uids = UidGenerator(f"obj@{server.node.name}")

    def fresh_object_uid(self) -> Uid:
        return self._object_uids.fresh()

    def register_object(self, obj: StateManager, persist: bool = True) -> None:
        self._server.objects[obj.uid] = obj
        if persist:
            obj.persist_to(self._server.node.stable_store)

    @property
    def locks(self) -> LockRegistry:
        """Semantic objects register their specs here at construction."""
        return self._server.registry

    def acquire(self, *args, **kwargs):  # pragma: no cover - guard
        raise ClusterError(
            "server-hosted objects must not self-lock; the server locks "
            "before running operation bodies"
        )


class ObjectServer:
    """Message handlers for one node's objects, locks and transactions."""

    def __init__(self, node: Node, transport: RpcTransport,
                 classes: Dict[str, type],
                 lock_wait_timeout: float = 60.0,
                 edge_chasing: bool = True,
                 probe_interval: float = 5.0,
                 observability=None):
        self.node = node
        self.kernel = node.kernel
        self.transport = transport
        self.classes = dict(classes)
        self.lock_wait_timeout = lock_wait_timeout
        self.obs = observability
        #: trace/metrics observers fired on server-side lock grants (the
        #: distributed counterpart of LocalRuntime.add_observer)
        self.observers: list = []
        self.host = ServerObjectHost(self)
        # volatile state (rebuilt empty after a crash)
        self.objects: Dict[Uid, StateManager] = {}
        self.registry = LockRegistry(ColouredRules(), namespace=f"lreq@{node.name}")
        self.registry.on_event = self._emit_lock_event
        self.detector = DeadlockDetector(self.registry)
        self.mirrors: Dict[Uid, ActionMirror] = {}
        self.prepared: Dict[str, Dict[str, Any]] = {}
        self.in_doubt_objects: Set[Uid] = set()
        #: txn_id -> {coordinator, object_uids, since} for transactions
        #: recovered in doubt (PREPARED on the log, no decision yet); the
        #: introspection layer reports these with their age.  Mirrors the
        #: lifetime of the corresponding ``in_doubt_objects`` fences.
        self.in_doubt_txns: Dict[str, Dict[str, Any]] = {}
        #: txn_ids whose piggybacked (delegated) commit the coordinator has
        #: acknowledged — lazily, as ``forget`` lists riding later prepares.
        #: Volatile on purpose: the checkpoint rewrite is the durability
        #: point (a forgotten record is simply not carried forward).
        self.forgotten: Set[str] = set()
        self._undo_seq = 0
        # metrics
        self.invocations = 0
        self.lock_waits = 0

        for kind, handler in [
            ("create", self._h_create),
            ("invoke", self._h_invoke),
            ("lock", self._h_lock),
            ("fetch_state", self._h_fetch_state),
            ("finish_commit", self._h_finish_commit),
            ("abort_action", self._h_abort_action),
            ("txn_prepare", self._h_txn_prepare),
            ("txn_commit", self._h_txn_commit),
            ("txn_abort", self._h_txn_abort),
            ("txn_decision_query", self._h_txn_decision_query),
            ("txn_outcome_query", self._h_txn_outcome_query),
            ("status_query", self._h_status_query),
        ]:
            transport.register(kind, handler)
        node.add_recovery_hook(self._recover)
        self.edge_chaser = None
        if edge_chasing:
            from repro.cluster.deadlock import EdgeChaser
            self.edge_chaser = EdgeChaser(self, probe_interval=probe_interval)

    # -- plumbing ------------------------------------------------------------

    def add_observer(self, observer) -> None:
        """Attach an observer notified of lock grants at this server."""
        self.observers.append(observer)

    def _emit_lock_event(self, kind: str, **labels) -> None:
        """Registry event sink: forward to the obs bus with a node label."""
        if self.obs is not None:
            self.obs.emit(kind, node=self.node.name, **labels)

    def _next_undo_seq(self) -> int:
        self._undo_seq += 1
        return self._undo_seq

    def _object(self, object_uid: Uid) -> StateManager:
        """The live instance, activated from the stable store if needed."""
        obj = self.objects.get(object_uid)
        if obj is not None:
            return obj
        stored = self.node.stable_store.read_committed(object_uid)  # may raise
        cls = self.classes.get(stored.type_name)
        if cls is None:
            raise ClusterError(f"no class registered for {stored.type_name!r}")
        obj = cls(self.host, uid=object_uid, persist=False)
        obj.restore_snapshot(stored.payload)
        self.objects[object_uid] = obj
        return obj

    def _mirror(self, context: List[Tuple[Uid, FrozenSet[Colour], str]]) -> ActionMirror:
        """Get or build the mirror for the last entry of an action context."""
        path: Tuple[Uid, ...] = ()
        mirror: Optional[ActionMirror] = None
        for uid, colours, home in context:
            path = path + (uid,)
            mirror = self.mirrors.get(uid)
            if mirror is None:
                mirror = ActionMirror(uid=uid, path=path, colours=colours,
                                      home=home,
                                      created_tick=self.kernel.now)
                self.mirrors[uid] = mirror
        assert mirror is not None
        return mirror

    def _ok(self, extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        reply = {"epoch": self.node.epoch}
        if extra:
            reply.update(extra)
        return reply

    # -- handlers: objects -------------------------------------------------------

    def _h_create(self, message: Message, respond: Responder) -> None:
        """Create an object (non-transactional, like Arjuna's first persist)."""
        payload = message.payload
        cls = self.classes.get(payload["type_name"])
        if cls is None:
            respond(False, ClusterError(f"unknown type {payload['type_name']!r}"))
            return
        obj = cls(self.host, *payload.get("args", []), **payload.get("kwargs", {}))
        respond(True, self._ok({"object_uid": encode_uid(obj.uid)}))

    def _h_fetch_state(self, message: Message, respond: Responder) -> None:
        """Unlocked state read (debug/replication bootstrap)."""
        object_uid = decode_uid(message.payload["object_uid"])
        try:
            obj = self._object(object_uid)
        except ObjectNotFound as error:
            respond(False, error)
            return
        respond(True, self._ok({
            "type_name": obj.type_name, "payload": obj.snapshot(),
        }))

    def _h_invoke(self, message: Message, respond: Responder) -> None:
        """Lock (per the operation's declared mode) then run an operation."""
        payload = message.payload
        object_uid = decode_uid(payload["object_uid"])
        if object_uid in self.in_doubt_objects:
            respond(False, ClusterError(
                f"object {object_uid} is in doubt pending transaction recovery"
            ))
            return
        try:
            obj = self._object(object_uid)
        except ObjectNotFound as error:
            respond(False, error)
            return
        method = getattr(type(obj), payload["method"], None)
        mode_name = getattr(method, "__repro_mode__", None)
        group = getattr(method, "__repro_group__", None)
        inverse = getattr(method, "__repro_inverse__", None)
        body = getattr(method, "__repro_body__", None)
        if body is None or (mode_name is None and group is None):
            respond(False, ClusterError(
                f"{obj.type_name}.{payload['method']} is not an operation"
            ))
            return
        mirror = self._mirror(decode_action_context(payload["action"]))
        colour = decode_colour(payload["colour"])
        args = payload.get("args", [])
        self.invocations += 1
        if self.obs is not None:
            self.obs.count("invocations_total", node=self.node.name,
                           method=f"{obj.type_name}.{payload['method']}",
                           colour=str(colour))
        lock_key = mode_name if mode_name is not None else group

        def completed(request: LockRequest) -> None:
            if request.status is not RequestStatus.GRANTED:
                error = request.error or LockTimeout(
                    f"{payload['method']} on {object_uid}: {request.refusal}"
                )
                respond(False, error)
                return
            if mode_name is LockMode.WRITE:
                mirror.record_write(obj, colour, self._next_undo_seq())
            try:
                result = body(obj, *args)
            except Exception as error:  # app exception: report, don't apply
                respond(False, error if isinstance(error, Exception) else
                        ClusterError(str(error)))
                return
            if group is not None and inverse is not None:
                # type-specific recovery: compensation, not a before-image
                def compensate(o=obj, r=result, a=tuple(args), name=inverse):
                    getattr(o, name)(r, *a)

                mirror.record_operation(
                    obj, colour, compensate,
                    description=f"{obj.type_name}.{inverse}",
                    seq=self._next_undo_seq(),
                )
            respond(True, self._ok({"result": result}))

        self._locked_request(mirror, object_uid, lock_key, colour, completed)

    def _h_lock(self, message: Message, respond: Responder) -> None:
        """Explicit lock acquisition (hand-over pins, companion locks)."""
        payload = message.payload
        object_uid = decode_uid(payload["object_uid"])
        if object_uid in self.in_doubt_objects:
            respond(False, ClusterError(
                f"object {object_uid} is in doubt pending transaction recovery"
            ))
            return
        try:
            obj = self._object(object_uid)
        except ObjectNotFound as error:
            respond(False, error)
            return
        mirror = self._mirror(decode_action_context(payload["action"]))
        colour = decode_colour(payload["colour"])
        raw_mode = payload["mode"]
        try:
            mode = LockMode(raw_mode)
        except ValueError:
            mode = raw_mode  # a semantic operation group name

        def completed(request: LockRequest) -> None:
            if request.status is not RequestStatus.GRANTED:
                label = mode.value if hasattr(mode, "value") else str(mode)
                respond(False, request.error or LockTimeout(
                    f"lock {label} on {object_uid}: {request.refusal}"
                ))
                return
            if mode is LockMode.WRITE:
                mirror.record_write(obj, colour, self._next_undo_seq())
            respond(True, self._ok())

        self._locked_request(mirror, object_uid, mode, colour, completed)

    def _locked_request(self, mirror: ActionMirror, object_uid: Uid,
                        mode, colour: Colour,
                        completed: Callable[[LockRequest], None]) -> None:
        """``mode`` is a LockMode for plain objects or a group name (str)
        for semantic objects; the registry routes to the right table."""
        wait_started = self.kernel.now
        mode_name = mode.value if hasattr(mode, "value") else str(mode)

        def settled(request: LockRequest) -> None:
            if request.status is RequestStatus.GRANTED:
                if self.obs is not None:
                    self.obs.observe("lock_wait_time",
                                     self.kernel.now - wait_started,
                                     node=self.node.name, colour=str(colour))
                    self.obs.count("lock_grants_total", node=self.node.name,
                                   mode=mode_name)
                if self.observers:
                    view = MirrorView(mirror)
                    for observer in self.observers:
                        on_grant = getattr(observer, "on_lock_granted", None)
                        if on_grant is not None:
                            on_grant(view, object_uid, mode, colour)
            elif self.obs is not None:
                if isinstance(request.error, DeadlockDetected):
                    self.obs.count("deadlock_detections_total",
                                   node=self.node.name)
                else:
                    self.obs.count("lock_refusals_total", node=self.node.name)
            completed(request)

        request = self.registry.request(mirror, object_uid, mode, colour, settled)
        if request.settled:
            return
        self.lock_waits += 1
        # Lock-conflict fast abort: if queueing this very request closed a
        # waits-for cycle through its own action, the wait is *certain* to
        # deadlock — every holder ahead of it transitively waits on this
        # action, and holders only release at commit/abort.  Refuse it now
        # as a deterministic lock conflict instead of parking it for the
        # deadlock chaser to victimise later.
        cycle = self.detector.cycle_through(mirror.uid)
        if cycle is not None:
            if self.obs is not None:
                self.obs.count("lock_fast_aborts_total", node=self.node.name)
            self.registry.cancel_request(
                request,
                reason=("waiting would close a deadlock cycle: "
                        + " -> ".join(str(uid) for uid in cycle)),
                error=LockRefused(
                    f"lock {mode_name} on {object_uid}: granting the wait "
                    f"would deadlock with {max(len(cycle) - 1, 1)} other "
                    f"action(s)"
                ),
            )
            return
        # local deadlock detection now; edge-chasing probes catch cycles
        # across servers; the wait timeout is the last-resort backstop.
        self.detector.resolve_all()
        if request.settled:
            return
        if self.edge_chaser is not None:
            self.edge_chaser.chase_from(mirror.uid)
        deadline = self.lock_wait_timeout
        mode_label = mode.value if hasattr(mode, "value") else str(mode)

        def expire() -> None:
            if not request.settled and self.node.alive:
                self.registry.cancel_request(
                    request, reason="lock wait timeout",
                    error=LockTimeout(
                        f"lock {mode_label} on {object_uid} timed out "
                        f"after {deadline} (distributed-deadlock bound)"
                    ),
                )

        self.kernel.schedule(deadline, expire)

    # -- handlers: action termination ------------------------------------------------

    def _h_finish_commit(self, message: Message, respond: Responder) -> None:
        """Apply the client's per-colour routing for a committing action.

        ``routes``: list of {colour, dest: action-context or None}.  Colours
        routed to an ancestor have their locks, undo records and write sets
        moved to that ancestor's mirror; colours routed to None are released
        (their permanence, if any, was already handled by 2PC).

        Idempotent: re-delivery (a client-side reaper retrying a partition-
        swallowed finish under a fresh rpc id) finds the mirror gone and
        acks without re-applying, so over-delivery is always safe.
        """
        payload = message.payload
        action_uid = decode_uid(payload["action_uid"])
        mirror = self.mirrors.get(action_uid)
        if mirror is None:
            # Crash wiped the mirror (or nothing ever happened here): the
            # client's epoch check is responsible for safety; ack silently.
            respond(True, self._ok({"known": False}))
            return
        self._finish_action(mirror, payload["routes"])
        respond(True, self._ok({"known": True}))

    def _finish_action(self, mirror: ActionMirror, routes: List[Dict[str, Any]]) -> None:
        """Apply per-colour commit routing to a mirror and retire it.

        Shared by the finish_commit handler and the delegated (piggybacked)
        prepare path, where the routing rides inside the prepare itself.
        """
        destinations: Dict[Colour, Optional[ActionMirror]] = {}
        for route in routes:
            colour = decode_colour(route["colour"])
            if route["dest"] is None:
                destinations[colour] = None
            else:
                destinations[colour] = self._mirror(
                    decode_action_context(route["dest"])
                )
        for colour, destination in sorted(
                destinations.items(), key=lambda item: item[0].uid):
            if destination is not None:
                mirror.bequeath(colour, destination)
            else:
                mirror.drop_colour(colour)
        self.registry.transfer_on_commit(
            mirror.uid, lambda colour: destinations.get(colour)
        )
        self.mirrors.pop(mirror.uid, None)
        self._retire_mirror(mirror, "committed")

    def _h_abort_action(self, message: Message, respond: Responder) -> None:
        """Undo and release everything this node holds for an action."""
        action_uid = decode_uid(message.payload["action_uid"])
        mirror = self.mirrors.pop(action_uid, None)
        if mirror is not None:
            for record in sorted(mirror.all_undo_records(),
                                 key=lambda r: r.seq, reverse=True):
                record.restore()
            self._retire_mirror(mirror, "aborted")
        self.registry.release_action(action_uid)
        respond(True, self._ok({"known": mirror is not None}))

    def _retire_mirror(self, mirror: ActionMirror, outcome: str) -> None:
        """Metrics for one action leaving this node: how long it pinned
        objects here (glued hand-offs show up as long holds)."""
        if self.obs is None:
            return
        self.obs.observe("mirror_lifetime",
                         self.kernel.now - mirror.created_tick,
                         node=self.node.name)
        self.obs.count("mirrors_retired_total", node=self.node.name,
                       outcome=outcome)

    # -- handlers: two-phase commit participant ----------------------------------------

    def _emit_vote(self, txn_id: str, vote: str, colour,
                   reason: str = "") -> None:
        if self.obs is not None:
            labels = {"txn": txn_id, "node": self.node.name,
                      "vote": vote, "colour": str(colour)}
            if reason:
                labels["reason"] = reason
            self.obs.emit("twopc.vote", **labels)

    def _h_txn_prepare(self, message: Message, respond: Responder) -> None:
        """Phase one: stabilise new states as shadows, log PREPARED, vote.

        Four fast-path extensions ride on the same wire kind:

        - ``read_only``: the participant's slice of the colour holds no
          writes — release its locks now, vote ``read-only`` and stay out
          of phase two entirely (nothing is logged; presumed abort covers
          every failure).
        - ``decide``/``fast_path``: the coordinator delegated the decision
          (one-phase commit, or the piggybacked decision on the last
          prepare of the round).  A commit vote here *is* the decision:
          log COMMITTED directly (flagged ``delegated``) and promote the
          shadows in the same step — no separate txn_commit round trip.
        - ``commute``: every update of the colour at this node belongs to
          a declared-commuting operation group — the coordinator decided
          *before* fan-out and this prepare carries the colour's redo op
          list; vote ``commute`` and locally apply the merged effects in
          the same step (see :meth:`_commute_prepare`).
        - ``finish``: commit routing for this node piggybacked on a
          delegated prepare, applied right after promotion when the
          committing colour is the node's entire involvement.

        ``forget`` lists (lazy acknowledgement of earlier delegated
        commits, R*-style) are absorbed on any prepare before voting.
        """
        payload = message.payload
        txn_id = payload["txn_id"]
        for old_txn in payload.get("forget", ()):
            self.forgotten.add(old_txn)
        action_uid = decode_uid(payload["action_uid"])
        colour = decode_colour(payload["colour"])
        if self.node.wal.last(
            "committed", where=lambda r: r.payload["txn_id"] == txn_id
        ) is not None:
            # Retransmission-safe piggyback: a retried prepare under a
            # fresh rpc id (reaper redelivery, a client retry after a lost
            # reply — possibly in a later epoch) finds the durable commit
            # and answers from it.  Never re-stabilise shadows or re-run
            # promotion: the shadow slot may meanwhile belong to a *later*
            # transaction, and the logged outcome must not be contradicted.
            vote = "commute" if payload.get("commute") else "commit"
            self._emit_vote(txn_id, vote, colour,
                            reason="duplicate-delivery")
            respond(True, self._ok({
                "vote": vote, "applied": False,
                "finished": (payload.get("finish") is not None
                             and action_uid not in self.mirrors),
            }))
            return
        expected_epoch = payload.get("expected_epoch")
        if (expected_epoch is not None and expected_epoch != self.node.epoch
                and not payload.get("commute")):
            # (the commute path survives a restart: its prepare carries a
            # redo op list, so it never refuses on a bumped epoch)
            self._emit_vote(txn_id, "refused", colour, reason="epoch-restart")
            respond(False, PrepareFailed(
                f"{self.node.name} restarted (epoch {self.node.epoch} != "
                f"{expected_epoch}); uncommitted state was lost"
            ))
            return
        if self.node.wal.last(
            "aborted", where=lambda r: r.payload["txn_id"] == txn_id
        ) is not None:
            # Presumed abort: the coordinator's txn_abort already landed
            # here — this prepare is a straggler (its spawn raced the
            # abort decision).  Voting rollback instead of preparing keeps
            # it from sitting in doubt with stabilised shadows forever.
            # A delegated prepare can race a forced abort (the coordinator
            # gave up on the reply and resolved via txn_outcome_query)
            # the same way; the check covers both.
            self._emit_vote(txn_id, "rollback", colour,
                            reason="presumed-abort-straggler")
            respond(True, self._ok({"vote": "rollback"}))
            return
        mirror = self.mirrors.get(action_uid)
        if payload.get("read_only"):
            self.registry.release_colour(action_uid, colour)
            if mirror is not None:
                mirror.drop_colour(colour)
                if (not mirror.undo and not mirror.op_undo
                        and not mirror.written
                        and not self.registry.objects_held_by(action_uid)):
                    self.mirrors.pop(action_uid, None)
                    self._retire_mirror(mirror, "read-only")
            if self.obs is not None:
                self.obs.count("twopc_fast_path_total", node=self.node.name,
                               kind="read_only")
            self._emit_vote(txn_id, "read-only", colour)
            respond(True, self._ok({"vote": "read-only"}))
            return
        if payload.get("commute"):
            self._commute_prepare(message, respond)
            return
        written = mirror.written.get(colour, {}) if mirror is not None else {}
        wanted = {decode_uid(raw) for raw in payload["object_uids"]}
        if not wanted.issubset(set(written)):
            self._emit_vote(txn_id, "refused", colour,
                            reason="write-set-lost")
            respond(False, PrepareFailed(
                f"{self.node.name} no longer holds the write set for "
                f"{txn_id} (crash or premature release)"
            ))
            return
        for object_uid in sorted(wanted):
            obj = written[object_uid]
            self.node.stable_store.write_shadow(obj.stored_state())
        if payload.get("decide"):
            kind = payload.get("fast_path", "one_phase")
            # The vote is the decision: one durable COMMITTED record
            # replaces the classic prepared/committed pair.  Logged before
            # promotion — recovery redoes the (idempotent) promotion from
            # the record's object list if we crash in between.
            self.node.wal.append(
                "committed", txn_id=txn_id, delegated=True,
                coordinator=message.src,
                action_uid=encode_uid(action_uid),
                object_uids=[encode_uid(u) for u in sorted(wanted)],
            )
            if self.obs is not None:
                self.obs.count("twopc_fast_path_total", node=self.node.name,
                               kind=kind)
            self._emit_vote(txn_id, "commit", colour)
            if self.obs is not None:
                self.obs.emit("twopc.decision", txn=txn_id,
                              decision="commit", fast_path=kind,
                              node=self.node.name, colour=str(colour))
            info = {"action_uid": action_uid, "colour": colour,
                    "object_uids": sorted(wanted)}
            self._apply_commit(txn_id, info, log_record=False)
            finished = False
            if payload.get("finish") is not None and mirror is not None:
                self._finish_action(mirror, payload["finish"])
                finished = True
            respond(True, self._ok({"vote": "commit", "applied": True,
                                    "finished": finished}))
            return
        self.node.wal.append(
            "prepared", txn_id=txn_id, coordinator=message.src,
            action_uid=encode_uid(action_uid),
            object_uids=[encode_uid(u) for u in sorted(wanted)],
        )
        self.prepared[txn_id] = {
            "action_uid": action_uid,
            "colour": colour,
            "object_uids": sorted(wanted),
            "since": self.kernel.now,
        }
        if self.obs is not None:
            self.obs.count("twopc_prepared_total", node=self.node.name,
                           colour=str(colour))
        self._emit_vote(txn_id, "commit", colour)
        respond(True, self._ok({"vote": "commit"}))

    # -- the commute path (coordination avoidance) -------------------------------------

    def _commute_prepare(self, message: Message, respond: Responder) -> None:
        """Commute path: local vote-and-apply with merged effects.

        The coordinator logged its COMMIT *before* fan-out — it may do so
        because every update of the colour belongs to a declared-commuting
        operation group (total, no failing preconditions at commit), so
        every participant's vote is guaranteed-yes.  The prepare carries
        the colour's full redo op list per object; this node folds the
        merged effects into committed state, logs one COMMITTED record
        (flagged ``delegated`` — the coordinator forgets it lazily, like a
        piggybacked decision), releases the colour's locks and leaves the
        protocol.  No phase two, no prepared window, no in-doubt state.

        A restarted participant (epoch mismatch) re-applies from the redo
        list in the message instead of refusing: the decision is already
        durable at the coordinator, so refusal could only delay the
        inevitable.  Duplicate deliveries (reaper redelivery after a lost
        reply) are absorbed by the COMMITTED dedupe guard upstream.
        """
        payload = message.payload
        txn_id = payload["txn_id"]
        colour = decode_colour(payload["colour"])
        expected_epoch = payload.get("expected_epoch")
        in_memory = (expected_epoch is None
                     or expected_epoch == self.node.epoch)
        mirror = self._mirror(decode_action_context(payload["action"]))
        ops_by_object: Dict[Uid, List[Tuple[str, list]]] = {}
        for raw_uid, raw_ops in payload["ops"].items():
            ops_by_object[decode_uid(raw_uid)] = [
                (method, list(args)) for method, args in raw_ops
            ]
        blocked = sorted(uid for uid in ops_by_object
                         if uid in self.in_doubt_objects)
        if blocked:
            # another transaction's in-doubt shadow fences these objects;
            # retryable — the coordinator's reaper redelivers once the
            # in-doubt resolver settles the slot
            respond(False, ClusterError(
                "objects in doubt pending transaction recovery: "
                + ", ".join(str(uid) for uid in blocked)
            ))
            return
        plan: List[Tuple[Uid, StateManager, list, Set[str]]] = []
        for object_uid in sorted(ops_by_object):
            try:
                obj = self._object(object_uid)
            except ObjectNotFound as error:
                respond(False, error)
                return
            spec = getattr(type(obj), "SEMANTICS", None)
            groups: Set[str] = set()
            for method_name, args in ops_by_object[object_uid]:
                method = getattr(type(obj), method_name, None)
                group = getattr(method, "__repro_group__", None)
                # defence in depth: the client checked eligibility, but a
                # local decision is only sound for declared-commuting ops
                if (group is None or spec is None
                        or not spec.is_commuting(group)):
                    self._emit_vote(txn_id, "refused", colour,
                                    reason="non-commuting")
                    respond(False, PrepareFailed(
                        f"{obj.type_name}.{method_name} is not a declared-"
                        f"commuting operation; commute decision refused"
                    ))
                    return
                groups.add(group)
            plan.append((object_uid, obj, ops_by_object[object_uid], groups))
        grants = [(object_uid, group)
                  for object_uid, _obj, _ops, obj_groups in plan
                  for group in sorted(obj_groups)]

        def acquire(index: int) -> None:
            # re-entrant (and therefore immediate) while the mirror still
            # holds the grants from execution; a real wait only happens on
            # a post-restart redo, where grants died with the epoch
            if index == len(grants):
                self._commute_apply(txn_id, mirror, colour, plan, payload,
                                    message.src, in_memory, respond)
                return
            object_uid, group = grants[index]

            def completed(request: LockRequest) -> None:
                if request.status is not RequestStatus.GRANTED:
                    self._emit_vote(txn_id, "refused", colour,
                                    reason="redo-lock-lost")
                    respond(False, request.error or LockTimeout(
                        f"commute redo lock {group} on {object_uid}: "
                        f"{request.refusal}"
                    ))
                    return
                acquire(index + 1)

            self._locked_request(mirror, object_uid, group, colour, completed)

        acquire(0)

    def _commute_apply(self, txn_id: str, mirror: ActionMirror,
                       colour: Colour, plan: List, payload: Dict[str, Any],
                       coordinator: str, in_memory: bool,
                       respond: Responder) -> None:
        """Fold a commute colour's merged effects into committed state."""
        object_uids = [object_uid for object_uid, _, _, _ in plan]
        for object_uid, _obj, ops, _groups in plan:
            # merged stable state = committed image ⊕ this colour's ops,
            # computed on a scratch instance so pending effects of *other*
            # actions (alive only in the live instance) never leak into
            # the committed image
            scratch = self._scratch_instance(object_uid)
            for method_name, args in ops:
                self._apply_effect(scratch, method_name, args,
                                   committed_target=True)
            self.node.stable_store.write_shadow(scratch.stored_state())
        self.node.wal.append(
            "committed", txn_id=txn_id, delegated=True, commute=True,
            coordinator=coordinator,
            action_uid=encode_uid(mirror.uid),
            object_uids=[encode_uid(u) for u in object_uids],
        )
        if self.obs is not None:
            self.obs.count("twopc_fast_path_total", node=self.node.name,
                           kind="commute")
        self._emit_vote(txn_id, "commute", colour)
        if self.obs is not None:
            self.obs.emit(
                "twopc.decision", txn=txn_id, decision="commit",
                fast_path="commute", node=self.node.name,
                colour=str(colour), action=str(mirror.uid),
                groups=",".join(sorted(
                    {g for _u, _o, _ops, gs in plan for g in gs})),
            )
        info = {"action_uid": mirror.uid, "colour": colour,
                "object_uids": object_uids}
        # Promotion must NOT refresh live instances from committed state:
        # that would wipe other actions' pending in-memory commuting
        # effects on the same objects.  The live image is reconciled by
        # hand below instead.
        self._apply_commit(txn_id, info, log_record=False, refresh_live=False)
        for _object_uid, obj, ops, _groups in plan:
            for method_name, args in ops:
                method = getattr(type(obj), method_name)
                if in_memory:
                    # execution already ran the body on the live instance;
                    # settle commit-time bookkeeping only (e.g. an escrow
                    # credit becoming spendable)
                    hook = getattr(method, "__repro_committed__", None)
                    if hook is not None:
                        getattr(obj, hook)(*args)
                else:
                    # post-restart redo: the in-memory effect died with the
                    # old epoch — fold the full, already-settled effect in
                    self._apply_effect(obj, method_name, args,
                                       committed_target=False)
        # vote-and-apply: the colour leaves this node now — no phase two
        self.registry.release_colour(mirror.uid, colour,
                                     reason="commute-commit")
        finished = False
        if payload.get("finish") is not None:
            self._finish_action(mirror, payload["finish"])
            finished = True
        elif (not mirror.undo and not mirror.op_undo and not mirror.written
              and not self.registry.objects_held_by(mirror.uid)):
            self.mirrors.pop(mirror.uid, None)
            self._retire_mirror(mirror, "committed")
        respond(True, self._ok({"vote": "commute", "applied": True,
                                "finished": finished}))

    @staticmethod
    def _apply_effect(target: StateManager, method_name: str, args,
                      committed_target: bool) -> None:
        """Run one op's durable effect on ``target``.

        ``committed_target`` selects the merge method (just the committed
        delta, no reservation bookkeeping) for scratch instances; live
        instances being redone after a restart take the redo method (full
        effect, settled, no precondition) instead.  Both default to the
        operation body, which suffices for ops that are pure effects.
        """
        method = getattr(type(target), method_name)
        hook_attr = "__repro_merge__" if committed_target else "__repro_redo__"
        hook = getattr(method, hook_attr, None)
        if hook is not None:
            getattr(target, hook)(*args)
        else:
            method.__repro_body__(target, *args)

    def _scratch_instance(self, object_uid: Uid) -> StateManager:
        """A throwaway instance loaded from the committed state.

        Construction registers into ``self.objects`` (every constructor
        does); the live instance — which carries other actions' pending
        in-memory effects — is swapped back immediately, so the scratch
        never replaces it.
        """
        live = self.objects.get(object_uid)
        stored = self.node.stable_store.read_committed(object_uid)
        cls = self.classes.get(stored.type_name)
        if cls is None:
            raise ClusterError(f"no class registered for {stored.type_name!r}")
        scratch = cls(self.host, uid=object_uid, persist=False)
        if live is not None:
            self.objects[object_uid] = live
        else:
            self.objects.pop(object_uid, None)
        scratch.restore_snapshot(stored.payload)
        return scratch

    def _h_txn_commit(self, message: Message, respond: Responder) -> None:
        """Decision = commit: promote shadows, release the colour."""
        txn_id = message.payload["txn_id"]
        info = self.prepared.pop(txn_id, None)
        if info is None:
            # Either recovered already, or duplicate decision: consult the log.
            if self.node.wal.last(
                "committed", where=lambda r: r.payload["txn_id"] == txn_id
            ) is not None:
                respond(True, self._ok({"applied": False}))
                return
            info = self._prepared_from_log(txn_id)
            if info is None:
                respond(True, self._ok({"applied": False}))
                return
        self._apply_commit(txn_id, info)
        respond(True, self._ok({"applied": True}))

    def _h_txn_abort(self, message: Message, respond: Responder) -> None:
        """Decision = abort: discard shadows (undo restore comes with
        abort_action, which the coordinator sends separately).

        The ABORTED record is logged even when nothing was prepared here:
        a straggler prepare that arrives *after* this decision must find
        it and vote rollback (see :meth:`_h_txn_prepare`), not stabilise
        shadows for a transaction that is already dead.
        """
        txn_id = message.payload["txn_id"]
        info = self.prepared.pop(txn_id, None)
        if info is None:
            info = self._prepared_from_log(txn_id)
        if info is not None:
            for object_uid in info["object_uids"]:
                self.node.stable_store.discard_shadow(object_uid)
            if self.obs is not None:
                self.obs.count("twopc_aborted_total", node=self.node.name)
            for object_uid in info["object_uids"]:
                self.in_doubt_objects.discard(object_uid)
        self.in_doubt_txns.pop(txn_id, None)
        if self.node.wal.last(
            "aborted", where=lambda r: r.payload["txn_id"] == txn_id
        ) is None:  # reaper retries use fresh rpc ids; log once
            self.node.wal.append("aborted", txn_id=txn_id)
        if self.obs is not None:
            self.obs.emit("twopc.abort", txn=txn_id, node=self.node.name)
        respond(True, self._ok())

    def _h_txn_decision_query(self, message: Message, respond: Responder) -> None:
        """Coordinator side of recovery: presumed abort unless logged commit.

        For a *delegated* transaction the answer may live at the last
        agent, not here: presuming abort while the delegate committed
        would split the decision.  The reply is deferred until the
        outcome is resolved (the in-doubt participant keeps retrying, so
        a lost deferral costs nothing but another query).
        """
        txn_id = message.payload["txn_id"]
        committed = self.node.wal.last(
            "coord_commit", where=lambda r: r.payload["txn_id"] == txn_id
        )
        if committed is None:
            if self.node.wal.last(
                "coord_abort", where=lambda r: r.payload["txn_id"] == txn_id
            ) is not None:
                decision = "abort"
            else:
                delegated = self.node.wal.last(
                    "coord_delegated",
                    where=lambda r: r.payload["txn_id"] == txn_id,
                )
                if delegated is not None:
                    self.node.spawn(
                        self._answer_after_delegate(
                            txn_id, delegated.payload["last_agent"], respond),
                        name=f"delegated-query:{txn_id}",
                    )
                    return
                decision = "abort"
        else:
            decision = "commit"
        if self.obs is not None:
            self.obs.emit("twopc.decision_query", txn=txn_id,
                          decision=decision, node=self.node.name)
        respond(True, self._ok({"decision": decision}))

    def _answer_after_delegate(self, txn_id: str, last_agent: str,
                               respond: Responder):
        """Resolve a delegated transaction's outcome, then answer a query."""
        decision = yield from self._resolve_delegated_decision(txn_id, last_agent)
        if self.obs is not None:
            self.obs.emit("twopc.decision_query", txn=txn_id,
                          decision=decision, node=self.node.name)
        respond(True, self._ok({"decision": decision}))

    def _resolve_delegated_decision(self, txn_id: str, last_agent: str):
        """Learn (and durably record) a delegated transaction's outcome.

        Loops on ``txn_outcome_query`` to the last agent until it answers;
        its answer is definitive (it force-aborts when it never saw the
        delegated prepare).  Idempotent across concurrent resolvers.
        """
        while True:
            if self.node.wal.last(
                "coord_commit", where=lambda r: r.payload["txn_id"] == txn_id
            ) is not None:
                return "commit"
            if self.node.wal.last(
                "coord_abort", where=lambda r: r.payload["txn_id"] == txn_id
            ) is not None:
                return "abort"
            try:
                reply = yield from self.transport.call(
                    last_agent, "txn_outcome_query", {"txn_id": txn_id},
                    timeout=5.0, retries=1,
                )
            except Exception:
                yield Timeout(5.0)
                continue
            decision = reply["decision"]
            kind = "coord_commit" if decision == "commit" else "coord_abort"
            if self.node.wal.last(
                kind, where=lambda r: r.payload["txn_id"] == txn_id
            ) is None:
                self.node.wal.append(kind, txn_id=txn_id)
            return decision

    def _h_txn_outcome_query(self, message: Message, respond: Responder) -> None:
        """Last-agent side of delegated recovery: did the piggybacked
        decision ever land here?

        COMMITTED on the log answers commit; otherwise the transaction is
        dead — an ABORTED record is forced onto the log first, so a
        straggling delegated prepare arriving later hits the presumed-abort
        guard instead of committing a transaction already reported aborted.
        """
        txn_id = message.payload["txn_id"]
        if self.node.wal.last(
            "committed", where=lambda r: r.payload["txn_id"] == txn_id
        ) is not None:
            decision = "commit"
        else:
            decision = "abort"
            if self.node.wal.last(
                "aborted", where=lambda r: r.payload["txn_id"] == txn_id
            ) is None:
                self.node.wal.append("aborted", txn_id=txn_id)
        if self.obs is not None:
            self.obs.emit("twopc.decision_query", txn=txn_id,
                          decision=decision, node=self.node.name)
        respond(True, self._ok({"decision": decision}))

    def _apply_commit(self, txn_id: str, info: Dict[str, Any],
                      log_record: bool = True,
                      refresh_live: bool = True) -> None:
        self.in_doubt_txns.pop(txn_id, None)
        for object_uid in info["object_uids"]:
            self.node.stable_store.commit_shadow(object_uid)
            self.in_doubt_objects.discard(object_uid)
            # refresh any live instance from the committed state so later
            # activations and reads agree (skipped on the commute path,
            # which reconciles live instances op-by-op so other actions'
            # pending in-memory effects survive the promotion)
            obj = self.objects.get(object_uid)
            if refresh_live and obj is not None:
                stored = self.node.stable_store.read_committed(object_uid)
                obj.restore_snapshot(stored.payload)
        if log_record:
            self.node.wal.append("committed", txn_id=txn_id)
        if self.obs is not None:
            self.obs.count("twopc_committed_total", node=self.node.name)
            self.obs.emit(
                "twopc.commit", txn=txn_id, node=self.node.name,
                objects=",".join(str(u) for u in info["object_uids"]),
            )
        mirror = self.mirrors.get(info["action_uid"]) if info.get("action_uid") else None
        colour = info.get("colour")
        if mirror is not None and colour is not None:
            mirror.drop_colour(colour)

    def _prepared_from_log(self, txn_id: str) -> Optional[Dict[str, Any]]:
        record = self.node.wal.last(
            "prepared", where=lambda r: r.payload["txn_id"] == txn_id
        )
        if record is None:
            return None
        return {
            "action_uid": decode_uid(record.payload["action_uid"]),
            "colour": None,
            "object_uids": [decode_uid(raw) for raw in record.payload["object_uids"]],
        }

    # -- introspection -----------------------------------------------------------------

    def status_summary(self) -> Dict[str, Any]:
        """The live :class:`ServerStatus` image served to ``status_query``.

        One synchronous pass over the volatile structures — lock registry,
        action mirrors, prepared/in-doubt transactions — plus the stable
        log's shape.  Strictly read-only: no locks are taken, nothing is
        activated or mutated, so probing a server mid-protocol can never
        perturb the protocol (the introspection layer's contract).
        """
        now = self.kernel.now
        wal = self.node.wal.summary()
        checkpoint = self.node.wal.last("checkpoint")
        wal["checkpoint_lsn"] = checkpoint.lsn if checkpoint is not None else 0
        in_flight = []
        for txn_id in sorted(self.prepared):
            info = self.prepared[txn_id]
            object_uids = info.get("object_uids", [])
            in_doubt = any(uid in self.in_doubt_objects for uid in object_uids)
            in_flight.append({
                "txn": txn_id,
                "phase": "in-doubt" if in_doubt else "prepared",
                "colour": str(info["colour"]) if info.get("colour") else "",
                "action": (str(info["action_uid"])
                           if info.get("action_uid") else ""),
                "objects": len(object_uids),
                "age": now - info.get("since", now),
            })
        for txn_id in sorted(self.in_doubt_txns):
            if txn_id in self.prepared:
                continue
            info = self.in_doubt_txns[txn_id]
            in_flight.append({
                "txn": txn_id,
                "phase": "in-doubt",
                "colour": "",
                "action": "",
                "coordinator": info.get("coordinator", ""),
                "objects": len(info.get("object_uids", [])),
                "age": now - info.get("since", now),
            })
        mirrors = [
            {
                "action": str(mirror.uid),
                "name": f"caction-{mirror.uid.sequence}",
                "home": mirror.home,
                "colours": sorted(str(c) for c in mirror.colours),
                "depth": len(mirror.path),
                "age": now - mirror.created_tick,
            }
            for uid in sorted(self.mirrors)
            for mirror in (self.mirrors[uid],)
        ]
        return {
            "node": self.node.name,
            "epoch": self.node.epoch,
            "now": now,
            "wal": wal,
            "objects": len(self.objects),
            "locks": self.registry.snapshot(),
            "mirrors": mirrors,
            "in_flight": in_flight,
            "in_doubt_objects": sorted(str(u) for u in self.in_doubt_objects),
            "forgotten": len(self.forgotten),
            "invocations": self.invocations,
            "lock_waits": self.lock_waits,
            "pending_rpcs": self.transport.pending_count(),
        }

    def _h_status_query(self, message: Message, respond: Responder) -> None:
        """Introspection probe: answer with the live state image, read-only.

        Responds synchronously — a status query never waits on locks or
        other transactions, so a probe cannot deadlock with (or delay) the
        workload it is observing.
        """
        respond(True, self._ok({"status": self.status_summary()}))

    # -- log management ---------------------------------------------------------------

    def checkpoint(self) -> Dict[str, int]:
        """Truncate the write-ahead log to the undecided suffix.

        A PREPARED record is only needed until its transaction's decision
        is also on the log; decided pairs (and stray decision records) can
        be dropped.  Returns {"dropped": n, "kept": m} for observability.
        The checkpoint itself is a log record, so recovery after a
        checkpoint sees a well-formed log.
        """
        decided = set()
        ended = set()
        coord_decided = set()
        for record in self.node.wal.records():
            if record.kind in ("committed", "aborted"):
                decided.add(record.payload["txn_id"])
            elif record.kind == "coord_end":
                ended.add(record.payload["txn_id"])
            elif record.kind in ("coord_commit", "coord_abort"):
                coord_decided.add(record.payload["txn_id"])
        needed_lsns = []
        for record in self.node.wal.records("prepared"):
            if record.payload["txn_id"] not in decided:
                needed_lsns.append(record.lsn)
        # a delegated COMMITTED record is the *only* durable copy of the
        # decision until the coordinator acknowledges it (a piggybacked
        # forget on a later prepare); keep it queryable until then
        for record in self.node.wal.records("committed"):
            if (record.payload.get("delegated")
                    and record.payload["txn_id"] not in self.forgotten):
                needed_lsns.append(record.lsn)
        # a coordinator's COMMIT decision must stay queryable until every
        # participant acked (coord_end)
        for record in self.node.wal.records("coord_commit"):
            if record.payload["txn_id"] not in ended:
                needed_lsns.append(record.lsn)
        # an unresolved delegation: the outcome still lives at the last
        # agent; the record names it for decision queries after a crash
        for record in self.node.wal.records("coord_delegated"):
            if record.payload["txn_id"] not in coord_decided:
                needed_lsns.append(record.lsn)
        marker = self.node.wal.append("checkpoint", decided=len(decided))
        horizon = min(needed_lsns) if needed_lsns else marker.lsn
        dropped = self.node.wal.truncate_before(horizon)
        # forget bookkeeping for records that just left the log
        remaining = {record.payload["txn_id"]
                     for record in self.node.wal.records("committed")
                     if record.payload.get("delegated")}
        self.forgotten &= remaining
        return {"dropped": dropped, "kept": len(self.node.wal)}

    # -- recovery ---------------------------------------------------------------------

    def _recover(self) -> None:
        """Restart: resolve in-doubt transactions from the log (presumed abort).

        PREPARED records without a matching COMMITTED/ABORTED are in doubt;
        their objects are fenced off until the coordinator answers.
        """
        if self.obs is not None:
            self.obs.emit("node.restart", node=self.node.name)
        self.objects = {}
        self.registry = LockRegistry(ColouredRules(), namespace=f"lreq@{self.node.name}")
        self.registry.on_event = self._emit_lock_event
        self.detector = DeadlockDetector(self.registry)
        self.mirrors = {}
        self.prepared = {}
        self.in_doubt_objects = set()
        self.in_doubt_txns = {}
        self.forgotten = set()
        decided = set()
        coord_decided = set()
        for record in self.node.wal.records():
            if record.kind in ("committed", "aborted"):
                decided.add(record.payload["txn_id"])
            elif record.kind in ("coord_commit", "coord_abort"):
                coord_decided.add(record.payload["txn_id"])
        # redo delegated commits: the COMMITTED record may precede the
        # promotion (we log before applying).  The shadow slot is
        # single-occupancy per object, so promote only when this record
        # is the object's *latest* shadow writer — a later transaction
        # may have re-prepared the object, and promoting its shadow here
        # would commit a transaction that never decided.
        last_shadow_writer: Dict[Uid, str] = {}
        for record in self.node.wal.records():
            if record.kind == "prepared" or (
                    record.kind == "committed"
                    and record.payload.get("delegated")):
                for raw in record.payload.get("object_uids", ()):
                    last_shadow_writer[decode_uid(raw)] = (
                        record.payload["txn_id"])
        for record in self.node.wal.records("committed"):
            if record.payload.get("delegated"):
                txn_id = record.payload["txn_id"]
                for raw in record.payload.get("object_uids", ()):
                    object_uid = decode_uid(raw)
                    if last_shadow_writer.get(object_uid) == txn_id:
                        self.node.stable_store.commit_shadow(object_uid)
        # resolve delegations whose outcome we never learned, so decision
        # queries from in-doubt participants get a real answer
        for record in self.node.wal.records("coord_delegated"):
            txn_id = record.payload["txn_id"]
            if txn_id in coord_decided:
                continue
            self.node.spawn(
                self._resolve_delegated_decision(
                    txn_id, record.payload["last_agent"]),
                name=f"resolve-delegated:{txn_id}",
            )
        pending: List[Tuple[str, str, List[Uid]]] = []
        for record in self.node.wal.records("prepared"):
            txn_id = record.payload["txn_id"]
            if txn_id in decided:
                continue
            object_uids = [decode_uid(raw) for raw in record.payload["object_uids"]]
            pending.append((txn_id, record.payload["coordinator"], object_uids))
        if self.obs is not None:
            self.obs.count("recovery_replays_total", node=self.node.name)
            if pending:
                self.obs.count("recovery_in_doubt_total", len(pending),
                               node=self.node.name)
        for txn_id, coordinator, object_uids in pending:
            self.in_doubt_objects.update(object_uids)
            self.in_doubt_txns[txn_id] = {
                "coordinator": coordinator,
                "object_uids": list(object_uids),
                "since": self.kernel.now,
            }
            self.node.spawn(
                self._resolve_in_doubt(txn_id, coordinator, object_uids),
                name=f"resolve:{txn_id}",
            )

    def _resolve_in_doubt(self, txn_id: str, coordinator: str,
                          object_uids: List[Uid]):
        """Query the coordinator until a decision arrives, then apply it."""
        while True:
            try:
                reply = yield from self.transport.call(
                    coordinator, "txn_decision_query", {"txn_id": txn_id},
                    timeout=5.0, retries=1,
                )
            except Exception:
                yield Timeout(5.0)
                continue
            decision = reply["decision"]
            info = {"action_uid": None, "colour": None, "object_uids": object_uids}
            if decision == "commit":
                self._apply_commit(txn_id, info)
            else:
                for object_uid in object_uids:
                    self.node.stable_store.discard_shadow(object_uid)
                self.node.wal.append("aborted", txn_id=txn_id)
                if self.obs is not None:
                    self.obs.emit("twopc.abort", txn=txn_id,
                                  node=self.node.name)
            for object_uid in object_uids:
                self.in_doubt_objects.discard(object_uid)
            self.in_doubt_txns.pop(txn_id, None)
            return decision
