"""Compensation over the cluster (§3.4, distributed).

Same contract as :class:`repro.structures.compensation.CompensationScope`,
in generator form: register a compensator per committed piece of work; if
the governing action ends up aborted, :meth:`settle` runs each compensator
inside a fresh top-level cluster action, in reverse registration order.

Explicitness note: the local scope hooks action outcome listeners; cluster
application code is generator-structured, so the scope is settled
explicitly (``yield from scope.settle()``) — typically in the ``finally``
of the application's own try block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.actions.status import ActionStatus, Outcome
from repro.cluster.client import ClusterAction, ClusterClient

#: compensator factory: given its fresh top-level action, returns the
#: generator body to run under it.
CompensatorFactory = Callable[[ClusterAction], object]


@dataclass
class ClusterCompensationRecord:
    description: str
    factory: CompensatorFactory
    ran: bool = False
    outcome: Optional[Outcome] = None


class ClusterCompensationScope:
    """Compensators armed against one governing cluster action."""

    def __init__(self, client: ClusterClient, governing: ClusterAction):
        self.client = client
        self.governing = governing
        self.records: List[ClusterCompensationRecord] = []

    def register(self, description: str,
                 factory: CompensatorFactory) -> ClusterCompensationRecord:
        record = ClusterCompensationRecord(description, factory)
        self.records.append(record)
        return record

    def discard(self, record: ClusterCompensationRecord) -> None:
        if record in self.records:
            self.records.remove(record)

    def settle(self):
        """Generator: run the compensators iff the governing action aborted.

        Each compensator runs in its own top-level action; one failing
        (its action aborts) does not stop the rest.
        """
        if self.governing.status is not ActionStatus.ABORTED:
            self.records = []
            return []
        pending, self.records = list(self.records), []
        for record in reversed(pending):
            action = self.client.top_level(f"compensate:{record.description}")
            try:
                yield from self.client.run_scope(
                    action, record.factory(action)
                )
                record.outcome = Outcome.COMMITTED
            except Exception:  # noqa: BLE001 - best effort per item
                record.outcome = Outcome.ABORTED
            record.ran = True
        return list(reversed(pending))
