"""Client-side action coordination for the cluster.

Application code runs as simulation processes on some node and drives
actions through a :class:`ClusterClient`.  All of the cluster API is
generator-based: ``yield from client.invoke(...)`` etc.

The client holds the authoritative action tree (it created it), so all
commit routing decisions are made here, mirroring
:meth:`repro.actions.action.Action.commit`: for each colour, locks and undo
responsibility go to the closest same-coloured ancestor (a ``transfer``
route in the ``finish_commit`` message), or — when the committing action is
outermost for the colour — the colour's write set is made permanent with a
presumed-abort two-phase commit across the object servers involved, and
its locks are released.

Safety against server crashes: the epoch of every server is recorded when
an action first touches it; replies bearing a different epoch, and prepare
phases reaching a restarted server, abort the action — its volatile undo
and locks on that server died with the old epoch.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.actions.status import ActionStatus, Outcome
from repro.cluster.deadlock import clear_waiting, mark_waiting
from repro.cluster.message import (
    encode_action_context,
    encode_colour,
    encode_uid,
    decode_uid,
)
from repro.cluster.node import Node
from repro.cluster.transport import RpcTransport
from repro.colours.colour import Colour, colour_set
from repro.errors import (
    ActionAborted,
    ClusterError,
    CommitError,
    DeadlockDetected,
    InvalidActionState,
    LockRefused,
    LockTimeout,
    NodeDown,
    PrepareFailed,
    RpcTimeout,
)
from repro.locking.modes import LockMode
from repro.sim.kernel import Timeout, all_of, settle_all
from repro.util.uid import Uid, UidGenerator


@dataclass(frozen=True)
class ObjectRef:
    """A handle to an object hosted on some node."""

    node: str
    uid: Uid
    type_name: str


class ClusterAction:
    """Client-side action record: identity, tree links, involvement maps."""

    def __init__(self, uid: Uid, colours: Iterable[Colour],
                 parent: Optional["ClusterAction"] = None, name: str = "",
                 home: str = ""):
        self.uid = uid
        #: node this action's client runs on (deadlock probes route here)
        self.home = home or (parent.home if parent is not None else "")
        self.colours: FrozenSet[Colour] = colour_set(colours)
        if not self.colours:
            raise InvalidActionState("an action needs at least one colour")
        self.parent = parent
        self.name = name or f"caction-{uid.sequence}"
        self.status = ActionStatus.ACTIVE
        self.children: List["ClusterAction"] = []
        self.path: Tuple[Uid, ...] = (parent.path + (uid,)) if parent else (uid,)
        #: colour -> nodes where this action holds locks of that colour
        self.involved: Dict[Colour, Set[str]] = {}
        #: colour -> nodes where this action has written objects
        self.write_nodes: Dict[Colour, Set[str]] = {}
        #: colour -> node -> object uids written there
        self.written: Dict[Colour, Dict[str, Set[Uid]]] = {}
        #: node -> epoch at first involvement
        self.server_epochs: Dict[str, int] = {}
        #: node -> colours released early by a read-only vote (the node is
        #: out of phase two for those colours)
        self.vote_released: Dict[str, Set[Colour]] = {}
        #: colour -> node -> object uid -> [(method, args)] for updates in
        #: declared-commuting operation groups: the redo log the commute
        #: path ships inside its single-round decision
        self.commute_ops: Dict[Colour, Dict[str, Dict[Uid, List[Tuple[str, list]]]]] = {}
        #: colours that picked up a non-commuting update (plain WRITE or a
        #: semantic group without a commuting declaration) — they fall back
        #: to classic/fast-path 2PC, whatever else they contain
        self.commute_blocked: Set[Colour] = set()
        #: nodes whose finish/transfer routing rode a delegated prepare
        #: (one-phase / piggybacked decision) — no finish_commit needed
        self.finished_nodes: Set[str] = set()
        self.default_colour: Optional[Colour] = None
        self.companion_colour: Optional[Colour] = None
        if parent is not None:
            parent.children.append(self)

    def lock_colour(self, requested: Optional[Colour] = None) -> Colour:
        if requested is not None:
            return requested
        if self.default_colour is not None:
            return self.default_colour
        if len(self.colours) == 1:
            return next(iter(self.colours))
        raise InvalidActionState(f"{self.name}: multi-coloured; name a colour")

    def closest_ancestor_with(self, colour: Colour) -> Optional["ClusterAction"]:
        ancestor = self.parent
        while ancestor is not None:
            if colour in ancestor.colours:
                return ancestor
            ancestor = ancestor.parent
        return None

    def note_lock(self, colour: Colour, node: str) -> None:
        self.involved.setdefault(colour, set()).add(node)

    def note_write(self, colour: Colour, node: str, object_uid: Uid) -> None:
        self.note_lock(colour, node)
        self.write_nodes.setdefault(colour, set()).add(node)
        self.written.setdefault(colour, {}).setdefault(node, set()).add(object_uid)

    def note_commute_op(self, colour: Colour, node: str, object_uid: Uid,
                        method: str, args: list) -> None:
        """Record a successfully applied commuting update for redo."""
        self.commute_ops.setdefault(colour, {}).setdefault(
            node, {}).setdefault(object_uid, []).append((method, list(args)))

    def block_commute(self, colour: Colour) -> None:
        """A non-commuting update joined the colour: classic 2PC from here."""
        self.commute_blocked.add(colour)

    def all_nodes(self) -> Set[str]:
        nodes: Set[str] = set()
        for per_colour in self.involved.values():
            nodes |= per_colour
        return nodes

    def colours_at(self, node: str) -> Set[Colour]:
        """The colours in which this action is involved at ``node``."""
        return {colour for colour, nodes in self.involved.items()
                if node in nodes}

    def check_epoch(self, node: str, epoch: int) -> None:
        recorded = self.server_epochs.setdefault(node, epoch)
        if recorded != epoch:
            raise ActionAborted(
                self.uid,
                f"server {node} restarted (epoch {recorded} -> {epoch}); "
                f"uncommitted state there was lost",
            )

    def __repr__(self) -> str:
        return f"<ClusterAction {self.name} {self.status.value}>"


class ClusterClient:
    """Action factory and operation API for one client process on a node."""

    def __init__(self, node: Node, transport: RpcTransport,
                 action_uids: UidGenerator, colour_allocator,
                 class_registry: Dict[str, type], name: str = "client",
                 observability=None, fast_paths: bool = True,
                 commute: bool = True, backend=None):
        self.node = node
        #: the execution backend this client schedules on (reaper spawns,
        #: commit fan-outs, abort timers).  ``None`` keeps the node's own
        #: kernel — the pre-backend behaviour; a Cluster always passes its
        #: backend so client and servers share one loop and one clock.
        self.backend = backend
        self.kernel = backend.kernel if backend is not None else node.kernel
        self.transport = transport
        self.name = name
        self.obs = observability
        #: commit-protocol fast paths (piggybacked decision, read-only
        #: votes, one-phase commit); False runs the classic protocol only
        self.fast_paths = fast_paths
        #: commutativity-based coordination avoidance: fully-commuting
        #: colours commit in one local-decision round (see _commute_commit)
        self.commute = commute
        self._action_uids = action_uids
        self._colours = colour_allocator
        self._classes = class_registry
        self._txn_seq = itertools.count(1)
        #: node -> delegated txn_ids whose commit outcome is durably ours;
        #: acknowledged lazily by riding the next prepare to that node, so
        #: the delegate's checkpoint can drop its COMMITTED record
        self._pending_forget: Dict[str, List[str]] = {}
        #: tracing/metrics observers (see repro.trace) — notified on action
        #: creation and termination
        self.observers: list = []
        # -- coordinator-side view, read by the introspection layer --------
        #: uid -> live (untermined) ClusterAction; the client half of the
        #: "no txn a server thinks is in-flight that the client thinks is
        #: finished" cross-check
        self.live_actions: Dict[Uid, ClusterAction] = {}
        #: txn_id -> {"state": decided|delegated|ended, "tick": when};
        #: mirrors the coordinator WAL's decision records with timestamps
        self.txn_log: Dict[str, Dict[str, Any]] = {}
        #: node -> termination reapers currently retrying against it
        self.reaper_backlog: Dict[str, int] = {}

    def add_observer(self, observer) -> None:
        self.observers.append(observer)

    def _op_span(self, action: "ClusterAction", name: str, **attrs):
        """A client-side span parented on the action's span (or None)."""
        if self.obs is None:
            return None
        return self.obs.span(name, parent=getattr(action, "_obs_span", None),
                             kind="client", node=self.node.name, **attrs)

    @staticmethod
    def _failure_cause(error: BaseException) -> str:
        """Postmortem taxonomy bucket for an operation failure (see
        ``repro.obs.postmortem``): why did this call against an action
        fail?"""
        if isinstance(error, DeadlockDetected):
            return "deadlock-victim"
        if isinstance(error, (LockTimeout, LockRefused)):
            return "lock-conflict"
        if isinstance(error, ActionAborted):
            if "restarted (epoch" in str(error):
                return "server-restart"
            return "action-aborted"
        if isinstance(error, RpcTimeout):
            return "rpc-timeout"
        if isinstance(error, NodeDown):
            return "node-down"
        if isinstance(error, CommitError):
            return "commit-failed"
        return "app-error"

    @staticmethod
    def _round_failure_cause(votes, failure: Optional[BaseException]) -> str:
        """Why did a prepare round fail: a real no-vote, or a casualty?"""
        if any(v not in (None, "commit") for v in votes):
            return "vote-rollback"
        if isinstance(failure, PrepareFailed):
            return "prepare-refused"
        if isinstance(failure, ActionAborted):
            return "action-aborted"
        if failure is not None:  # RpcTimeout, NodeDown, other ClusterError
            return "participant-unreachable"
        return "vote-rollback"

    def _note_failure(self, action: ClusterAction, error: BaseException,
                      op: str, dst: str = "", object_uid: Any = "",
                      colour: Optional[Colour] = None) -> None:
        """Publish an ``action.failure`` event: the causal record the
        postmortem engine attributes aborts from."""
        if self.obs is None:
            return
        self.obs.emit(
            "action.failure", action=str(action.uid), op=op,
            cause=self._failure_cause(error),
            error=type(error).__name__, detail=str(error),
            dst=dst, object=str(object_uid) if object_uid else "",
            colour=str(colour) if colour is not None else "",
            node=self.node.name,
        )

    def _notify_created(self, action: ClusterAction) -> ClusterAction:
        self.live_actions[action.uid] = action
        for observer in self.observers:
            observer.on_action_created(action)
        return action

    def _notify_terminated(self, action: ClusterAction) -> None:
        self.live_actions.pop(action.uid, None)
        for observer in self.observers:
            observer.on_action_terminated(action)

    def _note_txn(self, txn_id: str, state: str) -> None:
        """Record a coordinator-side transaction transition for introspection.

        Tracks what this client believes about each transaction it drove
        (``decided`` — commit/abort logged here; ``delegated`` — outcome
        durable at the last agent; ``ended`` — every participant acked).
        The ClusterInspector cross-checks these against what servers report
        as still in flight; an ``ended``/long-``decided`` transaction a
        server still holds prepared is a drift.
        """
        self.txn_log[txn_id] = {"state": state, "tick": self.kernel.now}

    # -- action factories -----------------------------------------------------

    def top_level(self, name: str = "") -> ClusterAction:
        colour = self._colours.fresh(f"{name or 'top'}.colour")
        return self._notify_created(ClusterAction(
            self._action_uids.fresh(), [colour], None, name,
            home=self.node.name,
        ))

    def atomic(self, parent: ClusterAction, name: str = "") -> ClusterAction:
        return self._notify_created(ClusterAction(
            self._action_uids.fresh(), parent.colours, parent, name,
            home=self.node.name,
        ))

    def coloured(self, colours: Iterable[Colour],
                 parent: Optional[ClusterAction] = None,
                 name: str = "") -> ClusterAction:
        return self._notify_created(ClusterAction(
            self._action_uids.fresh(), colours, parent, name,
            home=self.node.name,
        ))

    def independent_top_level(self, parent: ClusterAction,
                              name: str = "independent") -> ClusterAction:
        colour = self._colours.fresh(f"{name}.colour")
        return self._notify_created(ClusterAction(
            self._action_uids.fresh(), [colour], parent, name,
            home=self.node.name,
        ))

    def fresh_colour(self, name: str = "") -> Colour:
        return self._colours.fresh(name)

    # -- object operations (generators) ------------------------------------------

    def create(self, node_name: str, type_name: str, *args: Any,
               **kwargs: Any):
        """Create an object on a node (non-transactional); returns ObjectRef."""
        reply = yield from self.transport.call(node_name, "create", {
            "type_name": type_name, "args": list(args), "kwargs": kwargs,
        })
        return ObjectRef(node_name, decode_uid(reply["object_uid"]), type_name)

    def invoke(self, action: ClusterAction, ref: ObjectRef, method: str,
               *args: Any, colour: Optional[Colour] = None):
        """Run an @operation on a remote object within ``action``."""
        self._require_active(action)
        chosen = action.lock_colour(colour)
        self._check_colour(action, chosen)
        _lock_key, is_update, is_semantic, is_commuting = self._operation_kind(
            ref.type_name, method
        )
        span = self._op_span(action, f"invoke:{method}", dst=ref.node,
                             object=str(ref.uid), colour=str(chosen))
        mark_waiting(self.node, action.uid, ref.node)
        try:
            reply = yield from self.transport.call(ref.node, "invoke", {
                "action": encode_action_context(action),
                "object_uid": encode_uid(ref.uid),
                "method": method,
                "args": list(args),
                "colour": encode_colour(chosen),
            }, trace_parent=span)
        except (RpcTimeout, ActionAborted) as error:
            self._note_failure(action, error, op=f"invoke:{method}",
                               dst=ref.node, object_uid=ref.uid,
                               colour=chosen)
            yield from self.abort(action)
            raise
        except Exception as error:
            # server-reported failures (lock refusals, deadlock victims,
            # app exceptions) propagate to the caller without auto-abort;
            # record the cause so the eventual abort is attributable
            self._note_failure(action, error, op=f"invoke:{method}",
                               dst=ref.node, object_uid=ref.uid,
                               colour=chosen)
            raise
        finally:
            clear_waiting(self.node, action.uid)
            if span is not None:
                span.finish()
        action.note_lock(chosen, ref.node)
        if is_update:
            action.note_write(chosen, ref.node, ref.uid)
            if is_commuting:
                # applied and totally ordered-free: remember the op so the
                # commute path can redo it against committed state
                action.note_commute_op(chosen, ref.node, ref.uid,
                                       method, list(args))
            else:
                action.block_commute(chosen)
        try:
            action.check_epoch(ref.node, reply["epoch"])
        except ActionAborted as error:
            # The server restarted under us; the grant we just received is
            # on the new epoch — the abort below reaches it.
            self._note_failure(action, error, op=f"invoke:{method}",
                               dst=ref.node, object_uid=ref.uid,
                               colour=chosen)
            yield from self.abort(action)
            raise
        if action.companion_colour is not None and action.companion_colour != chosen:
            if is_semantic:
                from repro.objects.semantic import RETAIN_GROUP
                shadow = RETAIN_GROUP
            else:
                shadow = (LockMode.READ if not is_update
                          else LockMode.EXCLUSIVE_READ)
            yield from self.lock(action, ref, shadow,
                                 colour=action.companion_colour)
        return reply["result"]

    def lock(self, action: ClusterAction, ref: ObjectRef, mode,
             colour: Optional[Colour] = None):
        """Explicitly lock a remote object (hand-over pins etc.).

        ``mode`` is a :class:`LockMode` for ordinary objects or an
        operation-group name (str) for semantic objects.
        """
        self._require_active(action)
        chosen = action.lock_colour(colour)
        self._check_colour(action, chosen)
        mode_label = mode.value if hasattr(mode, "value") else str(mode)
        span = self._op_span(action, f"lock:{mode_label}", dst=ref.node,
                             object=str(ref.uid), colour=str(chosen))
        mark_waiting(self.node, action.uid, ref.node)
        try:
            reply = yield from self.transport.call(ref.node, "lock", {
                "action": encode_action_context(action),
                "object_uid": encode_uid(ref.uid),
                "mode": mode_label,
                "colour": encode_colour(chosen),
            }, trace_parent=span)
        except (RpcTimeout, ActionAborted) as error:
            self._note_failure(action, error, op=f"lock:{mode_label}",
                               dst=ref.node, object_uid=ref.uid,
                               colour=chosen)
            yield from self.abort(action)
            raise
        except Exception as error:
            self._note_failure(action, error, op=f"lock:{mode_label}",
                               dst=ref.node, object_uid=ref.uid,
                               colour=chosen)
            raise
        finally:
            clear_waiting(self.node, action.uid)
            if span is not None:
                span.finish()
        action.note_lock(chosen, ref.node)
        if mode is LockMode.WRITE:
            action.note_write(chosen, ref.node, ref.uid)
            # an explicit WRITE pin has no redo operation: classic 2PC
            action.block_commute(chosen)
        try:
            action.check_epoch(ref.node, reply["epoch"])
        except ActionAborted as error:
            self._note_failure(action, error, op=f"lock:{mode_label}",
                               dst=ref.node, object_uid=ref.uid,
                               colour=chosen)
            yield from self.abort(action)
            raise
        return True

    # -- termination ---------------------------------------------------------------

    def commit(self, action: ClusterAction):
        """Commit: per-colour 2PC or transfer, then one batched finish per
        server.

        A single permanent colour runs the classic prepare round
        (:meth:`_two_phase_commit`); several permanent colours share one
        *batched* prepare fan-out — per server, every colour's
        ``txn_prepare`` rides in one ``call_many`` message
        (:meth:`_batched_prepare`) — before the decision broadcasts and the
        finish/transfer routing are merged into a single parallel fan-out,
        one network message per involved server.  Termination cost is thus
        bounded by the slowest server, not the sum over colours or servers
        (see :meth:`_finish_commit`).
        """
        self._require_active(action)
        yield from self._settle_children(action)
        action.status = ActionStatus.COMMITTING
        span = self._op_span(action, "commit")
        routes: Dict[Colour, Optional[ClusterAction]] = {}
        #: commit decisions logged but not yet delivered: (txn_id, nodes)
        decided: List[Tuple[str, Set[str]]] = []
        #: colours this action is outermost for, with pending writes
        permanent: List[Tuple[Colour, Dict[str, Set[Uid]]]] = []
        ordered = sorted(action.colours, key=lambda c: c.uid)
        for colour in ordered:
            destination = action.closest_ancestor_with(colour)
            routes[colour] = destination
            if self.obs is not None:
                self.obs.emit(
                    "commit.route", action=str(action.uid),
                    colour=str(colour),
                    dest=(str(destination.uid) if destination is not None
                          else ""),
                    node=self.node.name,
                )
            if destination is not None:
                self._bequeath(action, colour, destination)
                if self.obs is not None:
                    # §5.2: locks and undo responsibility are inherited by
                    # the closest same-coloured ancestor, not made permanent
                    self.obs.count("colour_inherited_total",
                                   colour=str(colour))
                continue
            write_map = action.written.get(colour, {})
            if not write_map:
                continue
            permanent.append((colour, write_map))
        failed_colour: Optional[Colour] = None
        index = 0
        while index < len(permanent) and failed_colour is None:
            colour, write_map = permanent[index]
            if self._commute_eligible(action, colour, write_map):
                # fully-commuting colour: one guaranteed-commit round, no
                # prepare phase, nothing left for the finish fan-out
                yield from self._commute_commit(action, colour, write_map,
                                                parent_span=span)
                if self.obs is not None:
                    self.obs.count("colour_permanent_total",
                                   colour=str(colour))
                index += 1
                continue
            # maximal run of classic colours, preserving colour-order
            # failure semantics: a failure cascades over later colours
            run: List[Tuple[Colour, Dict[str, Set[Uid]]]] = []
            while index < len(permanent) and not self._commute_eligible(
                    action, *permanent[index]):
                run.append(permanent[index])
                index += 1
            if len(run) == 1:
                colour, write_map = run[0]
                result = yield from self._two_phase_commit(
                    action, colour, write_map, parent_span=span)
                if result is None:
                    failed_colour = colour
                else:
                    decided.append(result)
                    if self.obs is not None:
                        self.obs.count("colour_permanent_total",
                                       colour=str(colour))
            else:
                newly_decided, failed_colour = yield from self._batched_prepare(
                    action, run, parent_span=span)
                for txn_id, parts, colour in newly_decided:
                    decided.append((txn_id, parts))
                    if self.obs is not None:
                        self.obs.count("colour_permanent_total",
                                       colour=str(colour))
        if failed_colour is not None:
            action.status = ActionStatus.ACTIVE  # let abort run normally
            if span is not None:
                span.set(outcome="2pc-failed").finish()
            self._note_failure(
                action,
                CommitError(f"two-phase commit of colour {failed_colour} "
                            f"failed"),
                op="commit", colour=failed_colour)
            if decided:
                # Earlier colours already decided commit; per-colour
                # permanence means their updates survive the abort of
                # the remaining colours — deliver those decisions
                # before abort_action undoes anything.
                yield from self._broadcast_decisions(action, decided)
            yield from self.abort(action)
            raise CommitError(
                f"{action.name}: two-phase commit of colour "
                f"{failed_colour} failed"
            )
        yield from self._finish_commit(action, routes, decided,
                                       parent_span=span)
        if span is not None:
            span.set(outcome="committed").finish()
        if self.obs is not None and span is not None:
            # per-colour commit latency: the whole termination protocol
            # (prepare rounds + decision/finish fan-out) as one histogram
            # observation — what the commit-latency SLO watches
            for colour in action.colours:
                self.obs.observe("commit_latency", span.duration,
                                 colour=str(colour), node=self.node.name)
        action.status = ActionStatus.COMMITTED
        if action.parent is not None and action in action.parent.children:
            action.parent.children.remove(action)
        self._notify_terminated(action)
        return Outcome.COMMITTED

    def abort(self, action: ClusterAction):
        """Abort: undo and release on every involved server."""
        if action.status is ActionStatus.ABORTED:
            return Outcome.ABORTED
        if action.status is ActionStatus.COMMITTED:
            raise InvalidActionState(f"{action.name} already committed")
        action.status = ActionStatus.ABORTING
        yield from self._settle_children(action)
        span = self._op_span(action, "abort")
        nodes = sorted(action.all_nodes())
        payload = {"action_uid": encode_uid(action.uid)}

        def abort_one(node_name: str):
            yield from self.transport.call(node_name, "abort_action",
                                           dict(payload), trace_parent=span)

        if self.obs is not None and nodes:
            self.obs.observe("termination_fanout_width", len(nodes),
                             kind="abort")
        handles = [
            self.kernel.spawn(abort_one(n), name=f"abort:{action.uid}@{n}")
            for n in nodes
        ]
        outcomes = yield settle_all(self.kernel, [h.join() for h in handles])
        for node_name, (ok, _value) in zip(nodes, outcomes):
            if ok:
                continue
            # Either the server is down (its volatile locks died with
            # it) or we are partitioned from a *live* server that still
            # holds the action's locks.  A background reaper keeps
            # retrying until the abort lands — abort_action is
            # idempotent, so over-delivery is harmless.
            self._spawn_reaper(node_name, [("abort_action", dict(payload))],
                               label=f"abort:{action.uid}")
        if span is not None:
            span.set(outcome="aborted").finish()
        action.status = ActionStatus.ABORTED
        if action.parent is not None and action in action.parent.children:
            action.parent.children.remove(action)
        self._notify_terminated(action)
        return Outcome.ABORTED

    def _spawn_reaper(self, node_name: str, calls, label: str) -> None:
        def reap_and_account():
            # backlog bookkeeping brackets the reaper's whole life so the
            # introspection layer can report how many terminations are
            # still being chased per node (kill/crash included: the
            # generator's close() runs the finally block)
            self.reaper_backlog[node_name] = (
                self.reaper_backlog.get(node_name, 0) + 1)
            try:
                result = yield from self._reap_termination(node_name, calls)
            finally:
                remaining = self.reaper_backlog.get(node_name, 1) - 1
                if remaining > 0:
                    self.reaper_backlog[node_name] = remaining
                else:
                    self.reaper_backlog.pop(node_name, None)
            return result

        self.kernel.spawn(reap_and_account(), name=f"reap-{label}@{node_name}")
        if self.obs is not None:
            self.obs.count("termination_reapers_total", node=node_name)

    def _reap_termination(self, node_name: str, calls,
                          attempts: int = 30, pause: float = 15.0):
        """Keep delivering termination calls a partition or crash swallowed.

        ``calls`` is a ``(kind, payload)`` batch — abort_action, txn_abort,
        or txn_commit+finish_commit — every one of which is idempotent
        server-side, so retrying under fresh rpc ids until the batch lands
        (or the budget runs out: a crashed server's volatile locks died
        with it, and its log-driven recovery resolves the rest) is safe.
        """
        for _attempt in range(attempts):
            yield Timeout(pause)
            try:
                outcomes = yield from self.transport.call_many(
                    node_name, calls, timeout=5.0, retries=1)
            except RpcTimeout:
                continue
            if all(ok for ok, _ in outcomes):
                return True
        return False

    def run_scope(self, action: ClusterAction, body):
        """Run ``body`` (a generator taking nothing) under ``action``.

        Clean return commits and yields the body's value; an exception
        aborts and re-raises — the generator analogue of ActionScope.
        """
        try:
            result = yield from body
        except BaseException:
            if not action.status.terminated:
                yield from self.abort(action)
            raise
        if not action.status.terminated:
            yield from self.commit(action)
        return result

    # -- internals ------------------------------------------------------------------------

    def _require_active(self, action: ClusterAction) -> None:
        if action.status is not ActionStatus.ACTIVE:
            raise InvalidActionState(
                f"{action.name} is {action.status.value}, expected active"
            )

    def _check_colour(self, action: ClusterAction, colour: Colour) -> None:
        if colour not in action.colours:
            raise InvalidActionState(
                f"{action.name} does not possess colour {colour}"
            )

    def _operation_mode(self, type_name: str, method: str) -> LockMode:
        cls = self._classes.get(type_name)
        if cls is None:
            raise ClusterError(f"unknown type {type_name!r}")
        attr = getattr(cls, method, None)
        mode = getattr(attr, "__repro_mode__", None)
        if mode is None:
            raise ClusterError(f"{type_name}.{method} is not an @operation")
        return mode

    def _operation_kind(self, type_name: str, method: str):
        """(lock key, is_update, is_semantic, is_commuting) for an op."""
        cls = self._classes.get(type_name)
        if cls is None:
            raise ClusterError(f"unknown type {type_name!r}")
        attr = getattr(cls, method, None)
        mode = getattr(attr, "__repro_mode__", None)
        if mode is not None:
            return mode, mode is LockMode.WRITE, False, False
        group = getattr(attr, "__repro_group__", None)
        if group is not None:
            updates = getattr(attr, "__repro_inverse__", None) is not None
            spec = getattr(cls, "SEMANTICS", None)
            commuting = (updates and spec is not None
                         and spec.is_commuting(group))
            return group, updates, True, commuting
        raise ClusterError(f"{type_name}.{method} is not an operation")

    def _settle_children(self, action: ClusterAction):
        while True:
            active = [c for c in action.children if not c.status.terminated]
            if not active:
                return
            for child in active:
                if child.colours & action.colours:
                    if self.obs is not None:
                        # the child dies because its parent settled, not
                        # through any conflict of its own
                        self.obs.emit("action.failure",
                                      action=str(child.uid), op="settle",
                                      cause="parent-settled",
                                      detail=str(action.uid),
                                      node=self.node.name)
                    yield from self.abort(child)
                else:
                    self._detach(child)

    def _detach(self, child: ClusterAction) -> None:
        old_parent = child.parent
        if old_parent is not None and child in old_parent.children:
            old_parent.children.remove(child)
        ancestor = old_parent.parent if old_parent is not None else None
        while ancestor is not None and ancestor.status.terminated:
            ancestor = ancestor.parent
        child.parent = ancestor
        if ancestor is not None:
            ancestor.children.append(child)

    def _bequeath(self, action: ClusterAction, colour: Colour,
                  destination: ClusterAction) -> None:
        """Client-side bookkeeping move; the servers move the real records
        on finish_commit."""
        destination.involved.setdefault(colour, set()).update(
            action.involved.get(colour, set())
        )
        destination.write_nodes.setdefault(colour, set()).update(
            action.write_nodes.get(colour, set())
        )
        dest_written = destination.written.setdefault(colour, {})
        for node_name, uids in action.written.get(colour, {}).items():
            dest_written.setdefault(node_name, set()).update(uids)
        if colour in action.commute_blocked:
            destination.commute_blocked.add(colour)
        for node_name, per_object in action.commute_ops.get(colour, {}).items():
            dest_ops = destination.commute_ops.setdefault(
                colour, {}).setdefault(node_name, {})
            for object_uid, ops in per_object.items():
                dest_ops.setdefault(object_uid, []).extend(ops)
        for node_name, epoch in action.server_epochs.items():
            destination.server_epochs.setdefault(node_name, epoch)

    def _finish_commit(self, action: ClusterAction,
                       routes: Dict[Colour, Optional[ClusterAction]],
                       decided: List[Tuple[str, Set[str]]],
                       parent_span=None):
        """Deliver every commit decision and the finish/transfer routing in
        one parallel fan-out: a single batched message per involved server.

        Each server's batch carries its ``txn_commit`` sub-calls *before*
        the ``finish_commit`` sub-call and the server dispatches sub-calls
        in order, so shadow promotion always precedes lock release on that
        server.  A server that cannot be reached gets a background reaper
        (both sub-calls are idempotent); its decisions are also resolvable
        from our coordinator log via recovery, so we only log ``coord_end``
        — the record that lets checkpointing forget a transaction — for
        transactions whose *entire* participant set acked here.

        Fast-path exclusions: a server whose finish routing rode a
        delegated prepare (``action.finished_nodes``) and a server whose
        every colour was released by read-only votes
        (``action.vote_released``) have nothing left to do and are left
        out of the fan-out entirely.  Neither can appear in a decided
        transaction's participant set — a delegated server already applied
        its commit, and a fully-released server was a pure reader — so the
        ``coord_end`` accounting is unaffected.
        """
        encoded_routes = [
            {
                "colour": encode_colour(colour),
                "dest": (encode_action_context(dest) if dest is not None else None),
            }
            for colour, dest in sorted(routes.items(), key=lambda kv: kv[0].uid)
        ]
        nodes = []
        for node_name in sorted(action.all_nodes()):
            if node_name in action.finished_nodes:
                continue
            released = action.vote_released.get(node_name, set())
            if released and released >= action.colours_at(node_name):
                if self.obs is not None:
                    self.obs.count("read_only_saved_finish_total",
                                   node=node_name)
                continue
            nodes.append(node_name)
        calls_for: Dict[str, List[Tuple[str, Dict[str, Any]]]] = {}
        for node_name in nodes:
            calls = [("txn_commit", {"txn_id": txn_id})
                     for txn_id, parts in decided if node_name in parts]
            calls.append(("finish_commit", {
                "action_uid": encode_uid(action.uid),
                "routes": encoded_routes,
            }))
            calls_for[node_name] = calls

        def finish_one(node_name: str):
            outcomes = yield from self.transport.call_many(
                node_name, calls_for[node_name], trace_parent=parent_span)
            for ok, value in outcomes:
                if not ok:
                    raise value
            return True

        started = self.kernel.now
        if self.obs is not None and nodes:
            self.obs.observe("termination_fanout_width", len(nodes),
                             kind="commit")
        handles = [
            self.kernel.spawn(finish_one(n), name=f"finish:{action.uid}@{n}")
            for n in nodes
        ]
        outcomes = yield settle_all(self.kernel, [h.join() for h in handles])
        acked: Set[str] = set()
        for node_name, (ok, _value) in zip(nodes, outcomes):
            if ok:
                acked.add(node_name)
            else:
                self._spawn_reaper(node_name, calls_for[node_name],
                                   label=f"finish:{action.uid}")
        for txn_id, parts in decided:
            if parts <= acked:
                self.node.wal.append("coord_end", txn_id=txn_id)
                self._note_txn(txn_id, "ended")
                if self.obs is not None:
                    self.obs.emit("twopc.end", txn=txn_id,
                                  node=self.node.name)
        if self.obs is not None and nodes:
            self.obs.observe("commit_fanout_time",
                             self.kernel.now - started, width=len(nodes))

    def _broadcast_decisions(self, action: ClusterAction,
                             decided: List[Tuple[str, Set[str]]],
                             parent_span=None):
        """Deliver already-logged commit decisions to their participants.

        Used on commit's failure path: colours decided *before* the failing
        colour are permanent (their ``coord_commit`` records exist), so
        their participants must promote shadows before ``abort_action``
        undoes anything on the same servers.
        """
        involved: Dict[str, List[Tuple[str, Dict[str, Any]]]] = {}
        for txn_id, parts in decided:
            for node_name in parts:
                involved.setdefault(node_name, []).append(
                    ("txn_commit", {"txn_id": txn_id}))
        nodes = sorted(involved)

        def deliver_one(node_name: str):
            outcomes = yield from self.transport.call_many(
                node_name, involved[node_name], trace_parent=parent_span)
            for ok, value in outcomes:
                if not ok:
                    raise value
            return True

        handles = [
            self.kernel.spawn(deliver_one(n), name=f"decide:{action.uid}@{n}")
            for n in nodes
        ]
        outcomes = yield settle_all(self.kernel, [h.join() for h in handles])
        acked: Set[str] = set()
        for node_name, (ok, _value) in zip(nodes, outcomes):
            if ok:
                acked.add(node_name)
            else:
                self._spawn_reaper(node_name, involved[node_name],
                                   label=f"decide:{action.uid}")
        for txn_id, parts in decided:
            if parts <= acked:
                self.node.wal.append("coord_end", txn_id=txn_id)
                self._note_txn(txn_id, "ended")
                if self.obs is not None:
                    self.obs.emit("twopc.end", txn=txn_id,
                                  node=self.node.name)

    # -- two-phase commit (coordinator) --------------------------------------------------------

    def _prepare_payload(self, action: ClusterAction, txn_id: str,
                         colour: Colour, node_name: str,
                         object_uids: Iterable[Uid]) -> Dict[str, Any]:
        """A txn_prepare payload, with any pending lazy acknowledgements
        of earlier delegated commits to this node riding along."""
        payload = {
            "txn_id": txn_id,
            "action_uid": encode_uid(action.uid),
            "colour": encode_colour(colour),
            "object_uids": [encode_uid(u) for u in sorted(object_uids)],
            "expected_epoch": action.server_epochs.get(node_name),
        }
        forget = self._pending_forget.get(node_name)
        if forget:
            payload["forget"] = list(forget)
        return payload

    def _ack_forget(self, node_name: str, payload: Dict[str, Any]) -> None:
        """The prepare carrying these forgets was answered: stop resending."""
        sent = payload.get("forget")
        if not sent:
            return
        pending = self._pending_forget.get(node_name)
        if pending:
            remaining = [t for t in pending if t not in set(sent)]
            if remaining:
                self._pending_forget[node_name] = remaining
            else:
                self._pending_forget.pop(node_name, None)

    def _spawn_read_only_prepares(self, action: ClusterAction, txn_id: str,
                                  colour: Colour, readers: List[str],
                                  span=None) -> None:
        """Fire-and-forget read-only prepares to the colour's pure readers.

        Never gates the decision (the classic protocol does not contact
        readers at all): a reader that answers ``read-only`` released its
        locks at vote time and is skipped by the finish fan-out; one that
        cannot be reached simply falls back to the classic finish path.
        """

        def read_only_one(node_name: str):
            payload = self._prepare_payload(action, txn_id, colour,
                                            node_name, ())
            payload["read_only"] = True
            try:
                reply = yield from self.transport.call(
                    node_name, "txn_prepare", payload, trace_parent=span)
            except Exception:
                # fast-path downgrade: this reader falls back to the
                # classic finish fan-out (it never answered read-only)
                if self.obs is not None:
                    self.obs.emit("twopc.downgrade", txn=txn_id,
                                  node=self.node.name, dst=node_name,
                                  reason="read-only-unreachable",
                                  resolution="classic-finish")
                return False
            self._ack_forget(node_name, payload)
            if reply.get("vote") == "read-only":
                action.vote_released.setdefault(node_name, set()).add(colour)
            return True

        for node_name in readers:
            self.kernel.spawn(read_only_one(node_name),
                              name=f"ro-prepare:{txn_id}:{node_name}")

    def _abort_round(self, txn_id: str, nodes: List[str]):
        """Presumed abort: tell whoever may have prepared, in parallel,
        reaping nodes we cannot reach."""
        abort_payload = {"txn_id": txn_id}

        def abort_one(node_name: str):
            yield from self.transport.call(node_name, "txn_abort",
                                           dict(abort_payload))

        abort_handles = [
            self.kernel.spawn(abort_one(n), name=f"txn-abort:{txn_id}:{n}")
            for n in nodes
        ]
        outcomes = yield settle_all(
            self.kernel, [h.join() for h in abort_handles])
        for node_name, (ok, _value) in zip(nodes, outcomes):
            if not ok:
                self._spawn_reaper(
                    node_name, [("txn_abort", dict(abort_payload))],
                    label=f"txn-abort:{txn_id}")

    def _resolve_delegated(self, txn_id: str, last_agent: str, span=None):
        """The delegated prepare's reply was lost: the outcome is unknown
        until the last agent answers.

        Loops on ``txn_outcome_query`` — the last agent answers from its
        log, force-aborting the transaction if the delegated prepare never
        arrived, so the answer is always definitive.  Blocking here is
        required for truthfulness: reporting an outcome the delegate may
        contradict would split the decision.
        """
        while True:
            try:
                reply = yield from self.transport.call(
                    last_agent, "txn_outcome_query", {"txn_id": txn_id},
                    timeout=5.0, retries=1, trace_parent=span)
            except Exception:
                yield Timeout(5.0)
                continue
            return reply["decision"]

    def _commute_eligible(self, action: ClusterAction, colour: Colour,
                          write_map: Dict[str, Set[Uid]]) -> bool:
        """May this colour commit on the commute path?

        Yes iff commute is enabled, no non-commuting update ever joined the
        colour, and every written object has a recorded redo op list — the
        moment a plain WRITE or an undeclared semantic update touches the
        colour it is blocked and falls back to classic/fast-path 2PC.
        """
        if not self.commute or colour in action.commute_blocked:
            return False
        ops = action.commute_ops.get(colour)
        if not ops:
            return False
        for node_name, uids in write_map.items():
            node_ops = ops.get(node_name, {})
            if any(uid not in node_ops for uid in uids):
                return False
        return True

    def _commute_commit(self, action: ClusterAction, colour: Colour,
                        write_map: Dict[str, Set[Uid]], parent_span=None):
        """Coordination avoidance for a fully-commuting colour (§2 pushed
        into the commit protocol).

        Every update in the colour belongs to a declared-commuting
        operation group: the operations are *total* (re-applying them
        against any committed state cannot fail — escrow bounds were
        reserved at execute time) and order-independent.  Every
        participant's vote is therefore guaranteed-yes, so the prepare
        round degenerates to decision delivery: the commit decision is
        logged *before* the fan-out, and each participant locally
        vote-and-applies the colour's merged effects in the same round —
        one RPC per participant, no phase two, no finish message for
        single-colour participants.

        The prepare carries the colour's redo op list, which is what keeps
        the guarantee honest across failures: a participant that restarted
        (losing its volatile effects) re-applies the operations from the
        message against its committed state; one that cannot be reached
        gets a background reaper redelivering the same idempotent message
        (participants dedupe on txn_id against their COMMITTED records).
        """
        txn_id = f"txn:{self.node.name}:{action.uid.sequence}:{colour.uid.sequence}:{next(self._txn_seq)}"
        participants = sorted(write_map)
        span = None
        if self.obs is not None:
            span = self.obs.span(f"2pc:{colour}", parent=parent_span,
                                 kind="client", node=self.node.name,
                                 txn=txn_id, participants=len(participants),
                                 fast_path="commute")
            self.obs.emit("twopc.begin", txn=txn_id,
                          action=str(action.uid), colour=str(colour),
                          participants=",".join(participants),
                          node=self.node.name)
        ops_for = action.commute_ops.get(colour, {})
        # decision first: with guaranteed-yes votes there is nothing to
        # wait for, and a durable decision lets an unreachable participant
        # be converged later by redelivery instead of presumed abort
        self.node.wal.append("coord_commit", txn_id=txn_id, commute=True)
        self._note_txn(txn_id, "decided")
        if self.obs is not None:
            self.obs.emit("twopc.decision", txn=txn_id, decision="commit",
                          node=self.node.name, commute="1")
        readers = sorted(action.involved.get(colour, set()) - set(write_map))
        if readers and self.fast_paths:
            self._spawn_read_only_prepares(action, txn_id, colour, readers,
                                           span=span)
        payload_for: Dict[str, Dict[str, Any]] = {}
        for node_name in participants:
            payload = self._prepare_payload(
                action, txn_id, colour, node_name, write_map[node_name])
            payload["commute"] = True
            # full context (not just the uid): a restarted participant
            # rebuilds the action mirror to hold the redo's group locks
            payload["action"] = encode_action_context(action)
            payload["ops"] = {
                encode_uid(uid): [[method, list(args)] for method, args
                                  in ops_for[node_name][uid]]
                for uid in sorted(write_map[node_name])
            }
            if action.colours_at(node_name) == {colour}:
                payload["finish"] = [{"colour": encode_colour(colour),
                                      "dest": None}]
            payload_for[node_name] = payload

        def commute_one(node_name: str):
            reply = yield from self.transport.call(
                node_name, "txn_prepare", payload_for[node_name],
                trace_parent=span)
            self._ack_forget(node_name, payload_for[node_name])
            return reply

        round_started = self.kernel.now
        handles = [
            self.kernel.spawn(commute_one(n), name=f"commute:{txn_id}:{n}")
            for n in participants
        ]
        outcomes = yield settle_all(self.kernel, [h.join() for h in handles])
        acked: Set[str] = set()
        for node_name, (ok, reply) in zip(participants, outcomes):
            if ok and reply.get("vote") == "commute":
                acked.add(node_name)
                # the participant's COMMITTED record is acknowledged
                # lazily, riding our next prepare to it (checkpointing)
                self._pending_forget.setdefault(node_name, []).append(txn_id)
                if reply.get("finished"):
                    action.finished_nodes.add(node_name)
                else:
                    # locks released at vote-and-apply time: the node is
                    # out of this colour's phase two and finish routing
                    action.vote_released.setdefault(
                        node_name, set()).add(colour)
            else:
                # crash, partition or lost reply: the decision is durable
                # and the message idempotent — redeliver until it lands
                if self.obs is not None:
                    self.obs.emit("twopc.downgrade", txn=txn_id,
                                  node=self.node.name, dst=node_name,
                                  reason="commute-unreachable",
                                  resolution="redelivery")
                self._spawn_reaper(
                    node_name,
                    [("txn_prepare", dict(payload_for[node_name]))],
                    label=f"commute:{txn_id}")
        if self.obs is not None:
            self.obs.observe("twopc_prepare_time",
                             self.kernel.now - round_started,
                             colour=str(colour))
            self.obs.count("twopc_rounds_total", colour=str(colour),
                           outcome="committed")
        if acked >= set(participants):
            self.node.wal.append("coord_end", txn_id=txn_id)
            self._note_txn(txn_id, "ended")
            if self.obs is not None:
                self.obs.emit("twopc.end", txn=txn_id, node=self.node.name)
        if span is not None:
            span.set(outcome="committed", fast_path="commute").finish()
        return txn_id

    def _two_phase_commit(self, action: ClusterAction, colour: Colour,
                          write_map: Dict[str, Set[Uid]], parent_span=None):
        """Presumed-abort 2PC prepare round for one colour's write set.

        Classic flow (``fast_paths=False``): one parallel prepare fan-out
        over every writer; the commit decision is logged here and delivered
        by the caller's merged finish fan-out.

        Fast flow (the default): pure readers of the colour get non-gating
        *read-only* prepares (they release their locks at vote time and
        leave phase two); all writers but one run the classic parallel
        round; then the commit decision rides *inside* the last writer's
        prepare (the R* last-agent / piggybacked-decision optimisation) —
        with a single writer that collapses to a one-phase commit.  When
        that writer's entire involvement is this colour, its finish
        routing rides along too and no termination message follows at all.

        Returns ``(txn_id, phase_two_nodes)`` once the commit decision is
        durable — the caller delivers ``txn_commit`` to exactly
        ``phase_two_nodes`` in the merged finish fan-out — or ``None`` when
        any writer voted rollback, timed out, or restarted.
        """
        txn_id = f"txn:{self.node.name}:{action.uid.sequence}:{colour.uid.sequence}:{next(self._txn_seq)}"
        participants = sorted(write_map)
        span = None
        if self.obs is not None:
            span = self.obs.span(f"2pc:{colour}", parent=parent_span,
                                 kind="client", node=self.node.name,
                                 txn=txn_id, participants=len(participants))
            self.obs.emit("twopc.begin", txn=txn_id,
                          action=str(action.uid), colour=str(colour),
                          participants=",".join(participants),
                          node=self.node.name)
        readers: List[str] = []
        if self.fast_paths:
            readers = sorted(action.involved.get(colour, set())
                             - set(write_map))
            if readers:
                # concurrent with the writer round, never gating it
                self._spawn_read_only_prepares(action, txn_id, colour,
                                               readers, span=span)
            plain = participants[:-1]
            last_agent = participants[-1]
        else:
            plain = participants
            last_agent = None

        def prepare_one(node_name: str):
            payload = self._prepare_payload(
                action, txn_id, colour, node_name, write_map[node_name])
            reply = yield from self.transport.call(
                node_name, "txn_prepare", payload, trace_parent=span)
            self._ack_forget(node_name, payload)
            return reply["vote"]

        prepare_started = self.kernel.now
        handles = [
            self.kernel.spawn(prepare_one(n), name=f"prepare:{txn_id}:{n}")
            for n in plain
        ]
        votes: List[Optional[str]] = []
        prepared_ok = True
        round_failure: Optional[BaseException] = None
        try:
            results = yield all_of(self.kernel, [h.join() for h in handles])
            votes = list(results)
            prepared_ok = all(v == "commit" for v in votes)
        except (PrepareFailed, RpcTimeout, ActionAborted,
                ClusterError) as error:
            prepared_ok = False
            round_failure = error
        if not prepared_ok:
            # Cancel prepares still in flight *before* announcing the
            # abort: a killed task's transport cleanup runs immediately
            # (finally blocks), and any prepare already on the wire races
            # the txn_abort — the server resolves that race by treating a
            # prepare for an already-aborted txn_id as a rollback vote
            # (presumed abort), so no straggler can park itself in-doubt.
            for handle in handles:
                handle.kill()
            if self.obs is not None:
                self.obs.observe("twopc_prepare_time",
                                 self.kernel.now - prepare_started,
                                 colour=str(colour))
                self.obs.count("twopc_rounds_total", colour=str(colour),
                               outcome="aborted")
                self.obs.emit("twopc.decision", txn=txn_id,
                              decision="abort", node=self.node.name,
                              cause=self._round_failure_cause(
                                  votes, round_failure))
            if span is not None:
                span.set(outcome="aborted").finish()
            # the last agent never saw a prepare; only the plain round's
            # participants may hold prepared state
            yield from self._abort_round(txn_id, plain)
            return None
        if last_agent is None:
            if self.obs is not None:
                # coordinator-observed latency of the whole prepare round
                self.obs.observe("twopc_prepare_time",
                                 self.kernel.now - prepare_started,
                                 colour=str(colour))
            # decision: commit — logged before any participant is told.
            # The caller delivers it inside the merged finish batch.
            self.node.wal.append("coord_commit", txn_id=txn_id)
            self._note_txn(txn_id, "decided")
            if self.obs is not None:
                self.obs.count("twopc_rounds_total", colour=str(colour),
                               outcome="committed")
                self.obs.emit("twopc.decision", txn=txn_id,
                              decision="commit", node=self.node.name)
            if span is not None:
                span.set(outcome="committed").finish()
            return txn_id, set(write_map)
        # Delegate the decision to the remaining writer: its prepare both
        # asks for and *carries* the decision (every earlier vote was
        # commit, so a commit vote there decides the transaction).  The
        # delegation is logged first — if we crash or lose the reply, the
        # outcome is recoverable from the named last agent.
        fast_kind = "one_phase" if len(participants) == 1 else "piggyback"
        self.node.wal.append("coord_delegated", txn_id=txn_id,
                             last_agent=last_agent)
        self._note_txn(txn_id, "delegated")
        payload = self._prepare_payload(
            action, txn_id, colour, last_agent, write_map[last_agent])
        payload["decide"] = True
        payload["fast_path"] = fast_kind
        if action.colours_at(last_agent) == {colour}:
            # the node's entire involvement commits right here: ship its
            # (trivial) finish routing inside the same message
            payload["finish"] = [{"colour": encode_colour(colour),
                                  "dest": None}]
        finished = False
        downgraded = False
        try:
            reply = yield from self.transport.call(
                last_agent, "txn_prepare", payload, trace_parent=span)
            self._ack_forget(last_agent, payload)
            vote = reply["vote"]
            finished = bool(reply.get("finished"))
        except (RpcTimeout, PrepareFailed, ActionAborted, ClusterError):
            # The decision may or may not have landed — and not only on a
            # timeout: an error reply can come from a *retransmission*
            # after the first copy committed and the delegate crashed
            # (the retry then hits the bumped epoch).  Never presume
            # rollback past this point; resolve through the last agent
            # (see _resolve_delegated), whose answer is definitive.
            decision = yield from self._resolve_delegated(
                txn_id, last_agent, span=span)
            vote = "commit" if decision == "commit" else "rollback"
            downgraded = True
            if self.obs is not None:
                # the fast path degenerated into an outcome query loop
                self.obs.emit("twopc.downgrade", txn=txn_id,
                              node=self.node.name, dst=last_agent,
                              reason="delegated-reply-lost",
                              resolution=decision)
            # a committed outcome proves the prepare arrived whole — the
            # piggybacked finish (if any) was applied with it
            finished = vote == "commit" and "finish" in payload
        if self.obs is not None:
            self.obs.observe("twopc_prepare_time",
                             self.kernel.now - prepare_started,
                             colour=str(colour))
        if vote != "commit":
            if self.node.wal.last(
                "coord_abort", where=lambda r: r.payload["txn_id"] == txn_id
            ) is None:
                self.node.wal.append("coord_abort", txn_id=txn_id)
                self._note_txn(txn_id, "decided")
            if self.obs is not None:
                self.obs.count("twopc_rounds_total", colour=str(colour),
                               outcome="aborted")
                self.obs.emit("twopc.decision", txn=txn_id,
                              decision="abort", node=self.node.name,
                              cause=("fast-path-downgrade" if downgraded
                                     else "vote-rollback"))
            if span is not None:
                span.set(outcome="aborted").finish()
            yield from self._abort_round(txn_id, plain)
            return None
        if self.node.wal.last(
            "coord_commit", where=lambda r: r.payload["txn_id"] == txn_id
        ) is None:
            self.node.wal.append("coord_commit", txn_id=txn_id)
            self._note_txn(txn_id, "decided")
        # lazily acknowledge the delegate's COMMITTED record on the next
        # prepare we send it, so its checkpoint can drop the record
        self._pending_forget.setdefault(last_agent, []).append(txn_id)
        if finished:
            action.finished_nodes.add(last_agent)
        if readers:
            # Zero-time barrier: with a single writer the read-only
            # replies land at the same instant as the delegated reply but
            # later in the event queue; draining it here lets the caller's
            # finish fan-out see those votes.  Costs no simulated time and
            # never waits for a slow or dead reader.
            yield Timeout(0.0)
        if self.obs is not None:
            self.obs.count("twopc_rounds_total", colour=str(colour),
                           outcome="committed")
            # the decision event came from the delegate (labelled with the
            # fast path); only the savings are counted here
            self.obs.count("decision_piggyback_saved_rpcs_total",
                           1 + (1 if finished else 0))
        if span is not None:
            span.set(outcome="committed", fast_path=fast_kind).finish()
        return txn_id, set(plain)

    def _batched_prepare(self, action: ClusterAction,
                         permanent: List[Tuple[Colour, Dict[str, Set[Uid]]]],
                         parent_span=None):
        """One prepare fan-out shared by every permanent colour.

        Sequentially, k permanent colours cost k prepare rounds — one
        ``txn_prepare`` per (colour, participant) pair, each a full network
        round trip.  Here the pairs are regrouped per server and shipped
        through :meth:`RpcTransport.call_many`, so a server hosting writes
        of several colours sees *one* message carrying all its prepare
        sub-calls (dispatched in colour order); the saved round trips are
        counted in ``prepare_batch_saved_rpcs_total``.

        Decision semantics match the sequential rounds exactly: votes are
        judged in colour order, and the first colour with a missing or
        negative vote fails the commit — it and every *later* colour
        (prepared or not) are aborted with batched ``txn_abort`` deliveries,
        since sequential execution would never have decided them.  Returns
        ``(decided, failed_colour)`` where ``decided`` is
        ``[(txn_id, participants, colour)]`` for the all-commit prefix and
        ``failed_colour`` is ``None`` on a clean run.

        Fast paths here are deliberately narrower than the single-colour
        round: the piggybacked decision and one-phase commit are *not*
        attempted, because the colour-order failure semantics above need
        every colour's votes in hand before any decision is taken.  The
        read-only optimisation does apply — ``read_only`` prepare sub-calls
        for a colour's pure readers ride the batches of servers the writer
        round already visits (never widening the fan-out), and an answering
        reader is dropped from that colour's phase two.
        """
        rounds = []
        for colour, write_map in permanent:
            txn_id = (f"txn:{self.node.name}:{action.uid.sequence}:"
                      f"{colour.uid.sequence}:{next(self._txn_seq)}")
            participants = sorted(write_map)
            rounds.append({"colour": colour, "write_map": write_map,
                           "txn_id": txn_id, "participants": participants,
                           "votes": {}})
            if self.obs is not None:
                self.obs.emit("twopc.begin", txn=txn_id,
                              action=str(action.uid), colour=str(colour),
                              participants=",".join(participants),
                              node=self.node.name)
        span = None
        if self.obs is not None:
            span = self.obs.span("2pc-batched-prepare", parent=parent_span,
                                 kind="client", node=self.node.name,
                                 colours=len(rounds))
        calls_for: Dict[str, List[Tuple[str, Dict[str, Any]]]] = {}
        index_for: Dict[str, List[Tuple[str, int]]] = {}
        for i, r in enumerate(rounds):
            for node_name in r["participants"]:
                calls_for.setdefault(node_name, []).append(("txn_prepare", {
                    "txn_id": r["txn_id"],
                    "action_uid": encode_uid(action.uid),
                    "colour": encode_colour(r["colour"]),
                    "object_uids": [encode_uid(u) for u in
                                    sorted(r["write_map"][node_name])],
                    "expected_epoch": action.server_epochs.get(node_name),
                }))
                index_for.setdefault(node_name, []).append(("prepare", i))
        if self.obs is not None:
            # counted before the read-only riders join: the classic
            # protocol never contacts readers, so only regrouped *writer*
            # prepares are round trips saved over sequential rounds
            saved = sum(len(calls) - 1 for calls in calls_for.values())
            if saved:
                self.obs.count("prepare_batch_saved_rpcs_total", saved)
        if self.fast_paths:
            # read-only riders: only on batches the writer round sends
            # anyway — a sub-call is free, a widened fan-out is not
            for i, r in enumerate(rounds):
                readers = (action.involved.get(r["colour"], set())
                           - set(r["write_map"]))
                for node_name in sorted(readers & set(calls_for)):
                    calls_for[node_name].append(("txn_prepare", {
                        "txn_id": r["txn_id"],
                        "action_uid": encode_uid(action.uid),
                        "colour": encode_colour(r["colour"]),
                        "object_uids": [],
                        "expected_epoch": action.server_epochs.get(node_name),
                        "read_only": True,
                    }))
                    index_for[node_name].append(("read_only", i))
        forget_sent: Dict[str, Dict[str, Any]] = {}
        for node_name, calls in calls_for.items():
            pending = self._pending_forget.get(node_name)
            if pending:
                calls[0][1]["forget"] = list(pending)
                forget_sent[node_name] = calls[0][1]
        nodes = sorted(calls_for)
        prepare_started = self.kernel.now

        def prepare_batch(node_name: str):
            return (yield from self.transport.call_many(
                node_name, calls_for[node_name], trace_parent=span))

        handles = [
            self.kernel.spawn(prepare_batch(n),
                              name=f"prepare-batch:{action.uid}@{n}")
            for n in nodes
        ]
        outcomes = yield settle_all(self.kernel, [h.join() for h in handles])
        round_time = self.kernel.now - prepare_started
        for node_name, (ok, value) in zip(nodes, outcomes):
            if not ok:  # whole batch undeliverable: no votes from this node
                continue
            if node_name in forget_sent:
                self._ack_forget(node_name, forget_sent[node_name])
            for (role, i), (sub_ok, sub_value) in zip(index_for[node_name],
                                                      value):
                if not sub_ok:
                    continue
                if role == "read_only":
                    if sub_value.get("vote") == "read-only":
                        action.vote_released.setdefault(
                            node_name, set()).add(rounds[i]["colour"])
                    continue
                rounds[i]["votes"][node_name] = sub_value["vote"]
        decided: List[Tuple[str, Set[str], Colour]] = []
        failed_index: Optional[int] = None
        for i, r in enumerate(rounds):
            if self.obs is not None:
                self.obs.observe("twopc_prepare_time", round_time,
                                 colour=str(r["colour"]))
            all_commit = all(r["votes"].get(p) == "commit"
                             for p in r["participants"])
            if failed_index is None and all_commit:
                self.node.wal.append("coord_commit", txn_id=r["txn_id"])
                self._note_txn(r["txn_id"], "decided")
                if self.obs is not None:
                    self.obs.count("twopc_rounds_total",
                                   colour=str(r["colour"]),
                                   outcome="committed")
                    self.obs.emit("twopc.decision", txn=r["txn_id"],
                                  decision="commit", node=self.node.name)
                decided.append((r["txn_id"], set(r["write_map"]),
                                r["colour"]))
            elif failed_index is None:
                failed_index = i
        if failed_index is None:
            if span is not None:
                span.set(outcome="committed").finish()
            return decided, None
        # presumed abort for the failing colour and everything after it:
        # tell whoever may have prepared, again one batch per server.
        to_abort = rounds[failed_index:]
        abort_calls: Dict[str, List[Tuple[str, Dict[str, Any]]]] = {}
        for i, r in enumerate(to_abort):
            if self.obs is not None:
                if i > 0:
                    cause = "colour-order-cascade"
                elif any(v != "commit" for v in r["votes"].values()):
                    cause = "vote-rollback"
                else:
                    cause = "participant-unreachable"
                self.obs.count("twopc_rounds_total", colour=str(r["colour"]),
                               outcome="aborted")
                self.obs.emit("twopc.decision", txn=r["txn_id"],
                              decision="abort", node=self.node.name,
                              cause=cause)
            for node_name in r["participants"]:
                abort_calls.setdefault(node_name, []).append(
                    ("txn_abort", {"txn_id": r["txn_id"]}))
        if span is not None:
            span.set(outcome="aborted").finish()
        abort_nodes = sorted(abort_calls)

        def abort_batch(node_name: str):
            outcomes = yield from self.transport.call_many(
                node_name, abort_calls[node_name])
            for ok, value in outcomes:
                if not ok:
                    raise value
            return True

        abort_handles = [
            self.kernel.spawn(abort_batch(n),
                              name=f"txn-abort-batch:{action.uid}@{n}")
            for n in abort_nodes
        ]
        abort_outcomes = yield settle_all(
            self.kernel, [h.join() for h in abort_handles])
        for node_name, (ok, _value) in zip(abort_nodes, abort_outcomes):
            if not ok:
                self._spawn_reaper(node_name, abort_calls[node_name],
                                   label=f"txn-abort-batch:{action.uid}")
        return decided, rounds[failed_index]["colour"]
