"""At-most-once RPC over the lossy network.

"Well known network protocol level techniques are available" for lost and
duplicated messages (§2) — this is that layer.  Clients retransmit requests
until a reply arrives or retries are exhausted; servers deduplicate by rpc
id and cache replies so a retransmitted request is answered, not
re-executed.  The cache is volatile: a crashed server forgets, which is
exactly why the layers above (2PC, action abort) exist.

Server handlers receive a ``respond`` callable and may reply *later* (lock
waits resolve asynchronously); duplicates arriving while a request is in
flight are dropped.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.cluster.message import Message
from repro.cluster.node import Node
from repro.errors import (
    ClusterError,
    DeadlockDetected,
    InvalidActionState,
    LockRefused,
    LockTimeout,
    NameNotBound,
    ObjectNotFound,
    PrepareFailed,
    ReproError,
    RpcTimeout,
)
from repro.obs.tracing import TRACE_KEY, Tracer
from repro.sim.kernel import SimEvent, any_of

#: handler(message, respond) — respond(ok, value) completes the rpc.
Responder = Callable[[bool, Any], None]
Handler = Callable[[Message, Responder], None]

_REPLY_KIND = "rpc_reply"
_ACK_KIND = "rpc_ack"
#: one network message carrying several sub-requests for the same node;
#: dispatched server-side in list order with per-sub-request dedup.
BATCH_KIND = "rpc_batch"

#: error kinds a server can return and the exception raised client-side.
#: Ordered most-specific-first: error_kind_for picks the first isinstance.
_ERROR_CLASSES = {
    "lock_refused": LockRefused,
    "lock_timeout": LockTimeout,
    "deadlock": DeadlockDetected,
    "object_not_found": ObjectNotFound,
    "name_not_bound": NameNotBound,
    "prepare_failed": PrepareFailed,
    "invalid_state": InvalidActionState,
    "cluster": ClusterError,
}


def error_kind_for(error: BaseException) -> str:
    for kind, cls in _ERROR_CLASSES.items():
        if isinstance(error, cls):
            return kind
    return "cluster"


class RemoteError(ReproError):
    """Fallback when the server's error kind has no specific class."""


def _rebuild_error(kind: str, text: str) -> ReproError:
    cls = _ERROR_CLASSES.get(kind)
    if cls is DeadlockDetected:
        error = DeadlockDetected()
        error.args = (text,)
        return error
    if cls is not None:
        return cls(text)
    return RemoteError(f"{kind}: {text}")


class RpcTransport:
    """One node's RPC endpoint: client calls and server handlers."""

    def __init__(self, node: Node, default_timeout: float = 10.0,
                 default_retries: int = 3,
                 default_completion_timeout: float = 120.0,
                 observability=None):
        self.node = node
        self.kernel = node.kernel
        self.obs = observability
        self.default_timeout = default_timeout
        self.default_retries = default_retries
        #: how long to wait for the reply once the server has ACKed the
        #: request — long operations (lock waits) sit in this phase.
        self.default_completion_timeout = default_completion_timeout
        self._handlers: Dict[str, Handler] = {}
        self._pending: Dict[str, SimEvent] = {}
        self._acks: Dict[str, SimEvent] = {}
        self._rpc_seq = itertools.count(1)
        node.add_dispatcher(self._dispatch)

    def pending_count(self) -> int:
        """RPCs issued from this transport still awaiting a reply.

        A read-only depth probe for the perf sampler and the introspection
        layer; counts calls in either phase (awaiting ACK or awaiting the
        completion reply).
        """
        return len(self._pending)

    # -- server side -------------------------------------------------------------

    def register(self, kind: str, handler: Handler) -> None:
        if kind in self._handlers:
            raise ClusterError(f"handler for {kind!r} already registered")
        self._handlers[kind] = handler

    def _dispatch(self, message: Message) -> bool:
        if message.kind == _REPLY_KIND:
            return self._accept_reply(message)
        if message.kind == _ACK_KIND:
            return self._accept_ack(message)
        if message.kind == BATCH_KIND:
            return self._dispatch_batch(message)
        handler = self._handlers.get(message.kind)
        if handler is None:
            return False
        rpc_id = message.payload.get("rpc_id")
        if rpc_id is None:
            return False
        cache: Dict[str, Dict[str, Any]] = self.node.volatile.setdefault("rpc_cache", {})
        if rpc_id in cache:
            self.node.send(message.src, _REPLY_KIND, cache[rpc_id],
                           reply_to=message.msg_id)
            return True
        inflight = self.node.volatile.setdefault("rpc_inflight", set())
        if rpc_id in inflight:
            # duplicate while executing: re-ack so the client stops
            # retransmitting; the reply will come.
            self.node.send(message.src, _ACK_KIND, {"rpc_id": rpc_id},
                           reply_to=message.msg_id)
            return True
        inflight.add(rpc_id)
        self.node.send(message.src, _ACK_KIND, {"rpc_id": rpc_id},
                       reply_to=message.msg_id)
        # server-side span: covers receipt to response (lock waits and all),
        # parented on the caller's span carried in the payload.
        span = None
        if self.obs is not None:
            span = self.obs.span(
                f"serve:{message.kind}",
                parent=Tracer.extract(message.payload),
                kind="server", node=self.node.name, src=message.src,
            )

        def respond(ok: bool, value: Any = None) -> None:
            if not self.node.alive:
                return  # the node died while handling; silence
            live_cache = self.node.volatile.setdefault("rpc_cache", {})
            live_inflight = self.node.volatile.setdefault("rpc_inflight", set())
            if rpc_id in live_cache:
                return  # already answered
            if ok:
                reply = {"rpc_id": rpc_id, "ok": True, "value": value}
            elif isinstance(value, BaseException):
                reply = {
                    "rpc_id": rpc_id, "ok": False,
                    "error_kind": error_kind_for(value), "error": str(value),
                }
            else:
                reply = {"rpc_id": rpc_id, "ok": False,
                         "error_kind": "cluster", "error": str(value)}
            live_cache[rpc_id] = reply
            live_inflight.discard(rpc_id)
            if span is not None:
                span.set(ok=ok).finish()
            self.node.send(message.src, _REPLY_KIND, reply, reply_to=message.msg_id)

        try:
            handler(message, respond)
        except ReproError as error:
            respond(False, error)
        except Exception as error:
            # A buggy handler must not wedge the rpc id: if the exception
            # escaped here the inflight entry would stay forever, every
            # retransmit would be ACKed but never answered, and the client
            # would burn its whole completion timeout.  Answer with a
            # cluster error instead (respond() also clears the inflight
            # entry).
            respond(False, ClusterError(
                f"handler for {message.kind!r} crashed: {error!r}"
            ))
        return True

    def _dispatch_batch(self, message: Message) -> bool:
        """Serve a :data:`BATCH_KIND` message: several sub-requests in one
        network message.

        Sub-requests are dispatched to their registered handlers in list
        order (effects of synchronous handlers are therefore ordered), each
        under its own rpc id so dedup works per sub-request; the batch
        replies once with the list of sub-replies when every sub-handler
        has responded.  Handlers that respond later (lock waits) simply
        delay the combined reply.
        """
        rpc_id = message.payload.get("rpc_id")
        if rpc_id is None:
            return False
        cache: Dict[str, Dict[str, Any]] = self.node.volatile.setdefault("rpc_cache", {})
        if rpc_id in cache:
            self.node.send(message.src, _REPLY_KIND, cache[rpc_id],
                           reply_to=message.msg_id)
            return True
        inflight = self.node.volatile.setdefault("rpc_inflight", set())
        if rpc_id in inflight:
            self.node.send(message.src, _ACK_KIND, {"rpc_id": rpc_id},
                           reply_to=message.msg_id)
            return True
        inflight.add(rpc_id)
        self.node.send(message.src, _ACK_KIND, {"rpc_id": rpc_id},
                       reply_to=message.msg_id)
        calls = message.payload.get("calls", [])
        span = None
        if self.obs is not None:
            self.obs.observe("rpc_batch_size", len(calls), node=self.node.name)
            span = self.obs.span(
                f"serve:{BATCH_KIND}",
                parent=Tracer.extract(message.payload),
                kind="server", node=self.node.name, src=message.src,
                calls=len(calls),
            )
        sub_replies: List[Optional[Dict[str, Any]]] = [None] * len(calls)
        outstanding = {"n": len(calls)}

        def maybe_finish() -> None:
            if outstanding["n"] > 0:
                return
            if not self.node.alive:
                return
            live_cache = self.node.volatile.setdefault("rpc_cache", {})
            live_inflight = self.node.volatile.setdefault("rpc_inflight", set())
            if rpc_id in live_cache:
                return
            reply = {"rpc_id": rpc_id, "ok": True, "value": list(sub_replies)}
            live_cache[rpc_id] = reply
            live_inflight.discard(rpc_id)
            if span is not None:
                span.finish()
            self.node.send(message.src, _REPLY_KIND, reply,
                           reply_to=message.msg_id)

        def serve_sub(index: int, sub: Dict[str, Any]) -> None:
            sub_id = sub["payload"].get("rpc_id", f"{rpc_id}/{index}")
            sub_cache = self.node.volatile.setdefault("rpc_cache", {})
            if sub_id in sub_cache:  # per-sub-request dedup
                sub_replies[index] = sub_cache[sub_id]
                outstanding["n"] -= 1
                return
            sub_span = None
            if self.obs is not None:
                sub_span = self.obs.span(
                    f"serve:{sub['kind']}", parent=span, kind="server",
                    node=self.node.name, src=message.src,
                )

            def sub_respond(ok: bool, value: Any = None) -> None:
                if not self.node.alive:
                    return
                live_cache = self.node.volatile.setdefault("rpc_cache", {})
                if sub_id in live_cache:
                    return
                if ok:
                    reply = {"rpc_id": sub_id, "ok": True, "value": value}
                elif isinstance(value, BaseException):
                    reply = {
                        "rpc_id": sub_id, "ok": False,
                        "error_kind": error_kind_for(value),
                        "error": str(value),
                    }
                else:
                    reply = {"rpc_id": sub_id, "ok": False,
                             "error_kind": "cluster", "error": str(value)}
                live_cache[sub_id] = reply
                sub_replies[index] = reply
                outstanding["n"] -= 1
                if sub_span is not None:
                    sub_span.set(ok=ok).finish()
                maybe_finish()

            handler = self._handlers.get(sub["kind"])
            if handler is None:
                sub_respond(False, ClusterError(
                    f"no handler for batched {sub['kind']!r}"
                ))
                return
            sub_message = Message(
                src=message.src, dst=message.dst, kind=sub["kind"],
                payload=sub["payload"], msg_id=message.msg_id,
                reply_to=message.reply_to,
            )
            try:
                handler(sub_message, sub_respond)
            except ReproError as error:
                sub_respond(False, error)
            except Exception as error:
                sub_respond(False, ClusterError(
                    f"handler for {sub['kind']!r} crashed: {error!r}"
                ))

        if not calls:
            maybe_finish()
            return True
        for index, sub in enumerate(calls):
            serve_sub(index, sub)
        maybe_finish()
        return True

    # -- client side -----------------------------------------------------------------

    def _accept_reply(self, message: Message) -> bool:
        rpc_id = message.payload.get("rpc_id")
        event = self._pending.pop(rpc_id, None)
        if event is None or event.settled:
            return True  # late or duplicate reply
        event.trigger(message.payload)
        return True

    def _accept_ack(self, message: Message) -> bool:
        rpc_id = message.payload.get("rpc_id")
        event = self._acks.get(rpc_id)
        if event is not None and not event.settled:
            event.trigger()
        return True

    def _fresh_rpc_id(self) -> str:
        return f"{self.node.name}:{self.node.epoch}:{next(self._rpc_seq)}"

    def call(self, dst: str, kind: str, payload: Dict[str, Any],
             timeout: Optional[float] = None,
             retries: Optional[int] = None,
             completion_timeout: Optional[float] = None,
             trace_parent: Any = None
             ) -> Generator[Any, Any, Any]:
        """Generator: perform one RPC; returns the reply value.

        Two phases. Until the server ACKs receipt, the request is
        retransmitted every ``timeout`` units, up to ``retries`` extra
        times — lost messages are cheap to recover.  Once ACKed, the call
        waits up to ``completion_timeout`` for the reply — long-running
        operations (lock waits, prepares) sit here without retransmission
        storms.  Raises :class:`RpcTimeout` on either phase's exhaustion,
        or the reconstructed remote error for an unsuccessful reply.

        ``trace_parent`` (a Span or SpanContext) parents the call's client
        span; the span's context rides in the request payload so the
        server-side handler span stitches underneath it.
        """
        rpc_id = self._fresh_rpc_id()
        request = dict(payload)
        request["rpc_id"] = rpc_id
        reply = yield from self._perform(
            dst, kind, request, rpc_id, timeout=timeout, retries=retries,
            completion_timeout=completion_timeout, trace_parent=trace_parent,
        )
        if reply["ok"]:
            return reply.get("value")
        raise _rebuild_error(reply.get("error_kind", "cluster"),
                             reply.get("error", ""))

    def call_many(self, dst: str, calls: Sequence[Tuple[str, Dict[str, Any]]],
                  timeout: Optional[float] = None,
                  retries: Optional[int] = None,
                  completion_timeout: Optional[float] = None,
                  trace_parent: Any = None
                  ) -> Generator[Any, Any, List[Tuple[bool, Any]]]:
        """Generator: send several sub-requests to one node in a single
        network message (see :data:`BATCH_KIND`).

        ``calls`` is a sequence of ``(kind, payload)`` pairs; the server
        dispatches them in order, each with its own rpc id for dedup, and
        answers once with all sub-replies.  Returns a list aligned with
        ``calls`` of ``(ok, value)`` pairs — ``(True, value)`` for a
        successful sub-call, ``(False, error)`` with the reconstructed
        remote error otherwise — so one failing sub-call never masks the
        outcome of its batch-mates.  Raises :class:`RpcTimeout` only when
        the batch itself could not be delivered/answered.
        """
        rpc_id = self._fresh_rpc_id()
        request = {
            "rpc_id": rpc_id,
            "calls": [
                {"kind": kind,
                 "payload": dict(payload, rpc_id=f"{rpc_id}/{index}")}
                for index, (kind, payload) in enumerate(calls)
            ],
        }
        reply = yield from self._perform(
            dst, BATCH_KIND, request, rpc_id, timeout=timeout,
            retries=retries, completion_timeout=completion_timeout,
            trace_parent=trace_parent,
        )
        if not reply["ok"]:  # pragma: no cover - batches carry errors inline
            raise _rebuild_error(reply.get("error_kind", "cluster"),
                                 reply.get("error", ""))
        outcomes: List[Tuple[bool, Any]] = []
        for sub in reply.get("value", []):
            if sub.get("ok"):
                outcomes.append((True, sub.get("value")))
            else:
                outcomes.append((False, _rebuild_error(
                    sub.get("error_kind", "cluster"), sub.get("error", ""))))
        return outcomes

    def _perform(self, dst: str, kind: str, request: Dict[str, Any],
                 rpc_id: str,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 completion_timeout: Optional[float] = None,
                 trace_parent: Any = None
                 ) -> Generator[Any, Any, Dict[str, Any]]:
        """Shared retransmit/ack/poll machinery; returns the raw reply
        payload (``{"ok": ..., ...}``) or raises :class:`RpcTimeout`."""
        timeout = timeout if timeout is not None else self.default_timeout
        retries = retries if retries is not None else self.default_retries
        completion_timeout = (
            completion_timeout if completion_timeout is not None
            else self.default_completion_timeout
        )
        event = self.kernel.event(name=f"rpc:{kind}:{rpc_id}")
        ack = self.kernel.event(name=f"ack:{kind}:{rpc_id}")
        self._pending[rpc_id] = event
        self._acks[rpc_id] = ack
        span = None
        started = 0.0
        if self.obs is not None:
            span = self.obs.span(f"rpc:{kind}", parent=trace_parent,
                                 kind="client", node=self.node.name, dst=dst)
            request[TRACE_KEY] = span.context.to_wire()
            started = self.kernel.now

        def finish(reply: Dict[str, Any]) -> Dict[str, Any]:
            if span is not None:
                self.obs.observe("rpc_latency", self.kernel.now - started,
                                 kind=kind)
                span.set(ok=reply["ok"]).finish()
            return reply

        def timed_out(phase: str, text: str) -> RpcTimeout:
            if span is not None:
                self.obs.count("rpc_timeouts_total", kind=kind, phase=phase)
                span.set(ok=False, error="timeout").finish()
            return RpcTimeout(text)

        try:
            acked = False
            for _attempt in range(retries + 1):
                if _attempt and span is not None:
                    span.event("retransmit", attempt=_attempt)
                self.node.send(dst, kind, request)
                deadline = self.kernel.timeout_event(timeout)
                index, value = yield any_of(self.kernel, [event, ack, deadline])
                if index == 0:
                    return finish(value)
                if index == 1:
                    acked = True
                    break
            if not acked:
                raise timed_out("ack", (
                    f"{self.node.name}: rpc {kind} to {dst} unacknowledged "
                    f"after {retries + 1} attempts"
                ))
            if event.settled:
                return finish(event.value)
            # completion phase: poll periodically — a lost reply is re-sent
            # from the server's reply cache on the next poll.
            remaining = completion_timeout
            while remaining > 0:
                wait = min(timeout, remaining)
                deadline = self.kernel.timeout_event(wait)
                index, value = yield any_of(self.kernel, [event, deadline])
                if index == 0:
                    return finish(value)
                remaining -= wait
                if remaining > 0:
                    self.node.send(dst, kind, request)
            raise timed_out("completion", (
                f"{self.node.name}: rpc {kind} to {dst} acknowledged but "
                f"no reply within {completion_timeout}"
            ))
        finally:
            if span is not None:
                span.finish()  # idempotent; closes the span on kill/error paths
            self._pending.pop(rpc_id, None)
            self._acks.pop(rpc_id, None)
