"""The simulated distributed system (§2's failure model, executable).

Substituting for the paper's workstation LAN testbed: fail-silent nodes
(volatile state wiped by crashes, stable storage and logs surviving), a
message network with loss/duplication/delay/partitions, a retransmitting
at-most-once RPC transport, object servers with coloured lock tables, and
client-side action coordination with presumed-abort two-phase commit per
outermost colour.

Everything runs on the deterministic :mod:`repro.sim` kernel: application
code is written as generator processes and each scenario replays
bit-identically for a given seed.
"""

from repro.cluster.message import Message
from repro.cluster.network import Network, NetworkConfig
from repro.cluster.node import Node
from repro.cluster.transport import RpcTransport
from repro.cluster.server import ObjectServer
from repro.cluster.client import ClusterAction, ClusterClient, ObjectRef
from repro.cluster.cluster import Cluster

__all__ = [
    "Message",
    "Network",
    "NetworkConfig",
    "Node",
    "RpcTransport",
    "ObjectServer",
    "ClusterClient",
    "ClusterAction",
    "ObjectRef",
    "Cluster",
]
