"""Distributed action structures: §3 over the cluster.

The same colour schemes as :mod:`repro.structures`, driven through a
:class:`~repro.cluster.client.ClusterClient`.  Locks live on the object
servers; the control action's retained locks therefore pin objects across
the whole cluster between constituents — the distributed-make scenario of
fig. 8.
"""

from __future__ import annotations

from typing import Optional

from repro.actions.status import ActionStatus
from repro.cluster.client import ClusterAction, ClusterClient, ObjectRef
from repro.errors import InvalidActionState
from repro.locking.modes import LockMode


class ClusterSerializingAction:
    """Distributed serializing action (figs. 3/11)."""

    def __init__(self, client: ClusterClient,
                 parent: Optional[ClusterAction] = None,
                 name: str = "serializing"):
        self.client = client
        self.name = name
        self.control_colour = client.fresh_colour(f"{name}.control")
        self.control = client.coloured(
            [self.control_colour], parent=parent, name=f"{name}.A"
        )
        self._count = 0

    def constituent(self, name: str = "") -> ClusterAction:
        if self.control.status is not ActionStatus.ACTIVE:
            raise InvalidActionState(f"{self.name}: already closed")
        self._count += 1
        label = name or f"{self.name}.c{self._count}"
        data_colour = self.client.fresh_colour(f"{label}.data")
        action = self.client.coloured(
            [self.control_colour, data_colour], parent=self.control, name=label
        )
        action.default_colour = data_colour
        action.companion_colour = self.control_colour
        return action

    def run_constituent(self, action: ClusterAction, body):
        """Generator: run a constituent body under scope semantics."""
        return self.client.run_scope(action, body)

    def close(self):
        """Generator: commit the control action (release retained locks)."""
        return self.client.commit(self.control)

    def cancel(self):
        """Generator: abort the control action; committed constituents stay."""
        return self.client.abort(self.control)


class ClusterGluedGroup:
    """Distributed glued actions (figs. 5/6/12)."""

    def __init__(self, client: ClusterClient,
                 parent: Optional[ClusterAction] = None, name: str = "glued"):
        self.client = client
        self.name = name
        self.control_colour = client.fresh_colour(f"{name}.control")
        self.control = client.coloured(
            [self.control_colour], parent=parent, name=f"{name}.G"
        )
        self._count = 0

    def member(self, name: str = "") -> ClusterAction:
        if self.control.status is not ActionStatus.ACTIVE:
            raise InvalidActionState(f"{self.name}: group already closed")
        self._count += 1
        label = name or f"{self.name}.A{self._count}"
        data_colour = self.client.fresh_colour(f"{label}.data")
        action = self.client.coloured(
            [self.control_colour, data_colour], parent=self.control, name=label
        )
        action.default_colour = data_colour
        return action

    def hand_over(self, action: ClusterAction, *refs: ObjectRef):
        """Generator: pin objects in the control colour for the next member."""
        for ref in refs:
            yield from self.client.lock(
                action, ref, LockMode.EXCLUSIVE_READ, colour=self.control_colour
            )

    def close(self):
        return self.client.commit(self.control)

    def cancel(self):
        return self.client.abort(self.control)
