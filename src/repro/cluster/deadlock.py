"""Distributed deadlock detection: Chandy–Misra–Haas edge chasing.

Server-local waits-for cycles are caught by each server's own detector;
cycles *across* servers (action W waits at server S1 for a lock H holds,
while H waits at server S2 for a lock W holds) are invisible to any single
server.  The classic AND-model edge-chasing algorithm closes the gap:

- When a request by W blocks at server S, S sends a *probe*
  ``(initiator=W, target=H)`` to each blocker H's **home node** (the node
  H's client runs on, carried in the action context).
- The home knows whether H is currently awaiting a remote operation and at
  which server (the client marks this in its node's volatile memory around
  every RPC); if so it forwards the probe to that server.
- That server maps the probe onto H's queued requests: each of *their*
  blockers H' extends the chase.  A probe arriving back at its initiator
  proves a cycle; the detecting server tells the initiator's home, which
  tells the server holding the initiator's queued request to refuse it
  with :class:`~repro.errors.DeadlockDetected` — the waiter's RPC fails
  and its client aborts the action.
- Probes carry the visited set, so chases terminate even on long or
  re-entrant paths; blocked requests re-probe periodically (a cycle can
  close *after* the first probe was sent).

The per-request lock-wait timeout stays as a backstop for pathologies the
probes cannot see (e.g. a waiter whose home node crashed).
"""

from __future__ import annotations

from typing import Dict, Set, TYPE_CHECKING

from repro.cluster.message import Message, decode_uid, encode_uid
from repro.errors import DeadlockDetected
from repro.util.uid import Uid

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.server import ObjectServer

#: volatile key: action uid -> server name the action is awaiting
WAITING_AT_KEY = "action_waiting"


class EdgeChaser:
    """The probe logic for one node (attached to its ObjectServer)."""

    def __init__(self, server: "ObjectServer", probe_interval: float = 5.0):
        self.server = server
        self.node = server.node
        self.kernel = server.kernel
        self.probe_interval = probe_interval
        self.probes_sent = 0
        self.cycles_detected = 0
        # probes are fire-and-forget datagrams, not RPCs: a lost probe is
        # compensated by the periodic re-probe, so no ack/reply machinery.
        node = server.node

        def dispatch(message: Message) -> bool:
            if message.kind == "dl_probe":
                return self._h_probe(message)
            if message.kind == "dl_victim":
                return self._h_victim(message)
            if message.kind == "dl_cancel_wait":
                return self._h_cancel_wait(message)
            return False

        node.add_dispatcher(dispatch)

    # -- initiation --------------------------------------------------------------

    def chase_from(self, waiter_uid: Uid) -> None:
        """Start (or refresh) the chase for a request of ``waiter_uid``
        blocked at this server."""
        self._forward_probes(initiator=waiter_uid, target_uid=waiter_uid,
                             visited=set())
        self._schedule_reprobe(waiter_uid)

    def _schedule_reprobe(self, waiter_uid: Uid) -> None:
        def reprobe() -> None:
            if not self.node.alive:
                return
            if self.server.registry.pending_requests_of(waiter_uid):
                self._forward_probes(initiator=waiter_uid,
                                     target_uid=waiter_uid, visited=set())
                self.kernel.schedule(self.probe_interval, reprobe)

        self.kernel.schedule(self.probe_interval, reprobe)

    # -- the chase ------------------------------------------------------------------

    def _forward_probes(self, initiator: Uid, target_uid: Uid,
                        visited: Set) -> None:
        """``target_uid`` waits at THIS server; chase each of its blockers."""
        registry = self.server.registry
        for request in registry.pending_requests_of(target_uid):
            table = registry.table(request.object_uid)
            for blocker_uid in table.blocked_on(request):
                if blocker_uid == initiator:
                    self.cycles_detected += 1
                    if self.server.obs is not None:
                        self.server.obs.count("deadlock_cycles_total",
                                              node=self.node.name)
                    # every member of the cycle is in the visited set (plus
                    # the endpoints); all detection points therefore agree
                    # on one victim: the youngest (largest uid) — so
                    # symmetric detections do not kill two actions.
                    members = {initiator, target_uid}
                    for key in visited:
                        members.add(Uid(str(key[0]), int(key[1])))
                    self._declare_victim(max(members))
                    return
                key = encode_uid(blocker_uid)
                if tuple(key) in visited:
                    continue
                mirror = self.server.mirrors.get(blocker_uid)
                home = getattr(mirror, "home", "") if mirror else ""
                if not home:
                    continue
                self.probes_sent += 1
                if self.server.obs is not None:
                    self.server.obs.count("deadlock_probes_total",
                                          node=self.node.name)
                self.node.send(home, "dl_probe", {
                    "initiator": encode_uid(initiator),
                    "target": encode_uid(blocker_uid),
                    "visited": sorted(visited | {tuple(key)}),
                })

    def _h_probe(self, message: Message) -> bool:
        payload = message.payload
        initiator = decode_uid(payload["initiator"])
        target = decode_uid(payload["target"])
        visited = {tuple(v) for v in payload.get("visited", [])}
        # Role 1: we are the target's home — forward to where it waits.
        waiting_at: Dict = self.node.volatile.get(WAITING_AT_KEY, {})
        waiting_server = waiting_at.get(target)
        if waiting_server == self.node.name:
            waiting_server = None  # it waits here; fall through to role 2
        if waiting_server is not None:
            self.node.send(waiting_server, "dl_probe", payload)
            return True
        # Role 2: the target has queued lock requests at this server.
        if self.server.registry.pending_requests_of(target):
            self._forward_probes(initiator, target, visited)
        # Otherwise the target is running (no dependency edge): chase ends.
        return True

    # -- resolution ---------------------------------------------------------------------

    def _declare_victim(self, victim_uid: Uid) -> None:
        """A cycle closed on ``victim_uid``: tell its home to break it."""
        mirror = self.server.mirrors.get(victim_uid)
        home = getattr(mirror, "home", "") if mirror else ""
        if home == self.node.name or not home:
            self._break_wait(victim_uid)
            return
        self.node.send(home, "dl_victim", {"victim": encode_uid(victim_uid)})

    def _h_victim(self, message: Message) -> bool:
        victim = decode_uid(message.payload["victim"])
        waiting_at: Dict = self.node.volatile.get(WAITING_AT_KEY, {})
        waiting_server = waiting_at.get(victim)
        if waiting_server is None or waiting_server == self.node.name:
            self._break_wait(victim)
            return True
        self.node.send(waiting_server, "dl_cancel_wait",
                       {"victim": message.payload["victim"]})
        return True

    def _h_cancel_wait(self, message: Message) -> bool:
        self._break_wait(decode_uid(message.payload["victim"]))
        return True

    def _break_wait(self, victim_uid: Uid) -> None:
        """Refuse the victim's queued requests at this server."""
        self.server.registry.cancel_waiting(
            victim_uid, reason="distributed deadlock victim",
            error=DeadlockDetected(cycle=[victim_uid]),
        )


def mark_waiting(node, action_uid: Uid, server: str) -> None:
    """Client-side: record that ``action_uid`` awaits ``server`` (volatile)."""
    node.volatile.setdefault(WAITING_AT_KEY, {})[action_uid] = server


def clear_waiting(node, action_uid: Uid) -> None:
    node.volatile.get(WAITING_AT_KEY, {}).pop(action_uid, None)
