"""The Cluster facade: wire up kernel, network, nodes, servers and clients."""

from __future__ import annotations

from typing import Dict, Optional

from repro.backend import ExecutionBackend, resolve_backend
from repro.cluster.client import ClusterClient
from repro.cluster.network import NetworkConfig
from repro.cluster.node import Node
from repro.cluster.server import ObjectServer
from repro.cluster.transport import RpcTransport
from repro.colours.colour import ColourAllocator
from repro.errors import ClusterError
from repro.obs import Observability, ObservabilityBridge
from repro.stdobjects import (
    Account,
    AppendLog,
    CommutingCounter,
    Counter,
    DiarySlot,
    EscrowAccount,
    FifoQueue,
    FileObject,
    Register,
)
from repro.util.rng import SplitRandom
from repro.util.uid import UidGenerator

#: object types servable out of the box (flat @operation types)
DEFAULT_CLASSES = {
    Counter.type_name: Counter,
    Register.type_name: Register,
    Account.type_name: Account,
    CommutingCounter.type_name: CommutingCounter,
    EscrowAccount.type_name: EscrowAccount,
    AppendLog.type_name: AppendLog,
    FifoQueue.type_name: FifoQueue,
    FileObject.type_name: FileObject,
    DiarySlot.type_name: DiarySlot,
}


class Cluster:
    """A simulated distributed system ready for experiments.

    Typical use::

        cluster = Cluster(seed=42)
        for name in ("alpha", "beta", "gamma"):
            cluster.add_node(name)
        client = cluster.client("alpha")

        def app():
            ref = yield from client.create("beta", "counter", value=0)
            action = client.top_level("t1")
            yield from client.invoke(action, ref, "increment", 5)
            yield from client.commit(action)

        cluster.spawn("alpha", app())
        cluster.run()
    """

    def __init__(self, seed: int = 0, config: Optional[NetworkConfig] = None,
                 classes: Optional[Dict[str, type]] = None,
                 lock_wait_timeout: float = 60.0,
                 rpc_timeout: float = 10.0, rpc_retries: int = 3,
                 edge_chasing: bool = True, probe_interval: float = 5.0,
                 observability: Optional[Observability] = None,
                 fast_paths: bool = True, commute: bool = True,
                 max_finished_spans: Optional[int] = None,
                 metrics_max_series: Optional[int] = None,
                 max_audit_events: Optional[int] = None,
                 backend: Optional[ExecutionBackend] = None):
        #: the execution backend every layer schedules on — ``None`` (the
        #: default) is the deterministic simulation; ``"asyncio"`` or an
        #: :class:`~repro.backend.aio.AsyncioBackend` instance runs the
        #: same protocol code on a real event loop with a wall clock.
        #: ``self.kernel`` stays the scheduler handle the rest of the
        #: stack is written against, whichever backend provides it.
        self.backend = resolve_backend(backend)
        self.kernel = self.backend.kernel
        #: the cluster-wide observability hub, on simulated time.  Every
        #: layer (network, transport, servers, clients, deadlock chasers)
        #: reports into it; see ``metrics_dump()`` and ``obs.span_tree()``.
        #: The ``max_*`` knobs bound its retention (finished spans, series
        #: per metric, audited events) for long soaks; ``None`` keeps the
        #: short-run defaults.
        self.obs = observability if observability is not None else (
            Observability(tick_source=lambda: self.kernel.now,
                          max_finished_spans=max_finished_spans,
                          metrics_max_series=metrics_max_series,
                          max_audit_events=max_audit_events)
        )
        self.rng = SplitRandom(seed)
        self.network = self.backend.make_network(self.rng, config,
                                                 observability=self.obs)
        self.classes = dict(classes if classes is not None else DEFAULT_CLASSES)
        self.lock_wait_timeout = lock_wait_timeout
        self.rpc_timeout = rpc_timeout
        self.rpc_retries = rpc_retries
        self.edge_chasing = edge_chasing
        self.probe_interval = probe_interval
        #: commit-protocol fast paths (piggybacked decision, read-only
        #: votes, one-phase commit) for every client created here; False
        #: pins the classic presumed-abort protocol
        self.fast_paths = fast_paths
        #: commutativity-based coordination avoidance: colours whose every
        #: update belongs to a declared-commuting operation group commit in
        #: a single local-decision round instead of a prepare round; False
        #: routes every colour through classic/fast-path 2PC
        self.commute = commute
        self.nodes: Dict[str, Node] = {}
        self.transports: Dict[str, RpcTransport] = {}
        self.servers: Dict[str, ObjectServer] = {}
        self._action_uids = UidGenerator("caction")
        self.colours = ColourAllocator("ccolour")
        self._observers: list = []
        #: every client created via :meth:`client`, in creation order; the
        #: introspection layer reads their coordinator-side views (live
        #: actions, txn decision log, reaper backlog) to cross-check what
        #: servers report.
        self.clients: list = []

    # -- topology ------------------------------------------------------------

    def add_node(self, name: str) -> Node:
        """Create a node plus its transport and object server.

        The node joins the shared network and observability hub; names
        must be unique (:class:`ClusterError` otherwise).
        """
        if name in self.nodes:
            raise ClusterError(f"node {name} already exists")
        node = Node(name, self.kernel, self.network)
        transport = RpcTransport(
            node, default_timeout=self.rpc_timeout,
            default_retries=self.rpc_retries,
            # lock waits happen inside acknowledged rpcs: let the reply
            # phase outlive the server's lock-wait bound
            default_completion_timeout=self.lock_wait_timeout + 3 * self.rpc_timeout,
            observability=self.obs,
        )
        server = ObjectServer(node, transport, self.classes,
                              lock_wait_timeout=self.lock_wait_timeout,
                              edge_chasing=self.edge_chasing,
                              probe_interval=self.probe_interval,
                              observability=self.obs)
        for observer in self._observers:
            server.add_observer(observer)
        self.nodes[name] = node
        self.transports[name] = transport
        self.servers[name] = server
        return node

    def node(self, name: str) -> Node:
        """The :class:`Node` called ``name`` (KeyError if unknown)."""
        return self.nodes[name]

    def client(self, node_name: str, name: str = "") -> ClusterClient:
        """Create a :class:`ClusterClient` homed on ``node_name``.

        The client shares the cluster's uid/colour allocators and
        inherits its ``fast_paths`` setting and registered observers.
        """
        node = self.nodes[node_name]
        client = ClusterClient(
            node, self.transports[node_name],
            self._action_uids, self.colours, self.classes,
            name=name or f"client@{node_name}",
            observability=self.obs,
            fast_paths=self.fast_paths,
            commute=self.commute,
            backend=self.backend,
        )
        # the bridge gives every action a span (and per-colour outcome
        # counters) so the client's RPC spans have a parent to stitch to.
        client.add_observer(ObservabilityBridge(self.obs, node=node_name))
        for observer in self._observers:
            client.add_observer(observer)
        self.clients.append(client)
        return client

    def add_observer(self, observer) -> None:
        """Attach a trace/metrics observer cluster-wide.

        The observer (e.g. a :class:`~repro.trace.TraceRecorder`) is wired
        into every existing and future server — so distributed lock grants
        fire ``on_lock_granted`` — and into every client created after the
        call (action begin/commit/abort events).
        """
        self._observers.append(observer)
        for server in self.servers.values():
            server.add_observer(observer)

    # -- observability ---------------------------------------------------------

    def attach_perf(self, interval: float = 5.0, max_points: int = 2048,
                    recorder_capacity: int = 4096, sample_rate: float = 1.0,
                    seed: int = 0, process_probes: bool = False,
                    backend: Optional[ExecutionBackend] = None):
        """Attach the performance observatory (``repro.obs.perf``).

        Starts a :class:`~repro.obs.perf.TimeSeriesSampler` on the sim
        clock with cluster-level gauges probed in (in-doubt objects, live
        action mirrors, prepared txns, pending RPCs across all servers)
        and a :class:`~repro.obs.perf.FlightRecorder` ring on the event
        bus.  Call before ``run()`` — ideally before ``add_node`` so no
        events predate the ring.  Returns ``(sampler, recorder)``; both
        also hang off ``cluster.obs`` and are included in ``obs.save()``.

        The sampler's timer rides the cluster's execution backend (real
        wall-clock intervals on asyncio, virtual ones on sim); pass
        ``backend=`` to clock it elsewhere.
        """
        from repro.obs.perf import FlightRecorder, TimeSeriesSampler

        sampler = TimeSeriesSampler(self.obs, interval=interval,
                                    max_points=max_points,
                                    process_probes=process_probes)
        sampler.add_probe("in_doubt_objects", lambda: sum(
            len(s.in_doubt_objects) for s in self.servers.values()))
        sampler.add_probe("action_mirrors", lambda: sum(
            len(s.mirrors) for s in self.servers.values()))
        sampler.add_probe("prepared_txns", lambda: sum(
            len(s.prepared) for s in self.servers.values()))
        sampler.add_probe("pending_rpcs", lambda: sum(
            t.pending_count() for t in self.transports.values()))
        sampler.attach((backend or self.backend).kernel)
        recorder = FlightRecorder(self.obs, capacity=recorder_capacity,
                                  sample_rate=sample_rate, seed=seed)
        return sampler, recorder

    def attach_postmortem(self, max_records: int = 10_000):
        """Attach the causal-attribution engine (``repro.obs.postmortem``).

        Subscribes a :class:`~repro.obs.postmortem.PostmortemEngine` to the
        cluster's event bus: every finished action gets a postmortem record
        (abort reason, blocker chain, txn history), aborts feed the
        ``abort_reason_total`` histogram, and — when a flight recorder is
        attached (see :meth:`attach_perf`) — guilty ring windows are frozen
        alongside the auditor's finding snapshots.  Call before ``run()``.
        Returns the engine; it also hangs off ``cluster.obs.postmortem``
        and its records are included in ``obs.save()`` dumps.
        """
        from repro.obs.postmortem import PostmortemEngine

        engine = PostmortemEngine(metrics=self.obs.metrics,
                                  flight=self.obs.flight,
                                  max_records=max_records)
        engine.attach(self.obs)
        return engine

    def attach_introspection(self, interval: float = 10.0,
                             probe_timeout: float = 3.0,
                             queue_depth_threshold: int = 8,
                             in_doubt_age_threshold: float = 50.0,
                             max_snapshots: int = 32):
        """Attach the live-introspection layer (``repro.obs.introspect``).

        Wires a :class:`~repro.obs.introspect.ClusterInspector` to this
        cluster: it fans ``status_query`` probes out to every server,
        stitches the answers into one cluster snapshot, cross-checks them
        against the coordinator-side view (drift detection) and derives a
        per-server health verdict (``cluster_health`` gauge).  ``interval``
        > 0 starts a periodic probe on the sim clock (first probe fires
        immediately); pass ``interval=0`` for manual probing via
        :meth:`~repro.obs.introspect.ClusterInspector.probe_once`.  Returns
        the inspector; it also hangs off ``cluster.obs.inspector`` and its
        snapshots are included in ``obs.save()`` dumps.
        """
        from repro.obs.introspect import ClusterInspector

        inspector = ClusterInspector(
            self, probe_timeout=probe_timeout,
            queue_depth_threshold=queue_depth_threshold,
            in_doubt_age_threshold=in_doubt_age_threshold,
            max_snapshots=max_snapshots)
        if interval and interval > 0:
            inspector.attach(interval=interval)
        return inspector

    def attach_slo(self, objectives=None, latency_target: float = 25.0,
                   abort_budget: float = 0.25, max_breaches: int = 256):
        """Attach the SLO engine (``repro.obs.slo``) — layer 6.

        Evaluates declarative objectives (commit-latency windowed mean,
        abort-rate ceiling, auditor-finding/drift zero-tolerance, minimum
        cluster health) once per sampler point with multi-window burn-rate
        alerting; breaches emit ``slo.breach`` bus events, bump
        ``slo_breach_total{objective}`` and freeze the flight-recorder
        ring.  Requires :meth:`attach_perf` first — the sampler is the
        engine's clock (:class:`ClusterError` otherwise).  Attach *after*
        :meth:`attach_introspection` so the stock set includes the
        cluster-health objective.  Pass ``objectives`` to replace the
        stock set from :func:`repro.obs.slo.default_objectives`.  Returns
        the engine; it
        also hangs off ``cluster.obs.slo`` and its ledger is included in
        ``obs.save()`` dumps.
        """
        from repro.obs.slo import SLOEngine, default_objectives

        if self.obs.sampler is None:
            raise ClusterError(
                "attach_slo() needs a sampler: call attach_perf() first")
        if objectives is None:
            objectives = default_objectives(
                latency_target=latency_target, abort_budget=abort_budget,
                include_health=self.obs.inspector is not None)
        engine = SLOEngine(self.obs, objectives=objectives,
                           max_breaches=max_breaches)
        engine.attach(self.obs.sampler)
        return engine

    def metrics_dump(self) -> Dict:
        """One JSON-able snapshot of every metric, kernel and network stat."""
        stats = self.kernel.stats
        for key, value in stats.items():
            self.obs.metrics.gauge(f"kernel_{key}").set(value)
        for key, value in self.network.stats().items():
            self.obs.metrics.gauge(f"network_{key}_total").set(value)
        self.obs.metrics.gauge("backend_wall_clock").set(
            1 if self.backend.wall_clock else 0)
        return self.obs.dump()

    def close(self) -> None:
        """Release the execution backend's resources (asyncio event loop).

        A no-op on the sim backend; call it — or use the backend as a
        context manager — whenever the cluster runs on asyncio, which
        owns real file descriptors.
        """
        self.backend.close()

    # -- execution -------------------------------------------------------------

    def spawn(self, node_name: str, body, name: str = ""):
        """Run an application generator as a process on a node."""
        return self.nodes[node_name].spawn(body, name=name)

    def run(self, until: Optional[float] = None) -> float:
        """Drive the event loop (to ``until``, or until idle); returns now."""
        return self.kernel.run(until=until)

    def run_process(self, node_name: str, body, name: str = "",
                    limit: float = 1e9):
        """Spawn and run to completion; returns the process result."""
        handle = self.spawn(node_name, body, name=name)
        self.kernel.run_until_settled(handle.join(), limit=limit)
        return handle.result

    # -- fault injection ----------------------------------------------------------

    def crash(self, node_name: str) -> None:
        """Fail-silent crash now: volatile state lost, processes killed."""
        node = self.nodes[node_name]
        if node.alive:
            # fail-silence means the node itself cannot announce its death;
            # the injector can, so postmortems know a timeout hit a corpse
            self.obs.emit("node.crash", node=node_name)
        node.crash()

    def restart(self, node_name: str) -> None:
        """Restart a crashed node; recovery replays its WAL."""
        self.nodes[node_name].restart()

    def crash_at(self, node_name: str, when: float) -> None:
        """Schedule :meth:`crash` at absolute simulated time ``when``."""
        self.kernel.schedule(max(0.0, when - self.kernel.now),
                             lambda: self.crash(node_name))

    def restart_at(self, node_name: str, when: float) -> None:
        """Schedule :meth:`restart` at absolute simulated time ``when``."""
        self.kernel.schedule(max(0.0, when - self.kernel.now),
                             self.nodes[node_name].restart)
