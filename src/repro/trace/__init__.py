"""Action tracing and paper-style timeline rendering.

Attach a :class:`TraceRecorder` to a :class:`~repro.runtime.LocalRuntime`
and run any workload; :func:`render_timeline` then draws the executed
action structure in the style of the paper's figures — spans along a
logical time axis, nesting by indentation, colours in brackets, outcome at
the end::

    A [c1]      ├──────────────────────────────┤ aborted
      B [c1]      ├────────┤ committed
      C [c1]                 ├───────┤ aborted

Used by ``examples/timeline_traces.py`` to regenerate figs. 2, 3, 5 and 7
from real executions.
"""

from repro.trace.recorder import TraceEvent, TraceRecorder
from repro.trace.timeline import render_timeline

__all__ = ["TraceRecorder", "TraceEvent", "render_timeline"]
