"""Recording action lifecycle events from a runtime."""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.actions.status import ActionStatus
from repro.colours.colour import Colour
from repro.locking.modes import LockMode
from repro.util.uid import Uid


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence, ordered by ``tick`` (logical or sim time)."""

    tick: float
    kind: str                      # "begin" | "commit" | "abort" | "lock"
    action_uid: Uid
    action_name: str
    parent_uid: Optional[Uid]
    colours: Tuple[str, ...]
    detail: str = ""


class TraceRecorder:
    """A runtime observer accumulating :class:`TraceEvent`s.

    Thread-safe (the local runtime is multi-threaded).  By default ticks
    are a global logical clock, so concurrent actions interleave on one
    axis; pass ``tick_source`` (e.g. ``lambda: kernel.now``) to put events
    on simulated time instead — cluster traces do this, so a rendered
    timeline's x-axis is real simulated duration.
    """

    def __init__(self, tick_source=None):
        self.events: List[TraceEvent] = []
        self._ticks = itertools.count(1)
        self._tick_source = tick_source
        self._mutex = threading.Lock()

    # -- observer interface -------------------------------------------------

    def on_action_created(self, action) -> None:
        self._record("begin", action)

    def on_action_terminated(self, action) -> None:
        kind = "commit" if action.status is ActionStatus.COMMITTED else "abort"
        self._record(kind, action)

    def on_lock_granted(self, action, object_uid: Uid, mode: LockMode,
                        colour: Colour) -> None:
        self._record("lock", action,
                     detail=f"{mode.value}:{object_uid}:{colour}")

    # -- queries ----------------------------------------------------------------

    def events_of(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def spans(self) -> Dict[Uid, Dict]:
        """Per-action summary: begin/end ticks, outcome, names, ancestry."""
        summary: Dict[Uid, Dict] = {}
        for event in self.events:
            entry = summary.setdefault(event.action_uid, {
                "name": event.action_name,
                "parent": event.parent_uid,
                "colours": event.colours,
                "begin": None, "end": None, "outcome": "active",
                "locks": 0,
            })
            if event.kind == "begin":
                entry["begin"] = event.tick
            elif event.kind in ("commit", "abort"):
                entry["end"] = event.tick
                entry["outcome"] = "committed" if event.kind == "commit" else "aborted"
            elif event.kind == "lock":
                entry["locks"] += 1
        return summary

    def clear(self) -> None:
        with self._mutex:
            self.events.clear()

    # -- internals ---------------------------------------------------------------

    def _record(self, kind: str, action, detail: str = "") -> None:
        with self._mutex:
            if self._tick_source is not None:
                tick = self._tick_source()
            else:
                tick = next(self._ticks)
            self.events.append(TraceEvent(
                tick=tick,
                kind=kind,
                action_uid=action.uid,
                action_name=action.name,
                parent_uid=action.parent.uid if action.parent else None,
                colours=tuple(sorted(str(c) for c in action.colours)),
                detail=detail,
            ))
