"""Recording action lifecycle events from a runtime.

Since the observability layer landed (:mod:`repro.obs`), the recorder is a
backwards-compatible front-end over its event bus: every recorded event is
also published as an :class:`~repro.obs.bus.ObsEvent` on the recorder's
bus, so metrics registries and tracers can subscribe to the same stream
the timelines are rendered from.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.actions.status import ActionStatus
from repro.colours.colour import Colour
from repro.locking.modes import LockMode
from repro.obs.bus import EventBus
from repro.util.uid import Uid


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence, ordered by ``tick`` (logical or sim time)."""

    tick: float
    kind: str                      # "begin" | "commit" | "abort" | "lock"
    action_uid: Uid
    action_name: str
    parent_uid: Optional[Uid]
    colours: Tuple[str, ...]
    detail: str = ""


class TraceRecorder:
    """A runtime observer accumulating :class:`TraceEvent`s.

    Thread-safe (the local runtime is multi-threaded).  By default ticks
    are a global logical clock, so concurrent actions interleave on one
    axis; pass ``tick_source`` (e.g. ``lambda: kernel.now``) to put events
    on simulated time instead — cluster traces do this, so a rendered
    timeline's x-axis is real simulated duration.

    ``bus`` (optional) receives every event as an ObsEvent of kind
    ``trace.<kind>``; a fresh private bus is created when none is given, so
    subscribers can always attach via :attr:`bus`.
    """

    def __init__(self, tick_source=None, bus: Optional[EventBus] = None):
        self.events: List[TraceEvent] = []
        self.bus = bus if bus is not None else EventBus()
        self._ticks = itertools.count(1)
        self._tick_source = tick_source
        self._mutex = threading.Lock()

    # -- observer interface -------------------------------------------------

    def on_action_created(self, action) -> None:
        self._record("begin", action)

    def on_action_terminated(self, action) -> None:
        kind = "commit" if action.status is ActionStatus.COMMITTED else "abort"
        self._record(kind, action)

    def on_lock_granted(self, action, object_uid: Uid, mode,
                        colour: Colour) -> None:
        # ``mode`` is a LockMode for plain objects or an operation-group
        # name (str) for semantic objects — both occur on server paths.
        label = mode.value if isinstance(mode, LockMode) else str(mode)
        self._record("lock", action,
                     detail=f"{label}:{object_uid}:{colour}")

    # -- queries ----------------------------------------------------------------

    def snapshot(self) -> List[TraceEvent]:
        """A consistent copy of the event list (safe while recording)."""
        with self._mutex:
            return list(self.events)

    def events_of(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.snapshot() if event.kind == kind]

    def spans(self) -> Dict[Uid, Dict]:
        """Per-action summary: begin/end ticks, outcome, names, ancestry."""
        summary: Dict[Uid, Dict] = {}
        for event in self.snapshot():
            entry = summary.setdefault(event.action_uid, {
                "name": event.action_name,
                "parent": event.parent_uid,
                "colours": event.colours,
                "begin": None, "end": None, "outcome": "active",
                "locks": 0,
            })
            if event.kind == "begin":
                entry["begin"] = event.tick
            elif event.kind in ("commit", "abort"):
                entry["end"] = event.tick
                entry["outcome"] = "committed" if event.kind == "commit" else "aborted"
            elif event.kind == "lock":
                entry["locks"] += 1
        return summary

    def clear(self) -> None:
        with self._mutex:
            self.events.clear()

    # -- internals ---------------------------------------------------------------

    def _record(self, kind: str, action, detail: str = "") -> None:
        with self._mutex:
            if self._tick_source is not None:
                tick = self._tick_source()
            else:
                tick = next(self._ticks)
            event = TraceEvent(
                tick=tick,
                kind=kind,
                action_uid=action.uid,
                action_name=action.name,
                parent_uid=action.parent.uid if action.parent else None,
                colours=tuple(sorted(str(c) for c in action.colours)),
                detail=detail,
            )
            self.events.append(event)
        # publish outside the mutex: subscribers may be arbitrarily slow.
        self.bus.emit(event.tick, f"trace.{kind}",
                      action=str(event.action_uid), name=event.action_name,
                      colours=event.colours, detail=detail)
