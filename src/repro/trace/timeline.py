"""Rendering recorded traces as paper-style timelines."""

from __future__ import annotations

from typing import Dict, List

from repro.trace.recorder import TraceRecorder
from repro.util.uid import Uid


def render_timeline(recorder: TraceRecorder, title: str = "",
                    width: int = 60, show_locks: bool = False) -> str:
    """Draw every recorded action as a span on a shared logical time axis.

    Rows are ordered by begin tick; nesting depth indents the label; the
    span runs from the begin tick to the end tick (or the last tick for
    still-active actions); the outcome is printed after the span.
    """
    events = recorder.snapshot()
    spans = recorder.spans()
    if not spans or not events:
        return f"{title}\n(empty trace)" if title else "(empty trace)"
    first_tick = min(event.tick for event in events)
    last_tick = max(event.tick for event in events)
    span = max(last_tick - first_tick, 1e-9)
    scale = span / max(1, width - 1)

    def column(tick: float) -> int:
        return int((tick - first_tick) / scale)

    def depth_of(uid: Uid) -> int:
        depth = 0
        walker = spans[uid]["parent"]
        while walker is not None and walker in spans:
            depth += 1
            walker = spans[walker]["parent"]
        return depth

    label_rows: List[Dict] = []
    for uid, entry in spans.items():
        if entry["begin"] is None:
            continue
        label = "  " * depth_of(uid) + entry["name"]
        if entry["colours"]:
            label += " [" + ",".join(entry["colours"]) + "]"
        label_rows.append({
            "label": label,
            "begin": entry["begin"],
            "end": entry["end"] if entry["end"] is not None else last_tick,
            "outcome": entry["outcome"],
            "locks": entry["locks"],
        })
    label_rows.sort(key=lambda row: row["begin"])
    label_width = max(len(row["label"]) for row in label_rows)

    lines: List[str] = []
    if title:
        lines.append(title)
    for row in label_rows:
        start_col = column(row["begin"])
        end_col = max(column(row["end"]), start_col + 1)
        bar = (" " * start_col
               + "├" + "─" * max(0, end_col - start_col - 1) + "┤")
        suffix = f" {row['outcome']}"
        if show_locks and row["locks"]:
            suffix += f" ({row['locks']} locks)"
        lines.append(f"{row['label']:<{label_width}}  {bar}{suffix}")
    axis = (" " * (label_width + 2) + f"{first_tick:g}"
            + "." * column(last_tick) + f" t={last_tick:g}")
    lines.append(axis)
    return "\n".join(lines)


def survival_report(recorder: TraceRecorder) -> Dict[str, str]:
    """action name -> outcome, for assertions over rendered scenarios."""
    return {
        entry["name"]: entry["outcome"]
        for entry in recorder.spans().values()
    }
