"""Action lifecycle states and outcomes."""

from __future__ import annotations

import enum


class ActionStatus(enum.Enum):
    """States of an action's lifecycle.

    ACTIVE -> COMMITTING -> COMMITTED on the success path;
    ACTIVE/COMMITTING -> ABORTING -> ABORTED on the failure path.
    """

    ACTIVE = "active"
    COMMITTING = "committing"
    COMMITTED = "committed"
    ABORTING = "aborting"
    ABORTED = "aborted"

    @property
    def terminated(self) -> bool:
        return self in (ActionStatus.COMMITTED, ActionStatus.ABORTED)


class Outcome(enum.Enum):
    """Final fate of an action, as reported to listeners."""

    COMMITTED = "committed"
    ABORTED = "aborted"
