"""Actions: nested atomic actions and multi-coloured actions (§2, §5).

The :class:`Action` class is a pure state machine: it tracks status, the
action tree, per-colour undo records and write sets, and implements the
paper's commit routing — for each colour, locks and undo responsibility go
to the *closest ancestor possessing that colour*, or become permanent when
no such ancestor exists.  Blocking, persistence and distribution are
supplied by a runtime (:mod:`repro.runtime` locally,
:mod:`repro.cluster` under simulation).
"""

from repro.actions.status import ActionStatus, Outcome
from repro.actions.record import UndoRecord
from repro.actions.runtime_api import ActionRuntime
from repro.actions.action import Action

__all__ = ["ActionStatus", "Outcome", "UndoRecord", "ActionRuntime", "Action"]
