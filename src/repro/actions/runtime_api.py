"""The contract an action expects from its runtime.

Keeping this abstract lets the same :class:`~repro.actions.action.Action`
state machine serve the threaded local runtime and the server side of the
cluster simulator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, TYPE_CHECKING

from repro.colours.colour import Colour
from repro.locking.registry import LockRegistry
from repro.util.uid import Uid

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.state_manager import StateManager


class ActionRuntime(ABC):
    """Services an action needs: uids, locks, undo ordering, persistence."""

    @property
    @abstractmethod
    def locks(self) -> LockRegistry:
        """The lock registry actions release/transfer their locks through."""

    @abstractmethod
    def fresh_action_uid(self) -> Uid:
        """A new unique id for an action being constructed."""

    @abstractmethod
    def next_undo_seq(self) -> int:
        """Monotonic sequence for ordering undo records across actions."""

    @abstractmethod
    def persist_colour(self, action: "object", colour: Colour,
                       written: Dict[Uid, "StateManager"]) -> None:
        """Make the given objects' current states permanent (permanence of
        effect for an outermost-coloured commit).

        Locally this writes snapshots to the stable object store atomically;
        the cluster runtime runs a two-phase commit across the object
        servers involved.  Raising here aborts the commit.
        """

    @abstractmethod
    def action_terminated(self, action: "object") -> None:
        """Hook: the runtime may clean ambient state (context stacks, maps)."""

    def action_created(self, action: "object") -> None:
        """Hook: called at the end of every Action's construction.

        Default: nothing.  Runtimes with observers (tracing, metrics)
        override this.
        """

    def note_commit_route(self, action: "object", colour: Colour,
                          destination: "object") -> None:
        """Hook: ``action`` is committing and routes ``colour`` to
        ``destination`` (an ancestor action, or None for "make permanent").

        Default: nothing.  Observable runtimes publish this on their event
        bus so the online auditor can verify §5.3 commit routing.
        """
