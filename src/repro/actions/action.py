"""The action state machine: nesting, colours, commit routing, abort recovery.

An :class:`Action` is a node in the action tree with a static set of
colours (§5.1).  Conventional atomic actions are the single-colour special
case: a top-level atomic action takes one fresh colour and nested atomic
actions inherit their parent's colours, which reduces the coloured rules to
Moss's rules exactly.

Commit (§5.2): for every colour *c* the action possesses, its locks and
undo responsibility of colour *c* are inherited by the **closest ancestor
possessing c**; if no ancestor has *c*, the action is *outermost* for that
colour, and its c-coloured updates are made permanent through the runtime's
commit service (locally an atomic multi-object store write; under the
cluster simulator a two-phase commit across object servers).

Abort: active children are aborted first — except *independent* children
(no colour in common), which are detached and survive, implementing the
top-level/n-level independent semantics of §3.3 and §5.6.  Then every undo
record the action is currently responsible for (its own plus those
inherited from committed descendants) is restored, newest first, and all
its locks are discarded.
"""

from __future__ import annotations

from typing import (
    Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple, TYPE_CHECKING,
)

from repro.actions.record import OperationUndo, UndoRecord
from repro.actions.runtime_api import ActionRuntime
from repro.actions.status import ActionStatus, Outcome
from repro.colours.colour import Colour, colour_set
from repro.errors import CommitError, InvalidActionState
from repro.util.uid import Uid

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.state_manager import StateManager

OutcomeListener = Callable[["Action", Outcome], None]


class Action:
    """One (possibly multi-coloured) action in the tree.

    Implements the :class:`~repro.locking.owner.LockOwner` interface (uid,
    path, colours), so instances are handed directly to the lock registry.
    """

    def __init__(self, runtime: ActionRuntime, colours: Iterable[Colour],
                 parent: Optional["Action"] = None, name: str = ""):
        self.runtime = runtime
        self.uid: Uid = runtime.fresh_action_uid()
        self.parent = parent
        self.colours: FrozenSet[Colour] = colour_set(colours)
        if not self.colours:
            raise InvalidActionState("an action needs at least one colour")
        self.name = name or f"action-{self.uid.sequence}"
        self.status = ActionStatus.ACTIVE
        self.children: List["Action"] = []
        self.path: Tuple[Uid, ...] = (parent.path + (self.uid,)) if parent else (self.uid,)
        self._undo: Dict[Colour, Dict[Uid, UndoRecord]] = {}
        #: type-specific recovery (§2): one compensation per applied op
        self._op_undo: Dict[Colour, List[OperationUndo]] = {}
        self._written: Dict[Colour, Dict[Uid, "StateManager"]] = {}
        self._listeners: List[OutcomeListener] = []
        #: colour used when a lock request names none (multi-coloured actions)
        self.default_colour: Optional[Colour] = None
        #: §5.3 companion scheme: every lock taken in another colour is
        #: shadowed in this colour (READ->READ, WRITE/EXCLUSIVE_READ->
        #: EXCLUSIVE_READ), so the enclosing control action retains all of
        #: this action's locks — the serializing-action behaviour.
        self.companion_colour: Optional[Colour] = None
        if parent is not None:
            parent._adopt(self)
        runtime.action_created(self)

    # -- tree and ancestry ----------------------------------------------------

    def is_ancestor_of(self, other: "Action") -> bool:
        """Inclusive ancestry (an action is its own ancestor, per Moss)."""
        return self.uid in other.path

    def closest_ancestor_with(self, colour: Colour) -> Optional["Action"]:
        """Closest *proper* ancestor possessing ``colour`` (commit routing)."""
        ancestor = self.parent
        while ancestor is not None:
            if colour in ancestor.colours:
                return ancestor
            ancestor = ancestor.parent
        return None

    def root(self) -> "Action":
        action = self
        while action.parent is not None:
            action = action.parent
        return action

    def depth(self) -> int:
        return len(self.path) - 1

    def _adopt(self, child: "Action") -> None:
        if self.status is not ActionStatus.ACTIVE:
            raise InvalidActionState(
                f"cannot nest under {self.name} in state {self.status.value}"
            )
        self.children.append(child)

    def _orphan(self, child: "Action") -> None:
        if child in self.children:
            self.children.remove(child)

    # -- write tracking -------------------------------------------------------

    def record_write(self, obj: "StateManager", colour: Colour) -> None:
        """Capture a before-image on the first write to ``obj`` in ``colour``.

        Runtimes call this once a WRITE lock has been granted; repeats are
        no-ops, preserving the eldest image.
        """
        self._require(ActionStatus.ACTIVE)
        if colour not in self.colours:
            raise InvalidActionState(
                f"{self.name} recording write in foreign colour {colour}"
            )
        per_colour = self._undo.setdefault(colour, {})
        if obj.uid not in per_colour:
            per_colour[obj.uid] = UndoRecord(
                obj=obj,
                colour=colour,
                before_image=obj.snapshot(),
                seq=self.runtime.next_undo_seq(),
                origin_action=self.uid,
            )
        self._written.setdefault(colour, {})[obj.uid] = obj

    def record_operation(self, obj: "StateManager", colour: Colour,
                         compensate: Callable[[], None],
                         description: str = "") -> None:
        """Log a compensating operation for one applied update (§2's
        type-specific recovery).  Used instead of a before-image when the
        object's operations commute — restoring a state image would wipe
        concurrent updaters' effects; compensating does not."""
        self._require(ActionStatus.ACTIVE)
        if colour not in self.colours:
            raise InvalidActionState(
                f"{self.name} logging operation in foreign colour {colour}"
            )
        self._op_undo.setdefault(colour, []).append(OperationUndo(
            obj=obj, colour=colour, compensate=compensate,
            description=description or "compensate",
            seq=self.runtime.next_undo_seq(), origin_action=self.uid,
        ))
        self._written.setdefault(colour, {})[obj.uid] = obj

    def written_objects(self, colour: Optional[Colour] = None) -> Dict[Uid, "StateManager"]:
        """Objects this action is currently responsible for persisting."""
        if colour is not None:
            return dict(self._written.get(colour, {}))
        merged: Dict[Uid, "StateManager"] = {}
        for per_colour in self._written.values():
            merged.update(per_colour)
        return merged

    def undo_records(self) -> List:
        """All undo responsibility: before-images and operation logs."""
        records: List = [
            record for per in self._undo.values() for record in per.values()
        ]
        for ops in self._op_undo.values():
            records.extend(ops)
        return records

    # -- outcome listeners -------------------------------------------------------

    def on_outcome(self, listener: OutcomeListener) -> None:
        """Register a callback fired once, after commit or abort completes."""
        self._listeners.append(listener)

    def _notify(self, outcome: Outcome) -> None:
        listeners, self._listeners = self._listeners, []
        for listener in listeners:
            listener(self, outcome)

    # -- commit ---------------------------------------------------------------------

    def commit(self) -> Outcome:
        """Commit this action (§5.2 commit rule), returning the outcome.

        Active children are aborted first (an action cannot outlive its
        enclosing action's termination; independent children are detached
        rather than aborted).  Per colour, in uid order: route to the
        closest same-coloured ancestor, or make the colour's updates
        permanent.  If persistence of some colour fails, the remaining
        (unpersisted) colours are rolled back and :class:`CommitError` is
        raised after recovery — colours already made permanent stay, which
        is exactly the per-colour failure-atomicity of §5.1.
        """
        self._require(ActionStatus.ACTIVE)
        self._settle_children()
        self.status = ActionStatus.COMMITTING
        routes: Dict[Colour, Optional["Action"]] = {}
        ordered = sorted(self.colours, key=lambda c: c.uid)
        persisted: List[Colour] = []
        for index, colour in enumerate(ordered):
            destination = self.closest_ancestor_with(colour)
            routes[colour] = destination
            self.runtime.note_commit_route(self, colour, destination)
            if destination is not None:
                self._bequeath(colour, destination)
                continue
            written = self._written.pop(colour, {})
            self._undo.pop(colour, None)
            self._op_undo.pop(colour, None)
            if not written:
                continue
            try:
                self.runtime.persist_colour(self, colour, written)
            except Exception as error:
                self._abort_after_partial_commit(ordered[index + 1:])
                raise CommitError(
                    f"{self.name}: persisting colour {colour} failed "
                    f"(colours already permanent: {[str(c) for c in persisted]})"
                ) from error
            persisted.append(colour)
        self.runtime.locks.transfer_on_commit(
            self.uid, lambda colour: routes.get(colour)
        )
        self.status = ActionStatus.COMMITTED
        if self.parent is not None:
            self.parent._orphan(self)
        self.runtime.action_terminated(self)
        self._notify(Outcome.COMMITTED)
        return Outcome.COMMITTED

    def _bequeath(self, colour: Colour, destination: "Action") -> None:
        """Move undo records and write sets of one colour up to an ancestor."""
        inherited_undo = self._undo.pop(colour, {})
        destination_undo = destination._undo.setdefault(colour, {})
        for object_uid, record in inherited_undo.items():
            if object_uid not in destination_undo:
                destination_undo[object_uid] = record  # elder image wins
        inherited_ops = self._op_undo.pop(colour, [])
        if inherited_ops:
            destination._op_undo.setdefault(colour, []).extend(inherited_ops)
        inherited_written = self._written.pop(colour, {})
        destination._written.setdefault(colour, {}).update(inherited_written)

    def _abort_after_partial_commit(self, remaining: List[Colour]) -> None:
        """Persistence failed mid-commit: roll back what is still rollable."""
        self.status = ActionStatus.ABORTING
        for colour in remaining:
            self._written.pop(colour, None)
        records = sorted(self.undo_records(), key=lambda r: r.seq, reverse=True)
        for record in records:
            record.restore()
        self._undo.clear()
        self._op_undo.clear()
        self._written.clear()
        self.runtime.locks.release_action(self.uid)
        self.status = ActionStatus.ABORTED
        if self.parent is not None:
            self.parent._orphan(self)
        self.runtime.action_terminated(self)
        self._notify(Outcome.ABORTED)

    # -- abort ---------------------------------------------------------------------

    def abort(self) -> Outcome:
        """Abort this action: undo everything it is responsible for.

        Idempotent for an already-aborted action; aborting a committed
        action is an error (compensation, not recovery, is needed then —
        §3.4).
        """
        if self.status is ActionStatus.ABORTED:
            return Outcome.ABORTED
        if self.status is ActionStatus.COMMITTED:
            raise InvalidActionState(f"{self.name} already committed; cannot abort")
        self.status = ActionStatus.ABORTING
        self._settle_children()
        self.runtime.locks.cancel_waiting(self.uid, reason="action aborted")
        records = sorted(self.undo_records(), key=lambda r: r.seq, reverse=True)
        for record in records:
            record.restore()
        self._undo.clear()
        self._op_undo.clear()
        self._written.clear()
        self.runtime.locks.release_action(self.uid)
        self.status = ActionStatus.ABORTED
        if self.parent is not None:
            self.parent._orphan(self)
        self.runtime.action_terminated(self)
        self._notify(Outcome.ABORTED)
        return Outcome.ABORTED

    def _settle_children(self) -> None:
        """Terminate or detach children before this action terminates.

        Children sharing at least one colour are aborted (their fate is
        bound to ours); colour-disjoint children are *independent* (§3.3) —
        they are detached to the nearest live ancestor and keep running.
        Detaching can hand us new children (grandchildren bubbling up), so
        loop until quiescent.
        """
        while True:
            active = [child for child in self.children if not child.status.terminated]
            if not active:
                return
            for child in active:
                if child.colours & self.colours:
                    child.abort()
                else:
                    child._detach_to_live_ancestor()

    def _detach_to_live_ancestor(self) -> None:
        old_parent = self.parent
        if old_parent is not None:
            old_parent._orphan(self)
        ancestor = old_parent.parent if old_parent is not None else None
        while ancestor is not None and ancestor.status.terminated:
            ancestor = ancestor.parent
        self.parent = ancestor
        if ancestor is not None:
            ancestor.children.append(self)

    # -- misc ----------------------------------------------------------------------

    def single_colour(self) -> Colour:
        """The action's colour, when it has exactly one (atomic actions)."""
        if len(self.colours) != 1:
            raise InvalidActionState(
                f"{self.name} has {len(self.colours)} colours; caller must name one"
            )
        return next(iter(self.colours))

    def lock_colour(self, requested: Optional[Colour] = None) -> Colour:
        """Resolve the colour for a lock request: explicit, default, or single."""
        if requested is not None:
            return requested
        if self.default_colour is not None:
            return self.default_colour
        return self.single_colour()

    def _require(self, status: ActionStatus) -> None:
        if self.status is not status:
            raise InvalidActionState(
                f"{self.name} is {self.status.value}, expected {status.value}"
            )

    def __repr__(self) -> str:
        shades = ",".join(sorted(str(c) for c in self.colours))
        return f"<Action {self.name} [{shades}] {self.status.value}>"
