"""Undo records: before-images captured on first write per (object, colour).

The record keeps a reference to the live object (to restore its in-memory
state on abort) and the serialized before-image.  ``seq`` orders restores:
aborts replay newest-first so nested overwrites unwind correctly.  When a
child commits into an ancestor, the ancestor keeps the *elder* image for an
object it already has a record for — the elder image is the state at the
start of the outermost responsibility span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from repro.colours.colour import Colour
from repro.util.uid import Uid

if TYPE_CHECKING:  # pragma: no cover
    from repro.objects.state_manager import StateManager


@dataclass
class UndoRecord:
    """Everything needed to undo one object's modification in one colour."""

    obj: "StateManager"
    colour: Colour
    before_image: bytes
    seq: int
    origin_action: Uid

    @property
    def object_uid(self) -> Uid:
        return self.obj.uid

    def restore(self) -> None:
        """Put the object's in-memory state back to the before-image."""
        self.obj.restore_snapshot(self.before_image)


@dataclass
class OperationUndo:
    """Type-specific recovery (§2): undo one operation by compensating it.

    "If some operations, say add() and subtract(), of an object commute,
    then if an atomic action aborts after having performed, say an add()
    operation, then rather than recovering the state of the object, the
    corresponding subtract() operation can be performed."

    Unlike a before-image there may be many of these per (object, colour);
    each compensates exactly one applied operation, and compensations of
    commuting operations commute, so restore order among them is free (we
    still run newest-first globally, interleaved with image restores by
    ``seq``).
    """

    obj: "StateManager"
    colour: Colour
    compensate: Callable[[], None]
    description: str
    seq: int
    origin_action: Uid

    @property
    def object_uid(self) -> Uid:
        return self.obj.uid

    def restore(self) -> None:
        """Apply the compensating operation."""
        self.compensate()
