"""An append-only log whose appends commute across actions.

FIFO *appends* are order-insensitive for readers that treat the log as a
set of entries (mailboxes, audit trails, the bulletin board's post
stream): two producers appending concurrently interfere with neither the
entries nor each other, only the arbitrary interleaving order.  Declaring
``append`` commuting lets the commit protocol decide such transactions
locally (commute path) instead of running a prepare round — the entry
order then follows commit order rather than invocation order, which is
exactly the contract an unordered append-set offers.

Contrast :class:`~repro.stdobjects.fifo.FifoQueue`, whose *consumers*
(``pop``) do conflict and therefore keep classic WRITE locking.
"""

from __future__ import annotations

from typing import ClassVar, List

from repro.locking.semantic import SemanticSpec
from repro.objects.semantic import SemanticLockableObject, semantic_operation
from repro.objects.state import ObjectState


class AppendLog(SemanticLockableObject):
    """Append-only entry log with commuting appends."""

    type_name: ClassVar[str] = "append_log"

    SEMANTICS: ClassVar[SemanticSpec] = SemanticSpec.build(
        groups={"observe", "append"},
        compatible_pairs=[
            ("observe", "observe"),
            ("append", "append"),     # producers never conflict
        ],
        commuting={"append"},
    )

    def __init__(self, runtime, uid=None, persist: bool = True):
        self.entries: List = []
        super().__init__(runtime, uid=uid, persist=persist)

    def save_state(self, state: ObjectState) -> None:
        state.pack_value(list(self.entries))

    def restore_state(self, state: ObjectState) -> None:
        self.entries = list(state.unpack_value())

    # -- operations ------------------------------------------------------------

    @semantic_operation("observe")
    def length(self) -> int:
        return len(self.entries)

    @semantic_operation("observe")
    def read(self) -> List:
        return list(self.entries)

    @semantic_operation("append", inverse="_undo_append")
    def append(self, entry) -> int:
        self.entries.append(entry)
        return len(self.entries)

    def _undo_append(self, result: int, entry) -> None:
        # compensate by value, not position: a concurrent committed append
        # may have shifted indices since this action's write
        for index in range(len(self.entries) - 1, -1, -1):
            if self.entries[index] == entry:
                del self.entries[index]
                return
