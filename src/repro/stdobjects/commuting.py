"""The §2 example object for type-specific CC and recovery: a counter
whose add() and subtract() commute.

Two different actions may add/subtract concurrently (the updates are
compatible); an abort compensates with the inverse operation instead of
restoring a state image, so it never wipes the other action's effect.
Observers (get) conflict with updaters: a read sees only committed values
plus this action's own updates — the usual semantic-counter design.
"""

from __future__ import annotations

from typing import ClassVar

from repro.locking.semantic import SemanticSpec
from repro.objects.semantic import SemanticLockableObject, semantic_operation
from repro.objects.state import ObjectState


class CommutingCounter(SemanticLockableObject):
    """A counter with commuting add/subtract (§2's type-specific example)."""

    type_name: ClassVar[str] = "commuting_counter"

    SEMANTICS: ClassVar[SemanticSpec] = SemanticSpec.build(
        groups={"observe", "update"},
        compatible_pairs=[
            ("observe", "observe"),   # reads share, as always
            ("update", "update"),     # add/subtract commute across actions
        ],
        # add/subtract are total (no preconditions) and order-independent,
        # so the commit protocol may decide them locally (commute path)
        commuting={"update"},
    )

    def __init__(self, runtime, value: int = 0, uid=None, persist: bool = True):
        self.value = value
        super().__init__(runtime, uid=uid, persist=persist)

    def save_state(self, state: ObjectState) -> None:
        state.pack_int(self.value)

    def restore_state(self, state: ObjectState) -> None:
        self.value = state.unpack_int()

    # -- operations -----------------------------------------------------------

    @semantic_operation("observe")
    def get(self) -> int:
        return self.value

    @semantic_operation("update", inverse="_undo_add")
    def add(self, amount: int = 1) -> int:
        self.value += amount
        return self.value

    def _undo_add(self, result: int, amount: int = 1) -> None:
        self.value -= amount

    @semantic_operation("update", inverse="_undo_subtract")
    def subtract(self, amount: int = 1) -> int:
        self.value -= amount
        return self.value

    def _undo_subtract(self, result: int, amount: int = 1) -> None:
        self.value += amount
