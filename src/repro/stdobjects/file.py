"""A simulated file with content and a logical timestamp, for make (§4(iv)).

"Each file has a timestamp associated with it, which is updated
automatically every time the file is changed."  Timestamps here are logical
instants supplied by the caller (simulated time or a logical clock), so
make's consistency rule — a target is consistent if it is newer than all
its prerequisites — is fully deterministic.
"""

from __future__ import annotations

from typing import ClassVar, Tuple

from repro.locking.modes import LockMode
from repro.objects.lockable import LockableObject, operation
from repro.objects.state import ObjectState


class FileObject(LockableObject):
    """name + content + timestamp; writes bump the timestamp."""

    type_name: ClassVar[str] = "file"

    def __init__(self, runtime, name: str = "", content: str = "",
                 timestamp: float = 0.0, uid=None, persist: bool = True):
        self.name = name
        self.content = content
        self.timestamp = float(timestamp)
        super().__init__(runtime, uid=uid, persist=persist)

    def save_state(self, state: ObjectState) -> None:
        state.pack_string(self.name)
        state.pack_string(self.content)
        state.pack_float(self.timestamp)

    def restore_state(self, state: ObjectState) -> None:
        self.name = state.unpack_string()
        self.content = state.unpack_string()
        self.timestamp = state.unpack_float()

    # -- operations -----------------------------------------------------------

    @operation(LockMode.READ)
    def read(self) -> str:
        return self.content

    @operation(LockMode.READ)
    def stat(self) -> float:
        """The file's timestamp (make's phase (ii)/(iii) reads)."""
        return self.timestamp

    @operation(LockMode.READ)
    def read_with_stat(self) -> Tuple[str, float]:
        return (self.content, self.timestamp)

    @operation(LockMode.WRITE)
    def write(self, content: str, timestamp: float) -> None:
        self.content = content
        self.timestamp = float(timestamp)

    @operation(LockMode.WRITE)
    def touch(self, timestamp: float) -> None:
        self.timestamp = float(timestamp)
