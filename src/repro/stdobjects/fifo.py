"""A persistent FIFO queue (whole-object locking)."""

from __future__ import annotations

from typing import Any, ClassVar, List, Optional

from repro.locking.modes import LockMode
from repro.objects.lockable import LockableObject, operation
from repro.objects.state import ObjectState


class FifoQueue(LockableObject):
    """Append/pop queue; both ends are WRITE operations, length is READ."""

    type_name: ClassVar[str] = "fifo_queue"

    def __init__(self, runtime, uid=None, persist: bool = True):
        self.items: List[Any] = []
        super().__init__(runtime, uid=uid, persist=persist)

    def save_state(self, state: ObjectState) -> None:
        state.pack_value(self.items)

    def restore_state(self, state: ObjectState) -> None:
        self.items = state.unpack_value()

    @operation(LockMode.WRITE)
    def enqueue(self, item: Any) -> None:
        self.items.append(item)

    @operation(LockMode.WRITE)
    def dequeue(self) -> Optional[Any]:
        if not self.items:
            return None
        return self.items.pop(0)

    @operation(LockMode.READ)
    def length(self) -> int:
        return len(self.items)

    @operation(LockMode.READ)
    def peek_all(self) -> List[Any]:
        return list(self.items)
