"""An account with escrow-split debits (the classic escrow-lock design).

:class:`~repro.stdobjects.account.Account` serializes every deposit and
withdrawal under WRITE locks.  :class:`EscrowAccount` instead splits the
balance into a committed-spendable part (``escrow_available``) and
pending effects: a debit *reserves* its amount out of the available funds
at execute time, so two debits from different actions commute whenever
both reservations fit — the bound check happens once, up front, and
re-applying the debit against any committed state the protocol can reach
is then guaranteed to succeed.  Credits always commute; their amount only
becomes spendable once the crediting transaction commits (the
``committed`` hook), so an aborted credit can never have backed a debit.

This is what makes ``debit``/``credit`` safe to declare ``commuting``:
the commit protocol's commute path decides them locally and merges their
effects without a prepare round (see docs/PROTOCOL.md §"commute path").
"""

from __future__ import annotations

from typing import ClassVar

from repro.locking.semantic import SemanticSpec
from repro.objects.semantic import SemanticLockableObject, semantic_operation
from repro.objects.state import ObjectState
from repro.stdobjects.account import InsufficientFunds


class EscrowAccount(SemanticLockableObject):
    """Balance with escrow-reserved debits and deferred-spend credits."""

    type_name: ClassVar[str] = "escrow_account"

    SEMANTICS: ClassVar[SemanticSpec] = SemanticSpec.build(
        groups={"observe", "update"},
        compatible_pairs=[
            ("observe", "observe"),
            ("update", "update"),     # escrow-bounded debits/credits commute
        ],
        commuting={"update"},
    )

    def __init__(self, runtime, owner: str = "", balance: int = 0,
                 uid=None, persist: bool = True):
        self.owner = owner
        self.balance = balance
        #: committed funds not yet reserved by a pending debit.  Pending
        #: credits are excluded until their transaction commits, so this
        #: never overstates what a debit may safely draw on.
        self.escrow_available = balance
        super().__init__(runtime, uid=uid, persist=persist)

    def save_state(self, state: ObjectState) -> None:
        state.pack_string(self.owner)
        state.pack_int(self.balance)

    def restore_state(self, state: ObjectState) -> None:
        self.owner = state.unpack_string()
        self.balance = state.unpack_int()
        # committed states carry no pending operations: everything in the
        # balance is spendable again
        self.escrow_available = self.balance

    # -- operations ------------------------------------------------------------

    @semantic_operation("observe")
    def read_balance(self) -> int:
        return self.balance

    @semantic_operation("observe")
    def available(self) -> int:
        return self.escrow_available

    @semantic_operation("update", inverse="_undo_debit", merge="_merge_debit",
                        redo="_redo_debit")
    def debit(self, amount: int) -> int:
        if amount > self.escrow_available:
            raise InsufficientFunds(
                f"{self.owner or self.uid}: debit {amount} > "
                f"available {self.escrow_available}"
            )
        self.escrow_available -= amount
        self.balance -= amount
        return self.balance

    def _undo_debit(self, result: int, amount: int) -> None:
        self.escrow_available += amount
        self.balance += amount

    def _merge_debit(self, amount: int) -> None:
        self.balance -= amount

    def _redo_debit(self, amount: int) -> None:
        # restart redo: the decision already committed, so no bound check —
        # the reservation made at execute time died with the old epoch
        self.escrow_available -= amount
        self.balance -= amount

    @semantic_operation("update", inverse="_undo_credit",
                        merge="_merge_credit", committed="_settle_credit",
                        redo="_redo_credit")
    def credit(self, amount: int) -> int:
        self.balance += amount
        return self.balance

    def _undo_credit(self, result: int, amount: int) -> None:
        self.balance -= amount

    def _merge_credit(self, amount: int) -> None:
        self.balance += amount

    def _settle_credit(self, amount: int) -> None:
        self.escrow_available += amount

    def _redo_credit(self, amount: int) -> None:
        # restart redo applies the committed effect already settled
        self.escrow_available += amount
        self.balance += amount
