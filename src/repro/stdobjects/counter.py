"""A persistent integer counter."""

from __future__ import annotations

from typing import ClassVar

from repro.locking.modes import LockMode
from repro.objects.lockable import LockableObject, operation
from repro.objects.state import ObjectState


class Counter(LockableObject):
    """An integer with increment/decrement/read, all lock-managed."""

    type_name: ClassVar[str] = "counter"

    def __init__(self, runtime, value: int = 0, uid=None, persist: bool = True):
        self.value = value
        super().__init__(runtime, uid=uid, persist=persist)

    def save_state(self, state: ObjectState) -> None:
        state.pack_int(self.value)

    def restore_state(self, state: ObjectState) -> None:
        self.value = state.unpack_int()

    # -- operations ----------------------------------------------------------

    @operation(LockMode.READ)
    def get(self) -> int:
        return self.value

    @operation(LockMode.WRITE)
    def set(self, value: int) -> None:
        self.value = value

    @operation(LockMode.WRITE)
    def increment(self, amount: int = 1) -> int:
        self.value += amount
        return self.value

    @operation(LockMode.WRITE)
    def decrement(self, amount: int = 1) -> int:
        self.value -= amount
        return self.value
