"""A persistent single-value register holding any packable value."""

from __future__ import annotations

from typing import Any, ClassVar

from repro.locking.modes import LockMode
from repro.objects.lockable import LockableObject, operation
from repro.objects.state import ObjectState


class Register(LockableObject):
    """Read/write cell for any value :class:`ObjectState` can pack."""

    type_name: ClassVar[str] = "register"

    def __init__(self, runtime, value: Any = None, uid=None, persist: bool = True):
        self.value = value
        super().__init__(runtime, uid=uid, persist=persist)

    def save_state(self, state: ObjectState) -> None:
        state.pack_value(self.value)

    def restore_state(self, state: ObjectState) -> None:
        self.value = state.unpack_value()

    @operation(LockMode.READ)
    def get(self) -> Any:
        return self.value

    @operation(LockMode.WRITE)
    def set(self, value: Any) -> None:
        self.value = value
