"""Standard persistent object types used by the examples and applications.

Each type follows the Arjuna idiom: operations take their lock via
``setlock`` and then touch instance variables, so any of them can be used
inside atomic, serializing, glued or independent actions without change.
"""

from repro.stdobjects.counter import Counter
from repro.stdobjects.register import Register
from repro.stdobjects.account import Account
from repro.stdobjects.appendlog import AppendLog
from repro.stdobjects.commuting import CommutingCounter
from repro.stdobjects.directory import Directory
from repro.stdobjects.escrow import EscrowAccount
from repro.stdobjects.fifo import FifoQueue
from repro.stdobjects.file import FileObject
from repro.stdobjects.diary import Diary, DiarySlot

__all__ = [
    "Counter",
    "Register",
    "Account",
    "AppendLog",
    "CommutingCounter",
    "Directory",
    "EscrowAccount",
    "FifoQueue",
    "FileObject",
    "Diary",
    "DiarySlot",
]
