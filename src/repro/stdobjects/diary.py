"""Personal diaries with per-slot locking, for the meeting scheduler (§4(v)).

"A personal diary is made up of diary entries (or slots) each of which can
be locked separately."  Each :class:`DiarySlot` is its own persistent
object, so the glued-action scheduler can pass locks on *surviving* slots
from round to round while releasing rejected ones.
"""

from __future__ import annotations

import threading
from typing import ClassVar, Dict, List, Optional

from repro.errors import InvalidActionState, ObjectNotFound
from repro.locking.modes import LockMode
from repro.objects.lockable import LockableObject, operation
from repro.objects.state import ObjectState


class SlotTaken(InvalidActionState):
    """The slot is already booked."""


class DiarySlot(LockableObject):
    """One bookable slot of one person's diary."""

    type_name: ClassVar[str] = "diary_slot"

    def __init__(self, runtime, owner: str, date: str, uid=None, persist: bool = True):
        self.owner = owner
        self.date = date
        self.booked = False
        self.description = ""
        super().__init__(runtime, uid=uid, persist=persist)

    def save_state(self, state: ObjectState) -> None:
        state.pack_string(self.owner)
        state.pack_string(self.date)
        state.pack_bool(self.booked)
        state.pack_string(self.description)

    def restore_state(self, state: ObjectState) -> None:
        self.owner = state.unpack_string()
        self.date = state.unpack_string()
        self.booked = state.unpack_bool()
        self.description = state.unpack_string()

    # -- operations -----------------------------------------------------------

    @operation(LockMode.READ)
    def is_free(self) -> bool:
        return not self.booked

    @operation(LockMode.WRITE)
    def book(self, description: str) -> None:
        if self.booked:
            raise SlotTaken(f"{self.owner}'s slot {self.date} already booked")
        self.booked = True
        self.description = description

    @operation(LockMode.WRITE)
    def cancel(self) -> None:
        self.booked = False
        self.description = ""


class Diary:
    """A person's set of slots, keyed by date string.

    The diary itself is a plain container (slot discovery is not
    transactional); all shared state lives in the individually lockable
    slots.
    """

    def __init__(self, runtime, owner: str, dates: Optional[List[str]] = None):
        self.runtime = runtime
        self.owner = owner
        self._slots: Dict[str, DiarySlot] = {}
        self._mutex = threading.Lock()
        for date in dates or []:
            self.add_date(date)

    def add_date(self, date: str) -> DiarySlot:
        with self._mutex:
            slot = self._slots.get(date)
            if slot is None:
                slot = DiarySlot(self.runtime, self.owner, date)
                self._slots[date] = slot
            return slot

    def slot(self, date: str) -> DiarySlot:
        with self._mutex:
            try:
                return self._slots[date]
            except KeyError:
                raise ObjectNotFound(f"{self.owner}: no diary slot {date}") from None

    def dates(self) -> List[str]:
        with self._mutex:
            return sorted(self._slots)

    def free_dates(self, colour=None, action=None) -> List[str]:
        """Dates whose slots are currently free (read-locks each slot)."""
        return [
            date for date in self.dates()
            if self.slot(date).is_free(colour=colour, action=action)
        ]
