"""A directory with type-specific (per-entry) concurrency control.

§2 of the paper: "for a directory object, reading and deleting different
entries can be permitted to take place simultaneously".  The implementation
makes each entry its own persistent, individually lockable object, so
operations on *different* entries never conflict, while two operations on
the *same* entry follow the ordinary read/write rules.  Recovery is also
per entry: aborting an action that deleted entry "a" cannot clobber a
concurrent committed update to entry "b".

Deletion is a tombstone (``present = False``) on the entry object — the
entry's existence is transactional state, its uid allocation is not.
"""

from __future__ import annotations

import threading
from typing import Any, ClassVar, Dict, List, Optional

from repro.errors import ObjectNotFound
from repro.objects.lockable import LockableObject
from repro.objects.state import ObjectState


class DirectoryEntry(LockableObject):
    """One named slot of a directory: presence flag plus a value."""

    type_name: ClassVar[str] = "directory_entry"

    def __init__(self, runtime, name: str, uid=None, persist: bool = True):
        self.name = name
        self.present = False
        self.value: Any = None
        super().__init__(runtime, uid=uid, persist=persist)

    def save_state(self, state: ObjectState) -> None:
        state.pack_string(self.name)
        state.pack_bool(self.present)
        state.pack_value(self.value)

    def restore_state(self, state: ObjectState) -> None:
        self.name = state.unpack_string()
        self.present = state.unpack_bool()
        self.value = state.unpack_value()


class Directory(LockableObject):
    """Name -> value mapping with per-entry locking.

    The directory object itself carries only its display name; the live
    name->entry map is runtime bookkeeping (entry uids are stable, entries
    persist individually).  ``add``/``remove``/``lookup``/``update`` lock
    only the affected entry.
    """

    type_name: ClassVar[str] = "directory"

    def __init__(self, runtime, name: str = "directory", uid=None, persist: bool = True):
        self.name = name
        self._entries: Dict[str, DirectoryEntry] = {}
        self._entries_mutex = threading.Lock()
        super().__init__(runtime, uid=uid, persist=persist)

    def save_state(self, state: ObjectState) -> None:
        state.pack_string(self.name)
        with self._entries_mutex:
            state.pack_value({key: entry.uid for key, entry in self._entries.items()})

    def restore_state(self, state: ObjectState) -> None:
        self.name = state.unpack_string()
        state.unpack_value()  # entry uid map: live entries re-attach on access

    # -- entry plumbing -----------------------------------------------------

    def _entry(self, key: str, create: bool = False) -> Optional[DirectoryEntry]:
        """Get (or make) the entry object for ``key``.

        Uid allocation is non-transactional by design: a never-used entry
        is indistinguishable from an absent one (``present`` is False).
        """
        with self._entries_mutex:
            entry = self._entries.get(key)
            if entry is None and create:
                entry = DirectoryEntry(self.runtime, key)
                self._entries[key] = entry
            return entry

    # -- operations ------------------------------------------------------------

    def add(self, key: str, value: Any, colour=None, action=None) -> None:
        entry = self._entry(key, create=True)
        entry.write_lock(colour=colour, action=action)
        entry.present = True
        entry.value = value

    def update(self, key: str, value: Any, colour=None, action=None) -> None:
        entry = self._entry(key, create=False)
        if entry is None:
            raise ObjectNotFound(f"{self.name}: no entry {key!r}")
        entry.write_lock(colour=colour, action=action)
        if not entry.present:
            raise ObjectNotFound(f"{self.name}: no entry {key!r}")
        entry.value = value

    def remove(self, key: str, colour=None, action=None) -> None:
        entry = self._entry(key, create=False)
        if entry is None:
            raise ObjectNotFound(f"{self.name}: no entry {key!r}")
        entry.write_lock(colour=colour, action=action)
        if not entry.present:
            raise ObjectNotFound(f"{self.name}: no entry {key!r}")
        entry.present = False
        entry.value = None

    def lookup(self, key: str, colour=None, action=None) -> Any:
        entry = self._entry(key, create=False)
        if entry is None:
            raise ObjectNotFound(f"{self.name}: no entry {key!r}")
        entry.read_lock(colour=colour, action=action)
        if not entry.present:
            raise ObjectNotFound(f"{self.name}: no entry {key!r}")
        return entry.value

    def contains(self, key: str, colour=None, action=None) -> bool:
        entry = self._entry(key, create=False)
        if entry is None:
            return False
        entry.read_lock(colour=colour, action=action)
        return entry.present

    def keys(self, colour=None, action=None) -> List[str]:
        """All present keys; read-locks every existing entry."""
        with self._entries_mutex:
            entries = sorted(self._entries.items())
        names: List[str] = []
        for key, entry in entries:
            entry.read_lock(colour=colour, action=action)
            if entry.present:
                names.append(key)
        return names
