"""A bank-style account, used by the billing example (§4(iii))."""

from __future__ import annotations

from typing import ClassVar, List, Tuple

from repro.errors import InvalidActionState
from repro.locking.modes import LockMode
from repro.objects.lockable import LockableObject, operation
from repro.objects.state import ObjectState


class InsufficientFunds(InvalidActionState):
    """A withdrawal would overdraw the account."""


class Account(LockableObject):
    """Balance plus an append-only statement of (description, amount) entries."""

    type_name: ClassVar[str] = "account"

    def __init__(self, runtime, owner: str = "", balance: int = 0,
                 uid=None, persist: bool = True):
        self.owner = owner
        self.balance = balance
        self.statement: List[Tuple[str, int]] = []
        super().__init__(runtime, uid=uid, persist=persist)

    def save_state(self, state: ObjectState) -> None:
        state.pack_string(self.owner)
        state.pack_int(self.balance)
        state.pack_value([list(entry) for entry in self.statement])

    def restore_state(self, state: ObjectState) -> None:
        self.owner = state.unpack_string()
        self.balance = state.unpack_int()
        self.statement = [tuple(entry) for entry in state.unpack_value()]

    # -- operations ------------------------------------------------------------

    @operation(LockMode.READ)
    def read_balance(self) -> int:
        return self.balance

    @operation(LockMode.READ)
    def read_statement(self) -> List[Tuple[str, int]]:
        return list(self.statement)

    @operation(LockMode.WRITE)
    def deposit(self, amount: int, description: str = "deposit") -> int:
        self.balance += amount
        self.statement.append((description, amount))
        return self.balance

    @operation(LockMode.WRITE)
    def withdraw(self, amount: int, description: str = "withdraw") -> int:
        if amount > self.balance:
            raise InsufficientFunds(
                f"{self.owner or self.uid}: withdraw {amount} > balance {self.balance}"
            )
        self.balance -= amount
        self.statement.append((description, -amount))
        return self.balance

    @operation(LockMode.WRITE)
    def charge(self, amount: int, description: str) -> int:
        """Billing entry — may overdraw (the provider bills regardless)."""
        self.balance -= amount
        self.statement.append((description, -amount))
        return self.balance
