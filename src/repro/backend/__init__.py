"""Execution backends: one protocol stack, two substrates.

The coloured-action runtime and its commit protocol are written against a
small scheduler surface (see :mod:`repro.backend.api`).  This package
provides the two implementations —

- :class:`~repro.backend.sim.SimBackend`: the deterministic discrete-event
  simulation (the seed repo's kernel, wrapped unchanged), for replayable
  chaos testing at simulated scale;
- :class:`~repro.backend.aio.AsyncioBackend`: a real :mod:`asyncio` event
  loop with a monotonic scaled clock, for wall-clock measurements and
  genuinely concurrent interleavings —

and :func:`~repro.backend.api.resolve_backend`, which every entry point
(``Cluster(backend=...)``) uses to accept ``None`` / ``"sim"`` /
``"asyncio"`` / an instance.  ``docs/BACKENDS.md`` documents the full
contract, the sim-vs-asyncio capability matrix and which backend answers
which question.
"""

from repro.backend.aio import AsyncioBackend, AsyncioKernel
from repro.backend.api import BackendError, ExecutionBackend, resolve_backend
from repro.backend.sim import SimBackend

__all__ = [
    "AsyncioBackend",
    "AsyncioKernel",
    "BackendError",
    "ExecutionBackend",
    "SimBackend",
    "resolve_backend",
]
