"""The real-time execution backend: the kernel surface on asyncio.

:class:`AsyncioKernel` implements the same scheduler surface as the
simulation :class:`~repro.sim.kernel.Kernel` — ``now`` / ``event`` /
``spawn`` / ``schedule`` / ``timeout_event`` / ``every`` / ``run`` /
``run_until_settled`` — on a real :mod:`asyncio` event loop with a
monotonic wall clock.  The protocol stack (cluster client, servers, RPC
transport, network fault injection, observability timers) runs on it
*unchanged*: generator processes, one-shot events, periodic daemon timers
and the fan-in combinators are the very classes the sim kernel uses,
scheduled here with ``loop.call_later`` instead of a virtual-time heap.

Time units and ``time_scale``
-----------------------------

All delays, timeouts and clock reads throughout the repo are written in
abstract *time units* (the sim kernel's ticks).  ``AsyncioKernel`` maps
one unit to ``time_scale`` wall seconds off ``time.monotonic()``:
``now`` is elapsed wall time divided by ``time_scale``, and a
``Timeout(2.0)`` sleeps ``2.0 * time_scale`` real seconds on the loop.
Protocol-level timeout arithmetic (RPC retransmit intervals, lock-wait
bounds, network delay draws) therefore keeps its exact relative shape
while executing against real concurrency; shrinking ``time_scale`` makes
experiments faster but raises the scheduling jitter *in units*.

What is, and is not, deterministic here
---------------------------------------

Seeded RNG streams (network delays, drop/duplicate fates) produce the
same draw *sequences* as on the sim backend.  Scheduling is real:
callbacks due at indistinguishable wall instants run in unspecified
order, so which message receives the Nth fault draw can differ between
runs whenever concurrent senders race.  Fault-free workloads with a
deterministic logical structure still produce identical commit/abort
outcomes (the parity suite gates exactly that); under faults only
statistical invariants — conservation, auditor silence — are stable.

Drain semantics match the sim kernel: *daemon* entries (periodic timers)
never keep the backend alive, and ``run()`` returns once no non-daemon
callback remains scheduled.  All forward progress flows through tracked
posts, so the drain check is exact, not heuristic.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from typing import Any, Callable, Coroutine, Optional

from repro.backend.api import ExecutionBackend
from repro.errors import SimulationError
from repro.sim.kernel import (
    PeriodicTimer,
    Process,
    ProcessBody,
    ProcessKilled,
    SimEvent,
)

#: default wall seconds per time unit — 5 ms keeps sub-second experiments
#: with default network delays (0.5–2.0 units per hop) while leaving
#: millisecond-scale host jitter small relative to one unit
DEFAULT_TIME_SCALE = 0.005


class AsyncioKernel:
    """The kernel surface on a real asyncio event loop (see module docs).

    Construction is cheap and does not start the loop; the loop runs only
    inside :meth:`run` / :meth:`run_until_settled`.  The virtual clock is
    anchored at construction time and advances with ``time.monotonic()``
    whether or not the loop is running — real time is real, so the gaps
    between ``run()`` calls are visible in ``now`` (unlike the sim
    kernel, which freezes between runs and fast-forwards past idle gaps).

    Call :meth:`close` (or use the owning backend as a context manager)
    when done: the event loop holds file descriptors.
    """

    def __init__(self, time_scale: float = DEFAULT_TIME_SCALE,
                 loop: Optional[asyncio.AbstractEventLoop] = None):
        """Create a kernel mapping one time unit to ``time_scale`` seconds.

        ``loop`` injects an existing event loop (tests, embedding into a
        larger asyncio application); by default a private loop is created
        and owned — closed by :meth:`close` — without touching asyncio's
        global event-loop policy.
        """
        if time_scale <= 0:
            raise SimulationError(
                f"time_scale must be positive, got {time_scale}")
        self.time_scale = time_scale
        self._loop = loop if loop is not None else asyncio.new_event_loop()
        self._owns_loop = loop is None
        self._origin = time.monotonic()
        #: non-daemon callbacks scheduled but not yet run; exact because
        #: every continuation is posted before its creator returns
        self._pending = 0
        self._running = False
        self._event_names = itertools.count(1)
        #: run statistics, same keys as the sim kernel's (exported by
        #: cluster observability dumps)
        self.stats: dict = {"callbacks_run": 0, "processes_spawned": 0,
                            "events_created": 0}

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The underlying asyncio event loop (for native-task bridging)."""
        return self._loop

    @property
    def now(self) -> float:
        """Monotonic wall time since construction, in time units."""
        return (time.monotonic() - self._origin) / self.time_scale

    # -- construction -------------------------------------------------------

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh pending event scheduled on this loop."""
        self.stats["events_created"] += 1
        return SimEvent(self, name=name or f"ev{next(self._event_names)}")

    def spawn(self, body: ProcessBody, name: str = "") -> Process:
        """Start a generator as a process at the current instant."""
        if not hasattr(body, "send"):
            raise SimulationError(
                "spawn() takes a generator; did you forget to call the function?"
            )
        process = Process(self, body, name=name)
        self.stats["processes_spawned"] += 1
        self._post(process._step)
        return process

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run a plain callback after ``delay`` time units of wall time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._post_at(self.now + delay, fn, *args)

    def timeout_event(self, delay: float, value: Any = None) -> SimEvent:
        """An event that triggers by itself after ``delay`` units."""
        event = self.event(name=f"timeout({delay})")
        self.schedule(delay, lambda: event.settled or event.trigger(value))
        return event

    def every(self, interval: float, fn: Callable[[], None],
              immediate: bool = False) -> PeriodicTimer:
        """Run ``fn()`` every ``interval`` units as a daemon timer.

        Same semantics as :meth:`repro.sim.kernel.Kernel.every`, including
        ``immediate=True`` first-firing-now support; the firings ride
        ``loop.call_later`` so a probe interval of 10 units wakes the host
        every ``10 * time_scale`` seconds.
        """
        return PeriodicTimer(self, interval, fn, immediate=immediate)

    def run_coroutine(self, coro: Coroutine, name: str = "") -> SimEvent:
        """Run a native asyncio coroutine as tracked work.

        The bridge to real asyncio tasks: ``coro`` is wrapped in an
        :class:`asyncio.Task` on this kernel's loop and counts as pending
        work until it finishes, so ``run()`` will not declare the backend
        drained while it is alive.  Returns an event that settles with the
        coroutine's result (failing with its exception; a cancelled task
        fails the event with :class:`~repro.sim.kernel.ProcessKilled`), so
        generator processes can ``yield`` it like any other event.
        """
        done = self.event(name=name or "coroutine")
        self._pending += 1
        task = self._loop.create_task(coro)

        def on_done(finished: "asyncio.Task") -> None:
            """Translate the task's ending into the event's settlement."""
            self._pending -= 1
            try:
                if finished.cancelled():
                    done.fail(ProcessKilled(f"coroutine {done.name} cancelled"))
                elif finished.exception() is not None:
                    done.fail(finished.exception())
                else:
                    done.trigger(finished.result())
            finally:
                self._maybe_stop()

        task.add_done_callback(on_done)
        return done

    # -- execution -----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Drive the loop until no non-daemon work remains; returns now.

        With ``until``, the loop additionally stops once the clock passes
        it (pending work stays scheduled for the next ``run``).  Unlike
        the sim kernel the clock is never fast-forwarded: draining early
        returns early, at whatever ``now`` the wall clock reads.
        """
        if self._pending > 0:
            stopper = None
            if until is not None:
                wall_delay = max(0.0, (until - self.now) * self.time_scale)
                stopper = self._loop.call_later(wall_delay, self._loop.stop)
            try:
                self._run_loop()
            finally:
                if stopper is not None:
                    stopper.cancel()
        return self.now

    def run_until_settled(self, event: SimEvent, limit: float = 1e12) -> Any:
        """Drive the loop until ``event`` settles; raise if drained first.

        ``limit`` bounds the wait in time units (a watchdog on the wall
        clock); exceeding it raises :class:`SimulationError`, as does the
        backend draining — no non-daemon work scheduled — while the event
        is still pending.
        """

        def stop_on_settle(_settled: SimEvent) -> None:
            """Break out of the loop the moment the event settles."""
            if self._running:
                self._loop.stop()

        if not event.settled:
            event.on_settle(stop_on_settle)
        wall_deadline = (
            self._loop.time() + max(0.0, limit - self.now) * self.time_scale)
        while not event.settled:
            if self._pending == 0:
                raise SimulationError(
                    f"backend drained before {event!r} settled")
            if self.now > limit:
                raise SimulationError(
                    f"exceeded time limit waiting for {event!r}")
            watchdog = self._loop.call_at(wall_deadline, self._loop.stop)
            try:
                self._run_loop()
            finally:
                watchdog.cancel()
        if event.failed:
            raise event.value
        return event.value

    def close(self) -> None:
        """Close the owned event loop and its file descriptors.  Idempotent.

        An injected loop (``loop=`` at construction) is left open — its
        owner closes it.
        """
        if self._owns_loop and not self._loop.is_closed():
            self._loop.close()

    # -- internals -------------------------------------------------------------

    def _run_loop(self) -> None:
        if self._running:
            raise SimulationError("asyncio backend loop already running")
        self._running = True
        try:
            self._loop.run_forever()
        finally:
            self._running = False

    def _maybe_stop(self) -> None:
        # drain check: exact, because every continuation is a tracked post
        if self._running and self._pending == 0:
            self._loop.stop()

    def _post(self, fn: Callable[..., None], *args: Any) -> None:
        self._post_at(self.now, fn, *args)

    def _post_at(self, when: float, fn: Callable[..., None], *args: Any,
                 daemon: bool = False) -> None:
        if not daemon:
            self._pending += 1

        def entry() -> None:
            """Run the callback, keep stats, and stop the loop on drain."""
            if not daemon:
                self._pending -= 1
            self.stats["callbacks_run"] += 1
            try:
                fn(*args)
            finally:
                self._maybe_stop()

        wall_delay = (when - self.now) * self.time_scale
        if wall_delay <= 0:
            self._loop.call_soon(entry)
        else:
            self._loop.call_later(wall_delay, entry)


class AsyncioBackend(ExecutionBackend):
    """Real-time execution on asyncio with a monotonic scaled clock.

    Capabilities: ``wall_clock`` (``now`` tracks ``time.monotonic()``),
    not ``deterministic`` (seeds pin RNG draw sequences but scheduling
    order is real and jittery).  Use it to answer wall-clock questions —
    throughput and latency in seconds, behaviour under genuinely
    concurrent interleavings — and keep the sim backend for chaos
    debugging and replayable regressions; ``docs/BACKENDS.md`` has the
    full decision guide.

    Close the backend when done (it owns an event loop)::

        with AsyncioBackend(time_scale=0.002) as backend:
            cluster = Cluster(seed=7, backend=backend)
            ...
    """

    name = "asyncio"
    deterministic = False
    wall_clock = True

    def __init__(self, time_scale: float = DEFAULT_TIME_SCALE,
                 loop: Optional[asyncio.AbstractEventLoop] = None):
        """Build the backend around a fresh :class:`AsyncioKernel`."""
        self._kernel = AsyncioKernel(time_scale=time_scale, loop=loop)

    @property
    def kernel(self) -> AsyncioKernel:
        """The asyncio-loop scheduler implementing the kernel surface."""
        return self._kernel

    @property
    def time_scale(self) -> float:
        """Wall seconds per time unit."""
        return self._kernel.time_scale

    def run_coroutine(self, coro: Coroutine, name: str = "") -> SimEvent:
        """Bridge a native coroutine into the kernel (see the kernel docs)."""
        return self._kernel.run_coroutine(coro, name=name)

    def close(self) -> None:
        """Close the owned event loop.  Idempotent."""
        self._kernel.close()
