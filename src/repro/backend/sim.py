"""The deterministic simulation backend: the seed repo's kernel, wrapped.

:class:`SimBackend` is a thin adapter over :class:`repro.sim.kernel.Kernel`
— the discrete-event scheduler every experiment ran on before the backend
split.  It adds nothing and changes nothing: wrapping an existing kernel
is free, so pre-backend call sites (``Cluster()`` with no ``backend=``,
tests that build a bare ``Kernel()``) keep their exact behaviour, replay
determinism included.
"""

from __future__ import annotations

from typing import Optional

from repro.backend.api import ExecutionBackend
from repro.sim.kernel import Kernel


class SimBackend(ExecutionBackend):
    """Deterministic single-threaded simulation on virtual time.

    Capabilities: ``deterministic`` (a seed pins scheduling order, fault
    draws and every outcome — runs replay bit-identically), not
    ``wall_clock`` (time advances only when queued work runs, so hours of
    simulated traffic cost milliseconds of host time).  This is the
    default backend everywhere and the only one chaos tests should use:
    a reproduced failure is a failure you can debug.
    """

    name = "sim"
    deterministic = True
    wall_clock = False

    def __init__(self, kernel: Optional[Kernel] = None):
        """Wrap ``kernel`` (a fresh :class:`Kernel` when omitted)."""
        self._kernel = kernel if kernel is not None else Kernel()

    @property
    def kernel(self) -> Kernel:
        """The wrapped discrete-event simulation kernel."""
        return self._kernel
