"""The execution-backend contract.

Everything above the scheduler — the cluster protocol stack, the
observability layers, the benchmark harness — is written against one small
surface: a *kernel* object that schedules callbacks and steps generator
processes, plus the fan-in combinators (:func:`~repro.sim.kernel.any_of`,
:func:`~repro.sim.kernel.settle_all`, :func:`~repro.sim.kernel.all_of`).
An :class:`ExecutionBackend` packages one implementation of that surface
so the *same* protocol code runs either on the deterministic simulation
(:class:`~repro.backend.sim.SimBackend`) or on a real asyncio event loop
with a monotonic wall clock (:class:`~repro.backend.aio.AsyncioBackend`).

The kernel surface every backend must provide
--------------------------------------------

``now``
    The backend's clock, as a monotonically non-decreasing float in
    *time units*.  On the sim backend a unit is one tick of simulated
    time and only advances when queued work runs; on the asyncio backend
    a unit is ``time_scale`` wall seconds off ``time.monotonic()`` and
    advances whether or not anything runs.

``event(name="") -> SimEvent``
    A fresh one-shot event with ``trigger`` / ``fail`` / ``on_settle``
    semantics (see :class:`repro.sim.kernel.SimEvent`).  Events are the
    only cross-process synchronisation primitive; both backends reuse the
    same event class, scheduled on their own loop.

``spawn(generator, name="") -> Process``
    Start a generator process at the current instant.  Processes yield
    ``Timeout`` / ``SimEvent`` / ``Process`` effects and are stepped by
    the backend's loop; ``kill()`` runs their ``finally`` blocks.

``schedule(delay, fn, *args)``
    Run a plain callback ``delay`` time units from now.

``timeout_event(delay, value=None) -> SimEvent``
    An event that triggers by itself after ``delay`` units.

``every(interval, fn, immediate=False) -> PeriodicTimer``
    A repeating *daemon* timer: firings interleave with ordinary work but
    never keep the backend alive on their own.  ``immediate=True``
    schedules the first firing at the current instant.

``run(until=None) -> float``
    Drive the loop until no non-daemon work remains (or past ``until``).

``run_until_settled(event, limit=...) -> value``
    Drive the loop until ``event`` settles; raise ``SimulationError`` if
    the backend drains (no non-daemon work left) first.

``stats``
    A dict of run counters (``callbacks_run``, ``processes_spawned``,
    ``events_created``) exported by cluster observability dumps.

What the contract does and does not guarantee
---------------------------------------------

* **Clock.** Monotone on both backends.  Sim time is exact and replayable;
  asyncio time is real and includes host jitter (and keeps advancing in
  the gaps between ``run()`` calls).
* **RNG / fault injection.** Backends do not own randomness: the network
  layer draws delays and drop/duplicate fates from seeded per-stream
  RNGs (``SplitRandom``) exactly as on the sim backend, so a seed pins
  the *sequence* of fault decisions on both.  On asyncio, which message
  receives the Nth draw can differ run-to-run whenever concurrent
  processes race to send — that is the point of a real-time backend.
* **Delivery ordering.** The sim kernel totally orders same-instant work
  FIFO by sequence number.  The asyncio backend makes no such guarantee:
  two callbacks due at (wall-)equal times run in unspecified order, and
  scheduling jitter can reorder deliveries whose virtual times are within
  jitter of each other.  Protocol code must not rely on same-instant FIFO
  — only on the per-call ordering the RPC layer itself provides.
* **Drain detection.** Both backends agree: "drained" means no non-daemon
  callbacks are scheduled.  A process waiting on an event that nothing
  will ever trigger counts as drained on both.

See ``docs/BACKENDS.md`` for the full capability matrix and the guide to
choosing a backend per question.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, List, Optional

from repro.errors import ReproError
from repro.sim.kernel import (
    PeriodicTimer,
    Process,
    ProcessBody,
    SimEvent,
    all_of,
    any_of,
    settle_all,
)


class BackendError(ReproError):
    """An execution backend was misconfigured or misused."""


class ExecutionBackend(abc.ABC):
    """One implementation of the kernel surface the protocol stack runs on.

    Subclasses expose their scheduler via :attr:`kernel` and advertise
    their capabilities through three class attributes:

    - :attr:`name` — short identifier (``"sim"`` / ``"asyncio"``), used in
      logs, dumps and benchmark documents;
    - :attr:`deterministic` — whether a seed pins the entire execution
      (scheduling order included), i.e. whether runs replay bit-identically;
    - :attr:`wall_clock` — whether ``now`` advances with real time.

    The convenience methods below delegate to the kernel so callers can
    hold either the backend or the bare kernel; cluster code holds the
    kernel (``cluster.kernel``) for compatibility with pre-backend code.
    """

    #: short identifier for logs, dumps and benchmark documents
    name: str = "abstract"
    #: True when a seed pins scheduling order and every outcome
    deterministic: bool = False
    #: True when ``now`` tracks real (monotonic) time
    wall_clock: bool = False

    @property
    @abc.abstractmethod
    def kernel(self):
        """The scheduler object implementing the kernel surface."""

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (event loops, fds).  Idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        """Support ``with backend: ...`` for scoped resource cleanup."""
        return self

    def __exit__(self, *_exc) -> None:
        """Close the backend on scope exit."""
        self.close()

    # -- kernel surface, delegated -----------------------------------------

    @property
    def now(self) -> float:
        """Current time in backend time units (see the contract above)."""
        return self.kernel.now

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh pending event on this backend's loop."""
        return self.kernel.event(name=name)

    def spawn(self, body: ProcessBody, name: str = "") -> Process:
        """Start a generator as a process at the current instant."""
        return self.kernel.spawn(body, name=name)

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run a plain callback after ``delay`` time units."""
        self.kernel.schedule(delay, fn, *args)

    def timeout_event(self, delay: float, value: Any = None) -> SimEvent:
        """An event that triggers by itself after ``delay`` units."""
        return self.kernel.timeout_event(delay, value=value)

    def every(self, interval: float, fn: Callable[[], None],
              immediate: bool = False) -> PeriodicTimer:
        """Run ``fn()`` every ``interval`` units as a daemon timer."""
        return self.kernel.every(interval, fn, immediate=immediate)

    def run(self, until: Optional[float] = None) -> float:
        """Drive the loop until idle (or past ``until``); returns now."""
        return self.kernel.run(until=until)

    def run_until_settled(self, event: SimEvent, limit: float = 1e12) -> Any:
        """Drive the loop until ``event`` settles; raise on drain first."""
        return self.kernel.run_until_settled(event, limit=limit)

    # -- combinators --------------------------------------------------------

    def any_of(self, events: List[SimEvent]) -> SimEvent:
        """Event settling when the first of ``events`` settles."""
        return any_of(self.kernel, events)

    def all_of(self, events: List[SimEvent]) -> SimEvent:
        """Event settling once all of ``events`` settle; fails fast."""
        return all_of(self.kernel, events)

    def settle_all(self, events: List[SimEvent]) -> SimEvent:
        """Event capturing every outcome of ``events``; never fails."""
        return settle_all(self.kernel, events)

    # -- message delivery ---------------------------------------------------

    def make_network(self, rng, config=None, observability=None):
        """Build the message-delivery fabric for a cluster on this backend.

        Both backends reuse :class:`repro.cluster.network.Network` — the
        loopback transport: endpoints deliver through the backend's own
        scheduler with delays, drops and duplicates drawn from the same
        seeded per-stream RNGs, so every wire kind (``rpc_batch``,
        ``status_query``, the 2PC/commute prepare family) behaves
        identically up to scheduling.  On the sim backend delays elapse in
        simulated time; on asyncio they elapse on the wall clock, scaled
        by the backend's ``time_scale``.
        """
        from repro.cluster.network import Network

        return Network(self.kernel, rng, config, observability=observability)

    def __repr__(self) -> str:
        """Identify the backend and its capability flags."""
        flags = []
        if self.deterministic:
            flags.append("deterministic")
        if self.wall_clock:
            flags.append("wall-clock")
        return f"<{type(self).__name__} {self.name} {'+'.join(flags) or 'none'}>"


def resolve_backend(spec: Any = None) -> ExecutionBackend:
    """Turn a backend spec into an :class:`ExecutionBackend` instance.

    ``None`` (the default everywhere) means the deterministic simulation;
    an :class:`ExecutionBackend` instance passes through unchanged; the
    strings ``"sim"`` and ``"asyncio"`` build a fresh backend with default
    settings.  Anything else raises :class:`BackendError`.
    """
    if spec is None:
        from repro.backend.sim import SimBackend

        return SimBackend()
    if isinstance(spec, ExecutionBackend):
        return spec
    if isinstance(spec, str):
        if spec == "sim":
            from repro.backend.sim import SimBackend

            return SimBackend()
        if spec in ("asyncio", "aio"):
            from repro.backend.aio import AsyncioBackend

            return AsyncioBackend()
        raise BackendError(
            f"unknown backend {spec!r} (expected 'sim' or 'asyncio')")
    raise BackendError(
        f"backend must be None, a name or an ExecutionBackend, got {spec!r}")
