"""Coordination primitives built on the kernel: gates, semaphores, channels.

These are the simulation-side analogues of condition variables and queues;
the cluster transport and node processes are written against them.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List

from repro.errors import SimulationError
from repro.sim.kernel import Kernel, SimEvent


class Gate:
    """A re-usable broadcast condition.

    ``wait()`` returns an event for the *next* :meth:`open` call.  Unlike a
    raw :class:`SimEvent`, a gate can fire many times; each ``open`` settles
    the waiters registered since the previous one.
    """

    def __init__(self, kernel: Kernel, name: str = "gate"):
        self.kernel = kernel
        self.name = name
        self._waiters: List[SimEvent] = []

    def wait(self) -> SimEvent:
        """Event that triggers at the next :meth:`open` call."""
        event = self.kernel.event(name=f"{self.name}.wait")
        self._waiters.append(event)
        return event

    def open(self, value: Any = None) -> int:
        """Release all current waiters; returns how many were released."""
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.trigger(value)
        return len(waiters)


class Semaphore:
    """Counting semaphore with FIFO waiters."""

    def __init__(self, kernel: Kernel, permits: int = 1, name: str = "sem"):
        if permits < 0:
            raise SimulationError("semaphore permits must be non-negative")
        self.kernel = kernel
        self.name = name
        self._permits = permits
        self._waiters: Deque[SimEvent] = deque()

    @property
    def available(self) -> int:
        """Permits currently free (waiters pending means zero)."""
        return self._permits

    def acquire(self) -> SimEvent:
        """Event that triggers once a permit has been granted to the caller."""
        event = self.kernel.event(name=f"{self.name}.acquire")
        if self._permits > 0 and not self._waiters:
            self._permits -= 1
            event.trigger()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one permit, handing it to the oldest waiter if any."""
        if self._waiters:
            self._waiters.popleft().trigger()
        else:
            self._permits += 1

    def holding(self, body: Generator[Any, Any, Any]) -> Generator[Any, Any, Any]:
        """Run a sub-generator while holding one permit."""
        yield self.acquire()
        try:
            result = yield from body
        finally:
            self.release()
        return result


class Channel:
    """Unbounded FIFO message channel between processes.

    ``put`` never blocks; ``get`` returns an event that triggers with the
    next item.  Getters are served in FIFO order.
    """

    def __init__(self, kernel: Kernel, name: str = "chan"):
        self.kernel = kernel
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimEvent] = deque()

    def __len__(self) -> int:
        """Number of items queued and not yet claimed by a getter."""
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue ``item``, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().trigger(item)
        else:
            self._items.append(item)

    def get(self) -> SimEvent:
        """Event that triggers with the next item (FIFO among getters)."""
        event = self.kernel.event(name=f"{self.name}.get")
        if self._items:
            event.trigger(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def drain(self) -> List[Any]:
        """Remove and return all queued items without waiting."""
        items = list(self._items)
        self._items.clear()
        return items
