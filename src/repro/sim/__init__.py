"""Deterministic discrete-event simulation kernel.

The paper's failure model (§2) — fail-silent nodes, stable vs volatile
storage, lossy networks — is exercised here under a seeded, single-threaded
event loop rather than real threads, so every distributed experiment replays
bit-identically.  Processes are Python generators that ``yield`` effects
(:class:`Timeout`, :class:`SimEvent`, another process's handle) and are
resumed by the :class:`Kernel`.
"""

from repro.sim.kernel import (
    Kernel,
    Process,
    ProcessKilled,
    SimEvent,
    Timeout,
    all_of,
    any_of,
)
from repro.sim.primitives import Channel, Gate, Semaphore

__all__ = [
    "Kernel",
    "Process",
    "ProcessKilled",
    "SimEvent",
    "Timeout",
    "all_of",
    "any_of",
    "Channel",
    "Gate",
    "Semaphore",
]
