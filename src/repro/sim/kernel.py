"""The event loop: simulated time, events, and generator processes.

Design rules that keep simulations deterministic and replayable:

- All pending work lives in one heap ordered by ``(time, sequence)``; the
  sequence number makes same-instant ordering FIFO and total.
- A process waits on at most one thing at a time (compose with
  :func:`any_of` / :func:`all_of` to wait on several).
- Nothing in the kernel reads wall-clock time or global randomness.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SimulationError

#: A simulation process is a generator yielding Timeout / SimEvent / Process.
ProcessBody = Generator[Any, Any, Any]


class ProcessKilled(Exception):
    """Raised inside waiters joined on a process that was killed.

    Also thrown into the killed process itself so ``finally`` blocks run.
    """


@dataclass(frozen=True)
class Timeout:
    """Effect: resume the yielding process after ``duration`` simulated time."""

    duration: float

    def __post_init__(self):
        if self.duration < 0:
            raise SimulationError(f"negative timeout {self.duration}")


class SimEvent:
    """A one-shot occurrence processes can wait for.

    An event is *pending* until someone calls :meth:`trigger` (waiters resume
    with the value) or :meth:`fail` (the exception is thrown into waiters).
    Triggering twice is an error; waiting on an already-settled event resumes
    the waiter immediately (at the current instant, in FIFO order).
    """

    __slots__ = ("kernel", "name", "_state", "_value", "_callbacks")

    _PENDING, _TRIGGERED, _FAILED = 0, 1, 2

    def __init__(self, kernel: "Kernel", name: str = ""):
        self.kernel = kernel
        self.name = name
        self._state = SimEvent._PENDING
        self._value: Any = None
        self._callbacks: List[Callable[["SimEvent"], None]] = []

    @property
    def triggered(self) -> bool:
        """True once the event settled successfully."""
        return self._state == SimEvent._TRIGGERED

    @property
    def failed(self) -> bool:
        """True once the event settled with a failure."""
        return self._state == SimEvent._FAILED

    @property
    def settled(self) -> bool:
        """True once the event is no longer pending (either outcome)."""
        return self._state != SimEvent._PENDING

    @property
    def value(self) -> Any:
        """The trigger value (or the failure exception)."""
        return self._value

    def trigger(self, value: Any = None) -> "SimEvent":
        """Settle the event successfully; waiters resume with ``value``."""
        self._settle(SimEvent._TRIGGERED, value)
        return self

    def fail(self, error: BaseException) -> "SimEvent":
        """Settle the event with an error; waiters have it thrown into them."""
        if not isinstance(error, BaseException):
            raise SimulationError("SimEvent.fail requires an exception instance")
        self._settle(SimEvent._FAILED, error)
        return self

    def _settle(self, state: int, value: Any) -> None:
        if self._state != SimEvent._PENDING:
            raise SimulationError(f"event {self.name or id(self)} settled twice")
        self._state = state
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.kernel._post(callback, self)

    def on_settle(self, callback: Callable[["SimEvent"], None]) -> None:
        """Run ``callback(event)`` once the event settles (immediately if it has)."""
        if self.settled:
            self.kernel._post(callback, self)
        else:
            self._callbacks.append(callback)

    def discard(self, callback: Callable[["SimEvent"], None]) -> None:
        """Remove a not-yet-fired callback (used when killing waiters)."""
        if callback in self._callbacks:
            self._callbacks.remove(callback)

    def __repr__(self) -> str:
        states = {0: "pending", 1: "triggered", 2: "failed"}
        return f"<SimEvent {self.name or hex(id(self))} {states[self._state]}>"


class Process:
    """Handle to a running simulation process.

    Exposes the outcome (``result`` / ``error``), a :meth:`join` event, and
    :meth:`kill`.  Joining a process that failed re-raises its exception in
    the joiner; joining a killed process raises :class:`ProcessKilled`.
    """

    __slots__ = ("kernel", "name", "_body", "_done", "_waiting_on", "_resume_cb", "alive", "killed")

    def __init__(self, kernel: "Kernel", body: ProcessBody, name: str = ""):
        self.kernel = kernel
        self.name = name or getattr(body, "__name__", "process")
        self._body = body
        self._done = SimEvent(kernel, name=f"done({self.name})")
        self._waiting_on: Optional[SimEvent] = None
        self._resume_cb: Optional[Callable[[SimEvent], None]] = None
        self.alive = True
        self.killed = False

    # -- outcome ----------------------------------------------------------

    @property
    def result(self) -> Any:
        """Return value of the generator, once finished successfully."""
        if not self._done.triggered:
            raise SimulationError(f"process {self.name} has not completed")
        return self._done.value

    @property
    def error(self) -> Optional[BaseException]:
        """The failure that ended the process, or None so far/on success."""
        return self._done.value if self._done.failed else None

    def join(self) -> SimEvent:
        """Event settled when the process finishes (with its result/failure)."""
        return self._done

    # -- control ----------------------------------------------------------

    def kill(self) -> None:
        """Terminate the process now; its ``finally`` blocks run.

        Killing a finished process is a no-op.  Waiters joined on the
        process see :class:`ProcessKilled`.
        """
        if not self.alive:
            return
        self.alive = False
        self.killed = True
        if self._waiting_on is not None and self._resume_cb is not None:
            self._waiting_on.discard(self._resume_cb)
            self._waiting_on = None
            self._resume_cb = None
        if getattr(self._body, "gi_running", False):
            # Self-kill: the process (directly or transitively) killed
            # itself — e.g. code running on a node crashes that node.  The
            # frame cannot be thrown into while executing; teardown happens
            # when it next yields (see _step).
            self._done.fail(ProcessKilled(f"process {self.name} killed"))
            return
        try:
            self._body.throw(ProcessKilled())
        except (ProcessKilled, StopIteration):
            pass
        except Exception:
            # A process that raises while being killed is still dead; its
            # error is not propagated (mirrors killing an OS process).
            pass
        finally:
            self._body.close()
        self._done.fail(ProcessKilled(f"process {self.name} killed"))

    # -- kernel internals --------------------------------------------------

    def _step(self, send_value: Any = None, throw_error: Optional[BaseException] = None) -> None:
        if not self.alive:
            return
        self._waiting_on = None
        self._resume_cb = None
        try:
            if throw_error is not None:
                yielded = self._body.throw(throw_error)
            else:
                yielded = self._body.send(send_value)
        except StopIteration as stop:
            self.alive = False
            if not self._done.settled:
                self._done.trigger(stop.value)
            return
        except ProcessKilled:
            self.alive = False
            self.killed = True
            if not self._done.settled:
                self._done.fail(ProcessKilled(f"process {self.name} killed"))
            return
        except Exception as error:
            self.alive = False
            if not self._done.settled:
                self._done.fail(error)
            return
        if not self.alive:
            # killed itself mid-step (self-kill); finish the teardown now
            self._body.close()
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self.kernel._post_at(self.kernel.now + yielded.duration, self._step)
            return
        if isinstance(yielded, Process):
            yielded = yielded.join()
        if isinstance(yielded, SimEvent):
            event = yielded

            def resume(settled: SimEvent, process: "Process" = self) -> None:
                if not process.alive:
                    return
                if settled.failed:
                    process._step(throw_error=settled.value)
                else:
                    process._step(send_value=settled.value)

            self._waiting_on = event
            self._resume_cb = resume
            event.on_settle(resume)
            return
        raise SimulationError(
            f"process {self.name} yielded {yielded!r}; expected Timeout, SimEvent or Process"
        )

    def __repr__(self) -> str:
        state = "alive" if self.alive else ("killed" if self.killed else "done")
        return f"<Process {self.name} {state}>"


class PeriodicTimer:
    """Handle to a repeating callback created by :meth:`Kernel.every`.

    The callback runs at ``start + k * interval`` for k = 1, 2, ... until
    :meth:`cancel`.  Timer posts are *daemon* queue entries: they fire
    interleaved with ordinary work but never keep the simulation alive on
    their own — ``run()`` stops (and ``run_until_settled`` reports a drain)
    once only daemon entries remain, exactly as if the timer were absent.
    """

    __slots__ = ("kernel", "interval", "fn", "alive", "fires")

    def __init__(self, kernel: "Kernel", interval: float, fn: Callable[[], None],
                 immediate: bool = False):
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        self.kernel = kernel
        self.interval = interval
        self.fn = fn
        self.alive = True
        self.fires = 0
        if immediate:
            # first firing at the current instant (still a daemon entry, so
            # an immediate timer alone never wakes an otherwise idle sim)
            self.kernel._post_at(self.kernel.now, self._fire, daemon=True)
        else:
            self._arm()

    def _arm(self) -> None:
        self.kernel._post_at(self.kernel.now + self.interval, self._fire,
                             daemon=True)

    def _fire(self) -> None:
        if not self.alive:
            return
        self.fires += 1
        try:
            self.fn()
        finally:
            if self.alive:
                self._arm()

    def cancel(self) -> None:
        """Stop the timer; an in-flight daemon post becomes a no-op."""
        self.alive = False


class Kernel:
    """The discrete-event scheduler.

    Typical use::

        kernel = Kernel()

        def worker():
            yield Timeout(5.0)
            return "done at t=5"

        handle = kernel.spawn(worker())
        kernel.run()
        assert handle.result == "done at t=5"
    """

    def __init__(self):
        self._now = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._event_names = itertools.count(1)
        #: seq numbers of daemon (periodic-timer) queue entries; they run
        #: interleaved but do not count as pending work
        self._daemon_seqs: set = set()
        #: run statistics, exported by cluster observability dumps; the
        #: kernel is also the tick source (``lambda: kernel.now``) for
        #: every simulated-time metric and span.
        self.stats: dict = {"callbacks_run": 0, "processes_spawned": 0,
                            "events_created": 0}

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # -- construction -------------------------------------------------------

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh pending event."""
        self.stats["events_created"] += 1
        return SimEvent(self, name=name or f"ev{next(self._event_names)}")

    def spawn(self, body: ProcessBody, name: str = "") -> Process:
        """Start a generator as a process at the current instant."""
        if not hasattr(body, "send"):
            raise SimulationError(
                "spawn() takes a generator; did you forget to call the function?"
            )
        process = Process(self, body, name=name)
        self.stats["processes_spawned"] += 1
        self._post(process._step)
        return process

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run a plain callback after ``delay`` simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._post_at(self._now + delay, fn, *args)

    def timeout_event(self, delay: float, value: Any = None) -> SimEvent:
        """An event that triggers by itself after ``delay``."""
        event = self.event(name=f"timeout({delay})")
        self.schedule(delay, lambda: event.settled or event.trigger(value))
        return event

    def every(self, interval: float, fn: Callable[[], None],
              immediate: bool = False) -> PeriodicTimer:
        """Run ``fn()`` every ``interval`` simulated time units.

        The sampling-timer hook: returns a :class:`PeriodicTimer` whose
        firings interleave with ordinary events but never keep the
        simulation alive by themselves (see :class:`PeriodicTimer`).
        ``immediate`` schedules the first firing at the current instant
        instead of one interval out — probes that should observe the
        system's initial state (e.g. the introspection layer) want a
        snapshot even if the run ends within the first interval.
        """
        return PeriodicTimer(self, interval, fn, immediate=immediate)

    # -- execution -----------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event queue; stop when empty or past ``until``.

        Returns the simulated time at which execution stopped.
        """
        while self._queue:
            if len(self._daemon_seqs) == len(self._queue):
                break  # only periodic timers remain: no real work left
            when, seq, fn = self._queue[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._daemon_seqs.discard(seq)
            self._now = when
            self.stats["callbacks_run"] += 1
            fn()
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def run_until_settled(self, event: SimEvent, limit: float = 1e12) -> Any:
        """Run until ``event`` settles; raise if the simulation drains first."""
        while not event.settled:
            if not self._queue or len(self._daemon_seqs) == len(self._queue):
                raise SimulationError(f"simulation drained before {event!r} settled")
            if self._now > limit:
                raise SimulationError(f"exceeded time limit waiting for {event!r}")
            when, seq, fn = heapq.heappop(self._queue)
            self._daemon_seqs.discard(seq)
            self._now = when
            self.stats["callbacks_run"] += 1
            fn()
        if event.failed:
            raise event.value
        return event.value

    # -- internals -------------------------------------------------------------

    def _post(self, fn: Callable[..., None], *args: Any) -> None:
        self._post_at(self._now, fn, *args)

    def _post_at(self, when: float, fn: Callable[..., None], *args: Any,
                 daemon: bool = False) -> None:
        if args:
            bound_fn, bound_args = fn, args

            def call() -> None:
                bound_fn(*bound_args)

            entry: Callable[[], None] = call
        else:
            entry = fn
        seq = next(self._sequence)
        if daemon:
            self._daemon_seqs.add(seq)
        heapq.heappush(self._queue, (when, seq, entry))


def any_of(kernel: Kernel, events: List[SimEvent]) -> SimEvent:
    """An event that settles when the *first* of ``events`` settles.

    Triggers with ``(index, value)`` of the winner; fails if the winner
    failed.
    """
    if not events:
        raise SimulationError("any_of requires at least one event")
    combined = kernel.event(name="any_of")

    def make_callback(index: int) -> Callable[[SimEvent], None]:
        """Bind ``index`` so the winner can report which branch it was."""

        def callback(settled: SimEvent) -> None:
            """Settle the combined event with the first branch outcome."""
            if combined.settled:
                return
            if settled.failed:
                combined.fail(settled.value)
            else:
                combined.trigger((index, settled.value))

        return callback

    for i, event in enumerate(events):
        event.on_settle(make_callback(i))
    return combined


def settle_all(kernel: Kernel, events: List[SimEvent]) -> SimEvent:
    """An event that settles once *all* of ``events`` have settled, capturing
    each outcome instead of failing fast.

    Triggers with a list of ``(ok, value)`` pairs aligned with ``events``:
    ``(True, value)`` for a triggered event, ``(False, error)`` for a failed
    one.  Unlike :func:`all_of` the combined event never fails, so a fan-out
    joiner always learns every task's fate — the pattern for termination
    broadcasts where one unreachable peer must not mask the others.
    """
    combined = kernel.event(name="settle_all")
    if not events:
        kernel._post(lambda: combined.trigger([]))
        return combined
    remaining = {"count": len(events)}
    outcomes: List[Any] = [None] * len(events)

    def make_callback(index: int) -> Callable[[SimEvent], None]:
        """Bind ``index`` so each branch records its aligned outcome pair."""

        def callback(settled: SimEvent) -> None:
            """Capture one ``(ok, value)`` pair; trigger once all are in."""
            outcomes[index] = (not settled.failed, settled.value)
            remaining["count"] -= 1
            if remaining["count"] == 0:
                combined.trigger(list(outcomes))

        return callback

    for i, event in enumerate(events):
        event.on_settle(make_callback(i))
    return combined


def all_of(kernel: Kernel, events: List[SimEvent]) -> SimEvent:
    """An event that settles once *all* of ``events`` have settled.

    Triggers with the list of values; fails with the first failure observed.
    """
    combined = kernel.event(name="all_of")
    if not events:
        kernel._post(lambda: combined.trigger([]))
        return combined
    remaining = {"count": len(events)}
    values: List[Any] = [None] * len(events)

    def make_callback(index: int) -> Callable[[SimEvent], None]:
        """Bind ``index`` so each branch writes its own result slot."""

        def callback(settled: SimEvent) -> None:
            """Record one branch outcome; trigger when all have settled."""
            if combined.settled:
                return
            if settled.failed:
                combined.fail(settled.value)
                return
            values[index] = settled.value
            remaining["count"] -= 1
            if remaining["count"] == 0:
                combined.trigger(list(values))

        return callback

    for i, event in enumerate(events):
        event.on_settle(make_callback(i))
    return combined
