"""Type-specific (semantic) concurrency control (§2).

"Another enhancement is to introduce type specific concurrency control …
to permit concurrent read/write or write/write operations on an object
from different atomic actions provided these operations can be shown to be
non interfering."  Following Schwarz & Spector [4] and Parrington &
Shrivastava [5], an object type declares *operation groups* and a
compatibility relation between them; the lock table grants a group lock
when every current holder is either an ancestor or holds a compatible
group.

Semantic locks compose with colours exactly like ordinary locks: requests
name a colour, commit routes each colour's records to the closest
same-coloured ancestor, abort discards them.  Unlike WRITE locks there is
no same-colour restriction between compatible updaters: compatible update
groups must come with *operation-logged undo* (see
:mod:`repro.objects.semantic`), whose compensations commute, so undo
attribution stays unambiguous without it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, FrozenSet, List, Optional

from repro.colours.colour import Colour
from repro.errors import LockingError
from repro.locking.owner import LockOwner, is_ancestor
from repro.locking.request import LockRequest
from repro.locking.table import ColourRouter
from repro.util.uid import Uid


@dataclass(frozen=True)
class SemanticSpec:
    """A type's operation groups and their compatibility relation.

    ``compatible`` lists unordered pairs that may run concurrently from
    *different* (non-ancestor) actions; everything else conflicts.  A group
    is compatible with itself only if the pair (g, g) is listed.

    ``commuting`` names the subset of groups whose update operations are
    *total and mutually commuting*: applying them in any order against any
    reachable committed state yields the same result and cannot fail.
    That is a strictly stronger contract than self-compatibility — it is
    what lets the commit protocol decide such operations locally (the
    "commute path") instead of running a prepare round, so a group may
    only be declared commuting if it is also self-compatible.
    """

    groups: FrozenSet[str]
    compatible: FrozenSet[FrozenSet[str]]
    commuting: FrozenSet[str] = frozenset()

    @classmethod
    def build(cls, groups, compatible_pairs,
              commuting=()) -> "SemanticSpec":
        groups = frozenset(groups)
        pairs = frozenset(frozenset(pair) for pair in compatible_pairs)
        for pair in pairs:
            if not pair <= groups:
                raise LockingError(f"compatibility pair {set(pair)} uses unknown groups")
        commuting = frozenset(commuting)
        for group in commuting:
            if group not in groups:
                raise LockingError(
                    f"commuting declaration names unknown group {group!r}")
            if frozenset((group, group)) not in pairs:
                raise LockingError(
                    f"commuting group {group!r} must be self-compatible")
        return cls(groups=groups, compatible=pairs, commuting=commuting)

    def is_compatible(self, group_a: str, group_b: str) -> bool:
        return frozenset((group_a, group_b)) in self.compatible

    def is_commuting(self, group: str) -> bool:
        return group in self.commuting

    def validate_group(self, group: str) -> None:
        if group not in self.groups:
            raise LockingError(
                f"unknown operation group {group!r} (has {sorted(self.groups)})"
            )


@dataclass
class SemanticRecord:
    """One granted group lock.  ``count`` supports re-entrant grants."""

    owner: LockOwner
    group: str
    colour: Colour
    count: int = 1

    def describe(self) -> str:
        return f"{self.owner.uid}:{self.group}:{self.colour}x{self.count}"


class SemanticLockTable:
    """Per-object lock table over operation groups.

    Implements the same surface as :class:`~repro.locking.table.LockTable`
    (request / cancel / cancel_owner / release_all / transfer / blocked_on
    / records_of / is_idle), so the :class:`LockRegistry` and the deadlock
    detector drive both uniformly.  ``LockRequest.mode`` carries the group
    name for semantic requests.
    """

    def __init__(self, object_uid: Uid, spec: SemanticSpec):
        self.object_uid = object_uid
        self.spec = spec
        self.holders: List[SemanticRecord] = []
        self.queue: Deque[LockRequest] = deque()

    # -- queries -----------------------------------------------------------

    def records_of(self, owner_uid: Uid) -> List[SemanticRecord]:
        return [record for record in self.holders if record.owner.uid == owner_uid]

    def is_idle(self) -> bool:
        return not self.holders and not self.queue

    def blocked_on(self, request: LockRequest) -> List[Uid]:
        waiting_for = {
            record.owner.uid for record in self._blockers(request)
        }
        for earlier in self.queue:
            if earlier is request:
                break
            waiting_for.add(earlier.owner.uid)
        waiting_for.discard(request.owner.uid)
        return sorted(waiting_for)

    # -- grant logic ----------------------------------------------------------

    def _group_of(self, request: LockRequest) -> str:
        group = request.mode
        if not isinstance(group, str):
            raise LockingError(
                f"semantic table for {self.object_uid} got a non-group "
                f"request mode {request.mode!r}"
            )
        return group

    def _blockers(self, request: LockRequest) -> List[SemanticRecord]:
        group = self._group_of(request)
        return [
            record for record in self.holders
            if not is_ancestor(record.owner, request.owner)
            and not self.spec.is_compatible(group, record.group)
        ]

    def _validate(self, request: LockRequest) -> Optional[str]:
        group = self._group_of(request)
        if group not in self.spec.groups:
            return f"unknown operation group {group!r}"
        if request.colour not in request.owner.colours:
            return (
                f"action {request.owner.uid} does not possess colour "
                f"{request.colour}"
            )
        return None

    # -- requesting ---------------------------------------------------------------

    def request(self, request: LockRequest) -> None:
        reason = self._validate(request)
        if reason is not None:
            request.refuse(reason)
            return
        group = self._group_of(request)
        existing = self._record_for(request.owner.uid, group, request.colour)
        if existing is not None:
            existing.count += 1
            request.grant()
            return
        holds_here = bool(self.records_of(request.owner.uid))
        front_of_line = not self.queue
        if (front_of_line or holds_here) and not self._blockers(request):
            self._install(request)
            request.grant()
            return
        self.queue.append(request)

    def cancel(self, request_uid: Uid, reason: str = "cancelled",
               error: Optional[BaseException] = None) -> bool:
        for queued in self.queue:
            if queued.request_uid == request_uid:
                self.queue.remove(queued)
                if error is not None:
                    queued.refuse(reason, error=error)
                else:
                    queued.cancel(reason)
                self._wake()
                return True
        return False

    def cancel_owner(self, owner_uid: Uid, reason: str,
                     error: Optional[BaseException] = None) -> int:
        victims = [q for q in self.queue if q.owner.uid == owner_uid]
        for queued in victims:
            self.queue.remove(queued)
            if error is not None:
                queued.refuse(reason, error=error)
            else:
                queued.cancel(reason)
        if victims:
            self._wake()
        return len(victims)

    # -- termination ------------------------------------------------------------------

    def release_all(self, owner_uid: Uid) -> int:
        before = len(self.holders)
        self.holders = [r for r in self.holders if r.owner.uid != owner_uid]
        dropped = before - len(self.holders)
        if dropped:
            self._wake()
        return dropped

    def release_colour(self, owner_uid: Uid, colour: Colour) -> int:
        """Vote-time release (read-only vote, commute decision): only the
        owner's records in ``colour`` go; other colours stay routable."""
        before = len(self.holders)
        self.holders = [r for r in self.holders
                        if r.owner.uid != owner_uid or r.colour != colour]
        dropped = before - len(self.holders)
        if dropped:
            self._wake()
        return dropped

    def transfer(self, owner_uid: Uid, router: ColourRouter) -> Dict[Colour, Optional[Uid]]:
        routed: Dict[Colour, Optional[Uid]] = {}
        keep: List[SemanticRecord] = []
        moved: List[SemanticRecord] = []
        for record in self.holders:
            if record.owner.uid != owner_uid:
                keep.append(record)
                continue
            destination = router(record.colour)
            routed[record.colour] = destination.uid if destination else None
            if destination is not None:
                record.owner = destination
                moved.append(record)
        self.holders = keep
        for record in moved:
            target = self._record_for(record.owner.uid, record.group, record.colour)
            if target is not None:
                target.count += record.count
            else:
                self.holders.append(record)
        self._wake()
        return routed

    # -- internals -----------------------------------------------------------------------

    def _record_for(self, owner_uid: Uid, group: str,
                    colour: Colour) -> Optional[SemanticRecord]:
        for record in self.holders:
            if (record.owner.uid == owner_uid and record.group == group
                    and record.colour == colour):
                return record
        return None

    def _install(self, request: LockRequest) -> None:
        self.holders.append(SemanticRecord(
            owner=request.owner, group=self._group_of(request),
            colour=request.colour,
        ))

    def _wake(self) -> None:
        while self.queue:
            front = self.queue[0]
            if front.settled:
                self.queue.popleft()
                continue
            if not self._blockers(front):
                self.queue.popleft()
                self._install(front)
                front.grant()
                continue
            break
