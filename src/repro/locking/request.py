"""Lock requests and their lifecycle.

A request is asynchronous: the table either grants it immediately or queues
it; on grant/refusal/cancellation the request's callback fires exactly once.
Blocking semantics (threads, simulated processes) are layered on top by the
runtimes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.colours.colour import Colour
from repro.locking.modes import LockMode
from repro.locking.owner import LockOwner
from repro.util.uid import Uid


class RequestStatus(enum.Enum):
    PENDING = "pending"
    GRANTED = "granted"
    REFUSED = "refused"
    CANCELLED = "cancelled"


#: callback(request) — invoked exactly once when the request leaves PENDING.
CompletionCallback = Callable[["LockRequest"], None]


@dataclass
class LockRequest:
    """A pending or settled request to lock one object."""

    request_uid: Uid
    owner: LockOwner
    object_uid: Uid
    mode: LockMode
    colour: Colour
    on_complete: Optional[CompletionCallback] = None
    status: RequestStatus = RequestStatus.PENDING
    #: human-readable refusal reason (rule violation, deadlock victim, ...)
    refusal: str = ""
    #: failure to raise in the waiter, when refusal carries an exception
    error: Optional[BaseException] = field(default=None, repr=False)

    @property
    def settled(self) -> bool:
        return self.status is not RequestStatus.PENDING

    def _finish(self, status: RequestStatus, refusal: str = "",
                error: Optional[BaseException] = None) -> None:
        if self.settled:
            return
        self.status = status
        self.refusal = refusal
        self.error = error
        if self.on_complete is not None:
            self.on_complete(self)

    def grant(self) -> None:
        self._finish(RequestStatus.GRANTED)

    def refuse(self, reason: str, error: Optional[BaseException] = None) -> None:
        self._finish(RequestStatus.REFUSED, refusal=reason, error=error)

    def cancel(self, reason: str = "cancelled") -> None:
        self._finish(RequestStatus.CANCELLED, refusal=reason)
