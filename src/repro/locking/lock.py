"""Held-lock records.

A lock table holds a list of :class:`LockRecord` entries per object.  One
owner may hold several records on the same object in *different colours*
(e.g. a serializing constituent WRITE-locks in the data colour and
EXCLUSIVE_READ-locks in the control colour); records of the same
(owner, colour) are merged keeping the strongest mode.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.colours.colour import Colour
from repro.locking.modes import LockMode
from repro.locking.owner import LockOwner


@dataclass
class LockRecord:
    """One granted lock: who holds the object, in what mode, in what colour."""

    owner: LockOwner
    mode: LockMode
    colour: Colour

    def merge_mode(self, mode: LockMode) -> None:
        """Strengthen this record to cover ``mode`` as well (upgrade in place)."""
        self.mode = self.mode.strongest(mode)

    def reassign(self, new_owner: LockOwner) -> None:
        """Move the record to a new owner (commit-time inheritance)."""
        self.owner = new_owner

    def describe(self) -> str:
        return f"{self.owner.uid}:{self.mode.value}:{self.colour}"
