"""The view of an action that the locking layer depends on.

Lock rules need three things about an owner: its identity, its ancestry and
its colour set.  Ancestry is carried as the ``path`` of action uids from the
root of the action tree down to the owner, which makes "is X an ancestor of
Y" a simple membership test — and crucially lets a *remote* lock server
evaluate the rules from a serialised path without holding the action objects
themselves.  Per Moss, ancestry is inclusive: an action is its own ancestor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

from repro.colours.colour import Colour
from repro.util.uid import Uid

try:  # Protocol is typing-only; keep runtime dependency soft for py3.9+
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]


class LockOwner(Protocol):
    """Structural interface implemented by actions (local or serialised)."""

    uid: Uid

    @property
    def path(self) -> Tuple[Uid, ...]:
        """Action uids from the root of the tree to this action, inclusive."""
        ...

    @property
    def colours(self) -> FrozenSet[Colour]:
        """The colours this action statically possesses."""
        ...


def is_ancestor(candidate: "LockOwner", of: "LockOwner") -> bool:
    """True iff ``candidate`` is an (inclusive) ancestor of ``of``."""
    return candidate.uid in of.path


@dataclass(frozen=True)
class StubOwner:
    """A minimal concrete :class:`LockOwner`, for tests and remote requests."""

    uid: Uid
    path: Tuple[Uid, ...] = ()
    colours: FrozenSet[Colour] = field(default_factory=frozenset)

    def __post_init__(self):
        if not self.path or self.path[-1] != self.uid:
            object.__setattr__(self, "path", tuple(self.path) + (self.uid,))
