"""Per-object lock table: holders, a FIFO wait queue, and commit routing.

The table is a pure synchronous state machine.  Requests settle through
their callbacks; the runtimes decide how a caller blocks.  Queueing is
strict FIFO (no overtaking) to prevent writer starvation, with one
documented exception: a requester that *already holds* a record on the
object may be granted past the queue if the rules allow it — an upgrade or
companion-colour acquisition is a continuation of an existing grant, not a
new access, and forcing it behind the queue would manufacture deadlocks.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.colours.colour import Colour
from repro.locking.lock import LockRecord
from repro.locking.owner import LockOwner
from repro.locking.request import LockRequest
from repro.locking.rules import LockRules
from repro.util.uid import Uid

#: Commit-time routing: given a lock's colour, the ancestor that inherits it
#: (or None to release — the committing action was outermost for the colour).
ColourRouter = Callable[[Colour], Optional[LockOwner]]


class LockTable:
    """Lock state for a single object."""

    def __init__(self, object_uid: Uid, rules: LockRules):
        self.object_uid = object_uid
        self.rules = rules
        self.holders: List[LockRecord] = []
        self.queue: Deque[LockRequest] = deque()

    # -- queries ------------------------------------------------------------

    def records_of(self, owner_uid: Uid) -> List[LockRecord]:
        return [record for record in self.holders if record.owner.uid == owner_uid]

    def is_idle(self) -> bool:
        """True when nothing is held or queued (table may be garbage collected)."""
        return not self.holders and not self.queue

    def snapshot(self) -> Dict[str, object]:
        """Read-only wire-friendly image of this table (introspection).

        Walks ``holders`` and ``queue`` without mutating either — safe to
        serve off the live structure mid-protocol.  Works for both data-mode
        and semantic (operation-group) records: the mode label falls back to
        the record's group name when there is no :class:`LockMode`.
        """
        def label(record) -> str:
            mode = getattr(record, "mode", None)
            value = getattr(mode, "value", None)
            if value:
                return str(value)
            return str(getattr(record, "group", "") or mode or "")

        return {
            "object": str(self.object_uid),
            "holders": [
                {"owner": str(record.owner.uid), "mode": label(record),
                 "colour": str(record.colour)}
                for record in self.holders
            ],
            "queued": [
                {"owner": str(queued.owner.uid), "mode": label(queued),
                 "colour": str(queued.colour)}
                for queued in self.queue
            ],
        }

    def blocked_on(self, request: LockRequest) -> List[Uid]:
        """Owner uids this queued request is currently waiting for.

        Includes owners of blocking held records and owners of requests
        queued ahead of it (FIFO makes those block too).  Used to build the
        waits-for graph.
        """
        waiting_for = {record.owner.uid for record in self.rules.blockers(request, self.holders)}
        for earlier in self.queue:
            if earlier is request:
                break
            waiting_for.add(earlier.owner.uid)
        waiting_for.discard(request.owner.uid)
        return sorted(waiting_for)

    # -- requesting -----------------------------------------------------------

    def request(self, request: LockRequest) -> None:
        """Grant now, refuse (rule violation), or enqueue the request."""
        reason = self.rules.validate(request)
        if reason is not None:
            request.refuse(reason)
            return
        existing = self._record_for(request.owner.uid, request.colour)
        if existing is not None and existing.mode.strength >= request.mode.strength:
            request.grant()  # idempotent re-acquisition
            return
        holds_here = bool(self.records_of(request.owner.uid))
        front_of_line = not self.queue
        if (front_of_line or holds_here) and self.rules.may_grant(request, self.holders):
            self._install(request)
            request.grant()
            return
        self.queue.append(request)

    def cancel(self, request_uid: Uid, reason: str = "cancelled",
               error: Optional[BaseException] = None) -> bool:
        """Remove a queued request (timeout / deadlock victim)."""
        for queued in self.queue:
            if queued.request_uid == request_uid:
                self.queue.remove(queued)
                if error is not None:
                    queued.refuse(reason, error=error)
                else:
                    queued.cancel(reason)
                self._wake()
                return True
        return False

    def cancel_owner(self, owner_uid: Uid, reason: str,
                     error: Optional[BaseException] = None) -> int:
        """Cancel every queued request by ``owner_uid``; returns the count."""
        victims = [q for q in self.queue if q.owner.uid == owner_uid]
        for queued in victims:
            self.queue.remove(queued)
            if error is not None:
                queued.refuse(reason, error=error)
            else:
                queued.cancel(reason)
        if victims:
            self._wake()
        return len(victims)

    # -- termination ---------------------------------------------------------

    def release_all(self, owner_uid: Uid) -> int:
        """Abort path: drop every record held by ``owner_uid``.

        Ancestors' own records are untouched (§5.2 abort rule).  Returns the
        number of records dropped.
        """
        before = len(self.holders)
        self.holders = [record for record in self.holders if record.owner.uid != owner_uid]
        dropped = before - len(self.holders)
        if dropped:
            self._wake()
        return dropped

    def release_colour(self, owner_uid: Uid, colour: Colour) -> int:
        """Read-only vote: drop the owner's records in one colour only.

        Used by the 2PC read-only participant optimisation — a voter whose
        slice of the action holds no writes gives its locks up at vote time
        instead of waiting for phase two.  Records in other colours are
        untouched.  Returns the number of records dropped.
        """
        before = len(self.holders)
        self.holders = [record for record in self.holders
                        if not (record.owner.uid == owner_uid
                                and record.colour == colour)]
        dropped = before - len(self.holders)
        if dropped:
            self._wake()
        return dropped

    def transfer(self, owner_uid: Uid, router: ColourRouter) -> Dict[Colour, Optional[Uid]]:
        """Commit path: route each of the owner's records per its colour.

        ``router(colour)`` names the closest ancestor possessing the colour,
        or None when the committing action is outermost for it (the record
        is then released).  Returns {colour: inheritor uid or None} for the
        colours actually routed.
        """
        routed: Dict[Colour, Optional[Uid]] = {}
        keep: List[LockRecord] = []
        moved: List[LockRecord] = []
        for record in self.holders:
            if record.owner.uid != owner_uid:
                keep.append(record)
                continue
            destination = router(record.colour)
            routed[record.colour] = destination.uid if destination is not None else None
            if destination is not None:
                record.reassign(destination)
                moved.append(record)
        self.holders = keep
        for record in moved:
            target = self._record_for(record.owner.uid, record.colour)
            if target is not None:
                target.merge_mode(record.mode)  # parent keeps the stronger mode
            else:
                self.holders.append(record)
        self._wake()
        return routed

    # -- internals ---------------------------------------------------------------

    def _record_for(self, owner_uid: Uid, colour: Colour) -> Optional[LockRecord]:
        for record in self.holders:
            if record.owner.uid == owner_uid and record.colour == colour:
                return record
        return None

    def _install(self, request: LockRequest) -> None:
        existing = self._record_for(request.owner.uid, request.colour)
        if existing is not None:
            existing.merge_mode(request.mode)
        else:
            self.holders.append(LockRecord(request.owner, request.mode, request.colour))

    def _wake(self) -> None:
        """Grant queued requests from the front while the rules allow (strict FIFO)."""
        while self.queue:
            front = self.queue[0]
            if front.settled:  # settled elsewhere; discard
                self.queue.popleft()
                continue
            existing = self._record_for(front.owner.uid, front.colour)
            if existing is not None and existing.mode.strength >= front.mode.strength:
                self.queue.popleft()
                front.grant()
                continue
            if self.rules.may_grant(front, self.holders):
                self.queue.popleft()
                self._install(front)
                front.grant()
                continue
            break
