"""Concurrency control: lock modes, grant rules, tables, deadlock detection.

Two interchangeable rule sets are provided (§5.2 of the paper):

- :class:`~repro.locking.rules.ConventionalRules` — Moss-style nested atomic
  action locking (read shared; write/exclusive-read require every holder to
  be an ancestor).
- :class:`~repro.locking.rules.ColouredRules` — the paper's modified rules:
  an action locks in one of its own colours, and a WRITE lock additionally
  requires every existing WRITE lock on the object to carry the same colour.

The grant logic is a pure synchronous state machine driven through
callbacks, so the same tables serve the threaded local runtime and the
discrete-event cluster simulator.
"""

from repro.locking.modes import LockMode
from repro.locking.owner import LockOwner, StubOwner
from repro.locking.lock import LockRecord
from repro.locking.request import LockRequest, RequestStatus
from repro.locking.rules import ColouredRules, ConventionalRules, LockRules
from repro.locking.table import LockTable
from repro.locking.registry import LockRegistry
from repro.locking.deadlock import DeadlockDetector, WaitsForGraph

__all__ = [
    "LockMode",
    "LockOwner",
    "StubOwner",
    "LockRecord",
    "LockRequest",
    "RequestStatus",
    "LockRules",
    "ConventionalRules",
    "ColouredRules",
    "LockTable",
    "LockRegistry",
    "DeadlockDetector",
    "WaitsForGraph",
]
