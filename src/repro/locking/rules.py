"""Grant rules: conventional (Moss) and coloured (§5.2).

A rule set answers two questions about a request against the current
holders of an object:

- :meth:`LockRules.validate` — is the request *well-formed* (outright
  refusal, independent of contention)?  Coloured systems refuse requests in
  a colour the requester does not possess.
- :meth:`LockRules.blockers` — which held records currently prevent the
  grant?  An empty answer means the request may be granted now.

Both rule sets treat ancestry inclusively (an action never blocks itself),
which is what makes lock retention, upgrades and re-acquisition work.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from repro.locking.lock import LockRecord
from repro.locking.modes import LockMode
from repro.locking.owner import is_ancestor
from repro.locking.request import LockRequest


class LockRules(ABC):
    """Strategy interface for grant decisions."""

    @abstractmethod
    def validate(self, request: LockRequest) -> Optional[str]:
        """Return a refusal reason if the request is ill-formed, else None."""

    @abstractmethod
    def blockers(self, request: LockRequest, holders: List[LockRecord]) -> List[LockRecord]:
        """Records among ``holders`` that prevent granting ``request`` now."""

    def may_grant(self, request: LockRequest, holders: List[LockRecord]) -> bool:
        return not self.blockers(request, holders)


class ConventionalRules(LockRules):
    """Moss-style nested atomic action rules (§5.2, first list).

    - READ: every holder either holds READ or is an ancestor of the
      requester.
    - WRITE / EXCLUSIVE_READ: every holder is an ancestor of the requester.

    Colours are carried on records but ignored by the rules; a conventional
    system is exactly a coloured system in which every action has the same
    single colour (§5.1), and the reduction is tested property-style.
    """

    def validate(self, request: LockRequest) -> Optional[str]:
        return None

    def blockers(self, request: LockRequest, holders: List[LockRecord]) -> List[LockRecord]:
        if request.mode is LockMode.READ:
            return [
                record for record in holders
                if record.mode.is_exclusive and not is_ancestor(record.owner, request.owner)
            ]
        return [
            record for record in holders
            if not is_ancestor(record.owner, request.owner)
        ]


class ColouredRules(LockRules):
    """The paper's coloured locking rules (§5.2, second list).

    - An action may only request locks in colours it possesses.
    - WRITE in colour *a*: every holder (any colour, any mode) is an
      ancestor, **and** every WRITE record on the object is coloured *a* —
      so write responsibility for an object is unambiguous at commit time.
    - READ: as conventional (colour-free).
    - EXCLUSIVE_READ in colour *a*: every holder is an ancestor.

    These rules reproduce the worked examples of §§5.3–5.6 exactly (see the
    fig. 10–15 tests and benchmarks).
    """

    def validate(self, request: LockRequest) -> Optional[str]:
        if request.colour not in request.owner.colours:
            return (
                f"action {request.owner.uid} does not possess colour "
                f"{request.colour} (has: {sorted(str(c) for c in request.owner.colours)})"
            )
        return None

    def blockers(self, request: LockRequest, holders: List[LockRecord]) -> List[LockRecord]:
        if request.mode is LockMode.READ:
            return [
                record for record in holders
                if record.mode.is_exclusive and not is_ancestor(record.owner, request.owner)
            ]
        blocking = [
            record for record in holders
            if not is_ancestor(record.owner, request.owner)
        ]
        if request.mode is LockMode.WRITE:
            blocking.extend(
                record for record in holders
                if record.mode is LockMode.WRITE
                and record.colour != request.colour
                and record not in blocking
            )
        return blocking
