"""Waits-for graph deadlock detection.

Two-phase locking plus FIFO queues can deadlock (the paper notes the
fig. 13(a) invoker/invokee deadlock explicitly).  The detector builds the
waits-for graph from a :class:`~repro.locking.registry.LockRegistry`, finds
a cycle, and cancels the pending requests of a victim — by default the
*youngest* action in the cycle (largest uid: uids are creation-ordered), the
cheapest work to redo.  The runtime then aborts the victim action when its
lock wait fails with :class:`~repro.errors.DeadlockDetected`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import DeadlockDetected
from repro.locking.registry import LockRegistry
from repro.util.uid import Uid


class WaitsForGraph:
    """A directed graph over action uids with cycle search."""

    def __init__(self, edges: Sequence[Tuple[Uid, Uid]] = ()):
        self.adjacency: Dict[Uid, Set[Uid]] = {}
        for waiter, holder in edges:
            self.add_edge(waiter, holder)

    def add_edge(self, waiter: Uid, holder: Uid) -> None:
        if waiter == holder:
            return
        self.adjacency.setdefault(waiter, set()).add(holder)
        self.adjacency.setdefault(holder, set())

    def find_cycle(self) -> Optional[List[Uid]]:
        """Return one cycle as a list of uids, or None.

        Iterative three-colour DFS; deterministic because neighbours are
        visited in sorted order.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        state = {node: WHITE for node in self.adjacency}
        for root in sorted(self.adjacency):
            if state[root] != WHITE:
                continue
            stack: List[Tuple[Uid, List[Uid]]] = [(root, sorted(self.adjacency[root]))]
            state[root] = GREY
            path = [root]
            while stack:
                node, neighbours = stack[-1]
                advanced = False
                while neighbours:
                    nxt = neighbours.pop(0)
                    if state[nxt] == GREY:
                        cycle_start = path.index(nxt)
                        return path[cycle_start:]
                    if state[nxt] == WHITE:
                        state[nxt] = GREY
                        path.append(nxt)
                        stack.append((nxt, sorted(self.adjacency[nxt])))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    path.pop()
                    state[node] = BLACK
        return None


class DeadlockDetector:
    """Detects and resolves deadlocks over one lock registry."""

    def __init__(self, registry: LockRegistry):
        self.registry = registry
        self.victims_chosen: List[Uid] = []

    def scan(self) -> Optional[List[Uid]]:
        """Return a current cycle of action uids, or None."""
        graph = WaitsForGraph(self.registry.waits_for_edges())
        return graph.find_cycle()

    def cycle_through(self, owner_uid: Uid) -> Optional[List[Uid]]:
        """A current cycle that passes through ``owner_uid``, or None.

        Used by the lock-conflict fast abort: when the request that just
        queued closed a cycle through its own action, the wait is *certain*
        to deadlock — there is no point parking it until the chaser or the
        victim scan runs.  DFS restricted to paths reachable from the owner
        that return to it.
        """
        graph = WaitsForGraph(self.registry.waits_for_edges())
        if owner_uid not in graph.adjacency:
            return None
        stack: List[Tuple[Uid, List[Uid]]] = [
            (owner_uid, sorted(graph.adjacency[owner_uid]))]
        path = [owner_uid]
        seen = {owner_uid}
        while stack:
            node, neighbours = stack[-1]
            advanced = False
            while neighbours:
                nxt = neighbours.pop(0)
                if nxt == owner_uid:
                    return list(path)
                if nxt not in seen:
                    seen.add(nxt)
                    path.append(nxt)
                    stack.append((nxt, sorted(graph.adjacency[nxt])))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                path.pop()
        return None

    def choose_victim(self, cycle: Sequence[Uid]) -> Uid:
        """Youngest action (largest uid) in the cycle."""
        return max(cycle)

    def resolve_once(self) -> Optional[Uid]:
        """Break one cycle if present; returns the victim uid or None.

        The victim's queued lock requests are refused with
        :class:`DeadlockDetected`; releasing the victim's *held* locks is
        the job of the runtime's subsequent abort of that action.
        """
        cycle = self.scan()
        if cycle is None:
            return None
        victim = self.choose_victim(cycle)
        error = DeadlockDetected(cycle=cycle)
        self.registry.cancel_waiting(victim, reason="deadlock victim", error=error)
        self.victims_chosen.append(victim)
        return victim

    def resolve_all(self, limit: int = 64) -> List[Uid]:
        """Break cycles until none remain (bounded by ``limit`` victims)."""
        victims: List[Uid] = []
        for _ in range(limit):
            victim = self.resolve_once()
            if victim is None:
                break
            victims.append(victim)
        return victims
