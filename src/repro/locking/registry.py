"""The lock registry: all lock tables of one runtime (or one object server).

Tracks which objects each owner holds or awaits, so that commit/abort can
visit exactly the affected tables, and exposes the waits-for edges for
deadlock detection.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.colours.colour import Colour
from repro.locking.lock import LockRecord
from repro.locking.modes import LockMode
from repro.locking.owner import LockOwner
from repro.locking.request import LockRequest, RequestStatus
from repro.locking.rules import ColouredRules, LockRules
from repro.locking.table import ColourRouter, LockTable
from repro.util.uid import Uid, UidGenerator


def _mode_label(mode) -> str:
    """Canonical label for a LockMode or a semantic group name."""
    return getattr(mode, "value", None) or str(mode)


def _record_mode_label(record) -> str:
    mode = getattr(record, "mode", None)
    if mode is not None:
        return _mode_label(mode)
    return str(getattr(record, "group", "") or "")


class LockRegistry:
    """Lock tables keyed by object uid, plus per-owner bookkeeping."""

    def __init__(self, rules: Optional[LockRules] = None, namespace: str = "lockreq"):
        self.rules: LockRules = rules if rules is not None else ColouredRules()
        self._tables: Dict[Uid, LockTable] = {}
        self._held_by: Dict[Uid, Set[Uid]] = {}      # owner uid -> object uids held
        self._waiting_by: Dict[Uid, Set[Uid]] = {}   # owner uid -> object uids queued on
        self._request_uids = UidGenerator(namespace)
        #: object uid -> SemanticSpec for type-specific locking (§2)
        self._semantic_specs: Dict[Uid, object] = {}
        #: optional ``(kind, **labels)`` sink for lock lifecycle events
        #: (grant / release / inheritance); wired by the runtimes to their
        #: Observability hub so the online auditor sees every transition.
        self.on_event: Optional[Callable[..., None]] = None

    # -- tables ---------------------------------------------------------------

    def use_semantic(self, object_uid: Uid, spec) -> None:
        """Give one object a type-specific (operation-group) lock table."""
        self._semantic_specs[object_uid] = spec

    def table(self, object_uid: Uid):
        existing = self._tables.get(object_uid)
        if existing is None:
            spec = self._semantic_specs.get(object_uid)
            if spec is not None:
                from repro.locking.semantic import SemanticLockTable
                existing = SemanticLockTable(object_uid, spec)
            else:
                existing = LockTable(object_uid, self.rules)
            self._tables[object_uid] = existing
        return existing

    def tables(self) -> Iterable[LockTable]:
        return self._tables.values()

    # -- requests -------------------------------------------------------------

    def request(self, owner: LockOwner, object_uid: Uid, mode: LockMode,
                colour: Colour,
                on_complete: Optional[Callable[[LockRequest], None]] = None) -> LockRequest:
        """Submit a lock request; bookkeeping wraps the caller's callback."""
        request = LockRequest(
            request_uid=self._request_uids.fresh(),
            owner=owner,
            object_uid=object_uid,
            mode=mode,
            colour=colour,
        )
        owner_uid = owner.uid

        def completed(req: LockRequest) -> None:
            self._waiting_by.get(owner_uid, set()).discard(object_uid)
            if req.status is RequestStatus.GRANTED:
                self._held_by.setdefault(owner_uid, set()).add(object_uid)
                if self.on_event is not None:
                    labels = {"owner": str(owner_uid),
                              "object": str(object_uid),
                              "mode": _mode_label(mode),
                              "colour": str(colour)}
                    spec = self._semantic_specs.get(object_uid)
                    if spec is not None and isinstance(mode, str):
                        # operation-group grant: carry the groups this one
                        # commutes with, so the online auditor can re-check
                        # the compatibility-based grant instead of skipping
                        labels["semantic"] = "1"
                        labels["compatible"] = ",".join(sorted(
                            g for g in spec.groups
                            if spec.is_compatible(mode, g)))
                        if spec.is_commuting(mode):
                            # commute-path eligibility flows from the grant:
                            # the auditor only accepts a local (no-prepare)
                            # commit decision over grants carrying this flag
                            labels["commuting"] = "1"
                    self.on_event("lock.granted", **labels)
            elif self.on_event is not None:
                # refusal (timeout, deadlock victim, cancelled owner): the
                # reason and error class let postmortems attribute the abort
                self.on_event(
                    "lock.refused", owner=str(owner_uid),
                    object=str(object_uid), mode=_mode_label(mode),
                    colour=str(colour), reason=str(req.refusal or ""),
                    error=(type(req.error).__name__
                           if req.error is not None else ""),
                )
            if on_complete is not None:
                on_complete(req)

        request.on_complete = completed
        # Registered as waiting up front; cleared again in `completed` for
        # immediate grants.
        self._waiting_by.setdefault(owner_uid, set()).add(object_uid)
        table = self.table(object_uid)
        table.request(request)
        if not request.settled and self.on_event is not None:
            # a wait-for edge: who is this request queued behind right now?
            self.on_event(
                "lock.blocked", owner=str(owner_uid),
                object=str(object_uid), mode=_mode_label(mode),
                colour=str(colour),
                blockers=",".join(str(uid)
                                  for uid in table.blocked_on(request)),
            )
        return request

    def cancel_request(self, request: LockRequest, reason: str = "cancelled",
                       error: Optional[BaseException] = None) -> bool:
        return self.table(request.object_uid).cancel(request.request_uid, reason, error)

    def cancel_waiting(self, owner_uid: Uid, reason: str,
                       error: Optional[BaseException] = None) -> int:
        """Cancel all queued requests of an owner (it is being aborted)."""
        cancelled = 0
        for object_uid in sorted(self._waiting_by.get(owner_uid, set())):
            cancelled += self._tables[object_uid].cancel_owner(owner_uid, reason, error)
        self._waiting_by.pop(owner_uid, None)
        return cancelled

    # -- termination ------------------------------------------------------------

    def release_action(self, owner_uid: Uid) -> int:
        """Abort path: drop all records and queued requests of the owner."""
        self.cancel_waiting(owner_uid, reason="owner aborted")
        dropped = 0
        for object_uid in sorted(self._held_by.pop(owner_uid, set())):
            table = self._tables.get(object_uid)
            if table is not None:
                # emit before release_all: the wake-ups it triggers grant
                # queued requests, and those grants must observe this
                # owner's records as already gone
                if self.on_event is not None:
                    for record in table.records_of(owner_uid):
                        self.on_event(
                            "lock.released", owner=str(owner_uid),
                            object=str(object_uid),
                            mode=_record_mode_label(record),
                            colour=str(record.colour), reason="abort",
                        )
                dropped += table.release_all(owner_uid)
                self._collect(object_uid, table)
        return dropped

    def release_colour(self, owner_uid: Uid, colour,
                       reason: str = "read-only-vote") -> int:
        """Vote-time release: drop the owner's records in ``colour`` everywhere.

        Two 2PC shortcuts release a participant's locks at vote time: the
        read-only optimisation and the commute path's local vote-and-apply
        (``reason`` tells the event stream which).  Only records taken in
        the voted colour go — the owner may still hold (and later route)
        records in other colours.  Returns the number of records dropped.
        """
        dropped = 0
        for object_uid in sorted(self._held_by.get(owner_uid, set())):
            table = self._tables.get(object_uid)
            if table is None:
                continue
            matching = [record for record in table.records_of(owner_uid)
                        if record.colour == colour]
            if not matching:
                continue
            if self.on_event is not None:
                # emitted before the release so the wake-ups it triggers
                # observe this owner's records as already gone
                for record in matching:
                    self.on_event(
                        "lock.released", owner=str(owner_uid),
                        object=str(object_uid),
                        mode=_record_mode_label(record),
                        colour=str(record.colour), reason=reason,
                    )
            dropped += table.release_colour(owner_uid, colour)
            if not table.records_of(owner_uid):
                held = self._held_by.get(owner_uid)
                if held is not None:
                    held.discard(object_uid)
                    if not held:
                        self._held_by.pop(owner_uid, None)
            self._collect(object_uid, table)
        return dropped

    def transfer_on_commit(self, owner_uid: Uid, router: ColourRouter) -> None:
        """Commit path: route every held record per colour across all tables."""
        for object_uid in sorted(self._held_by.pop(owner_uid, set())):
            table = self._tables.get(object_uid)
            if table is None:
                continue
            if self.on_event is not None:
                # same routing the table is about to apply (the router is a
                # pure lookup), emitted ahead of the wake-ups it triggers
                for record in table.records_of(owner_uid):
                    destination = router(record.colour)
                    if destination is not None:
                        self.on_event(
                            "lock.inherited", owner=str(owner_uid),
                            to=str(destination.uid),
                            object=str(object_uid),
                            mode=_record_mode_label(record),
                            colour=str(record.colour),
                        )
                    else:
                        self.on_event(
                            "lock.released", owner=str(owner_uid),
                            object=str(object_uid),
                            mode=_record_mode_label(record),
                            colour=str(record.colour), reason="commit",
                        )
            routed = table.transfer(owner_uid, router)
            for inheritor_uid in routed.values():
                if inheritor_uid is not None:
                    self._held_by.setdefault(inheritor_uid, set()).add(object_uid)
            self._collect(object_uid, table)

    # -- queries -----------------------------------------------------------------

    def objects_held_by(self, owner_uid: Uid) -> Set[Uid]:
        return set(self._held_by.get(owner_uid, set()))

    def records_of(self, owner_uid: Uid) -> List[Tuple[Uid, LockRecord]]:
        found: List[Tuple[Uid, LockRecord]] = []
        for object_uid in sorted(self._held_by.get(owner_uid, set())):
            table = self._tables.get(object_uid)
            if table is None:
                continue
            found.extend((object_uid, record) for record in table.records_of(owner_uid))
        return found

    def holds(self, owner_uid: Uid, object_uid: Uid, mode: LockMode,
              colour: Optional[Colour] = None) -> bool:
        """Does the owner hold (at least) ``mode`` on the object?"""
        table = self._tables.get(object_uid)
        if table is None:
            return False
        for record in table.records_of(owner_uid):
            if colour is not None and record.colour != colour:
                continue
            record_mode = getattr(record, "mode", None)
            if record_mode is not None and record_mode.strength >= mode.strength:
                return True
        return False

    def holds_group(self, owner_uid: Uid, object_uid: Uid, group: str,
                    colour: Optional[Colour] = None) -> bool:
        """Does the owner hold a semantic lock of ``group`` on the object?"""
        table = self._tables.get(object_uid)
        if table is None:
            return False
        for record in table.records_of(owner_uid):
            if colour is not None and record.colour != colour:
                continue
            if getattr(record, "group", None) == group:
                return True
        return False

    def snapshot(self) -> Dict[str, object]:
        """Read-only image of every table plus the waits-for edges.

        Built for the introspection layer: one pass over the live tables
        (sorted by object uid for determinism), no locks taken, nothing
        mutated.  ``waits_for`` carries the object each edge contends on so
        a cluster-level stitcher can attribute the global graph.
        """
        objects = []
        held = queued = 0
        waits_for: List[Dict[str, str]] = []
        for object_uid in sorted(self._tables):
            table = self._tables[object_uid]
            image = table.snapshot()
            held += len(image["holders"])
            queued += len(image["queued"])
            objects.append(image)
            for request in table.queue:
                for holder_uid in table.blocked_on(request):
                    waits_for.append({
                        "waiter": str(request.owner.uid),
                        "holder": str(holder_uid),
                        "object": str(object_uid),
                    })
        return {"objects": objects, "held": held, "queued": queued,
                "waits_for": waits_for}

    def waits_for_edges(self) -> List[Tuple[Uid, Uid]]:
        """(waiter, holder) edges across all tables, for deadlock detection."""
        edges: List[Tuple[Uid, Uid]] = []
        for table in self._tables.values():
            for queued in table.queue:
                for holder_uid in table.blocked_on(queued):
                    edges.append((queued.owner.uid, holder_uid))
        return edges

    def pending_requests_of(self, owner_uid: Uid) -> List[LockRequest]:
        pending: List[LockRequest] = []
        for object_uid in sorted(self._waiting_by.get(owner_uid, set())):
            table = self._tables.get(object_uid)
            if table is None:
                continue
            pending.extend(q for q in table.queue if q.owner.uid == owner_uid)
        return pending

    # -- internals ---------------------------------------------------------------

    def _collect(self, object_uid: Uid, table: LockTable) -> None:
        if table.is_idle():
            self._tables.pop(object_uid, None)
