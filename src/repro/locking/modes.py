"""Lock modes.

The paper uses three modes (§5.2): READ (shared), WRITE (fully exclusive)
and EXCLUSIVE_READ — an exclusive read that exists *purely* so a coloured
system can pin objects for later constituents without claiming the right to
modify them (serializing/glued control actions hold these).
"""

from __future__ import annotations

import enum


class LockMode(enum.Enum):
    """The mode in which a lock is requested or held."""

    READ = "read"
    EXCLUSIVE_READ = "exclusive_read"
    WRITE = "write"

    @property
    def is_exclusive(self) -> bool:
        """True for modes that exclude non-ancestor holders entirely."""
        return self is not LockMode.READ

    @property
    def strength(self) -> int:
        """Total order used when merging inherited locks: READ < EXCLUSIVE_READ < WRITE."""
        return _STRENGTH[self]

    def strongest(self, other: "LockMode") -> "LockMode":
        """The stronger of two modes (used when a parent inherits a child's lock)."""
        return self if self.strength >= other.strength else other


_STRENGTH = {
    LockMode.READ: 0,
    LockMode.EXCLUSIVE_READ: 1,
    LockMode.WRITE: 2,
}
