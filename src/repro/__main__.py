"""``python -m repro`` — a guided tour of the reproduction.

Runs the headline scenarios (figs. 2, 3, 5, 7 as executed timelines, the
fig. 10 coloured action, and a distributed 2PC episode) and prints what
the paper claims next to what just happened.
"""

from __future__ import annotations

import sys

from repro import (
    Counter,
    GluedGroup,
    LocalRuntime,
    SerializingAction,
    independent_top_level,
)
from repro.trace import TraceRecorder, render_timeline


def banner(text: str) -> None:
    print("\n" + "=" * 72)
    print(text)
    print("=" * 72)


def traced():
    runtime = LocalRuntime()
    recorder = TraceRecorder()
    runtime.add_observer(recorder)
    return runtime, recorder


def demo_nesting_problem() -> None:
    banner("Fig. 2 — the problem: nesting undoes completed work")
    runtime, recorder = traced()
    counter = Counter(runtime, value=0)
    try:
        with runtime.top_level(name="A"):
            with runtime.atomic(name="B"):
                counter.increment(10)
            raise RuntimeError("A fails after B completed")
    except RuntimeError:
        pass
    print(render_timeline(recorder))
    print(f"B completed 10 updates; surviving: {counter.value}  "
          f"(all lost with A)")


def demo_serializing() -> None:
    banner("Fig. 3 — the fix: a serializing action")
    runtime, recorder = traced()
    counter = Counter(runtime, value=0)
    ser = SerializingAction(runtime, name="A")
    with ser.constituent(name="B") as b:
        counter.increment(10, action=b)
    ser.cancel()
    print(render_timeline(recorder))
    print(f"B completed 10 updates; surviving after A's abort: "
          f"{counter.value}")


def demo_glued() -> None:
    banner("Fig. 5 — glued actions: pass P, release the rest")
    runtime, recorder = traced()
    p, rest = Counter(runtime, value=0), Counter(runtime, value=0)
    with GluedGroup(runtime, name="glue") as glue:
        with glue.member(name="A") as member:
            p.increment(1, action=member.action)
            rest.increment(1, action=member.action)
            member.hand_over(p)
        with glue.member(name="B") as member:
            p.increment(10, action=member.action)
    print(render_timeline(recorder))
    print(f"p passed A->B under lock (value {p.value}); "
          f"'rest' was free the whole time")


def demo_independent() -> None:
    banner("Fig. 7 — a top-level independent action")
    runtime, recorder = traced()
    board = Counter(runtime, value=0)
    try:
        with runtime.top_level(name="A"):
            with independent_top_level(runtime, name="B") as post:
                board.increment(1, action=post)
            raise RuntimeError("A aborts")
    except RuntimeError:
        pass
    print(render_timeline(recorder))
    print(f"the post survived its invoker's abort: board={board.value}")


def demo_coloured() -> None:
    banner("Fig. 10 — the mechanism: a two-coloured action")
    runtime = LocalRuntime()
    red, blue = runtime.colours.fresh("red"), runtime.colours.fresh("blue")
    o_red, o_blue = Counter(runtime, value=0), Counter(runtime, value=0)
    try:
        with runtime.coloured([blue], name="A"):
            with runtime.coloured([red, blue], name="B") as b:
                o_red.increment(1, colour=red, action=b)
                o_blue.increment(1, colour=blue, action=b)
            raise RuntimeError("A aborts after B committed")
    except RuntimeError:
        pass
    print("B {red, blue} nested in A {blue}:")
    print(f"  red-locked object:  {o_red.value}  (permanent at B's commit)")
    print(f"  blue-locked object: {o_blue.value}  (undone by A's abort)")


def demo_distributed() -> None:
    banner("The substrate — a distributed action with 2PC and a crash")
    from repro.cluster import Cluster
    cluster = Cluster(seed=1)
    for name in ("client-node", "store-a", "store-b"):
        cluster.add_node(name)
    client = cluster.client("client-node")

    def app():
        a = yield from client.create("store-a", "counter", value=0)
        b = yield from client.create("store-b", "counter", value=0)
        action = client.top_level("move")
        yield from client.invoke(action, a, "increment", 5)
        yield from client.invoke(action, b, "increment", 5)
        yield from client.commit(action)
        return a, b

    ref_a, ref_b = cluster.run_process("client-node", app())
    print(f"committed atomically across two nodes "
          f"({cluster.network.stats()['sent']} messages)")
    cluster.crash("store-a")
    cluster.restart("store-a")

    def read():
        action = client.top_level("read")
        value = yield from client.invoke(action, ref_a, "get")
        yield from client.commit(action)
        return value

    print(f"store-a crashed and restarted; committed state intact: "
          f"{cluster.run_process('client-node', read())}")


def main(argv=None) -> int:
    demo_nesting_problem()
    demo_serializing()
    demo_glued()
    demo_independent()
    demo_coloured()
    demo_distributed()
    print("\nSee examples/ for more, EXPERIMENTS.md for the full "
          "figure-by-figure record.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
