"""Seeded, splittable randomness for deterministic simulation.

Every stochastic component (network delay, fault injection, workload
generators) draws from its own stream split off a root seed, so adding a new
component or reordering draws in one component never perturbs the others.
"""

from __future__ import annotations

import random
import zlib


class SplitRandom(random.Random):
    """A :class:`random.Random` that can derive independent child streams.

    ``split(label)`` returns a new generator seeded from this generator's
    seed and the label, so the same (seed, label) pair always yields the same
    stream regardless of how much the parent has been used.
    """

    def __init__(self, seed: int = 0):
        self._seed_value = int(seed)
        super().__init__(self._seed_value)

    @property
    def seed_value(self) -> int:
        return self._seed_value

    def split(self, label: str) -> "SplitRandom":
        """Return an independent child stream identified by ``label``."""
        mixed = zlib.crc32(label.encode("utf-8"), self._seed_value & 0xFFFFFFFF)
        child_seed = (self._seed_value * 1_000_003 + mixed) & 0x7FFFFFFFFFFFFFFF
        return SplitRandom(child_seed)
