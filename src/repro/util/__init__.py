"""Small shared utilities: unique identifiers and seeded randomness."""

from repro.util.uid import Uid, UidGenerator
from repro.util.rng import SplitRandom

__all__ = ["Uid", "UidGenerator", "SplitRandom"]
