"""Unique identifiers for objects, actions, colours, nodes and messages.

Arjuna used a structured ``Uid`` (host address + process id + timestamp); in
a deterministic simulation wall-clock components would break replayability,
so a :class:`Uid` here is a (namespace, sequence) pair drawn from a
:class:`UidGenerator`.  Within one generator, uids are unique and totally
ordered by creation; the ordering is used for deadlock victim selection
(youngest aborts) and for deterministic tie-breaking throughout.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True, order=True)
class Uid:
    """An immutable, totally ordered unique identifier.

    Ordering is by (namespace, sequence); creation order within a namespace
    therefore matches uid order.
    """

    namespace: str
    sequence: int

    def __str__(self) -> str:
        return f"{self.namespace}:{self.sequence}"


@dataclass
class UidGenerator:
    """Hands out fresh :class:`Uid` values for one namespace.

    Instances are cheap; each runtime keeps one generator per kind of entity
    ("action", "object", "colour", ...).  Not thread-safe by design: the
    threaded runtime wraps allocation in its own lock, the simulator is
    single-threaded.
    """

    namespace: str
    _counter: Iterator[int] = field(default_factory=lambda: itertools.count(1), repr=False)

    def fresh(self) -> Uid:
        """Return a uid never returned before by this generator."""
        return Uid(self.namespace, next(self._counter))
