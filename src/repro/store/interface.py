"""The object-store contract.

A store maps object uids to committed state buffers, plus a shadow slot per
object for prepared-but-undecided states (Arjuna's "hidden" states).  The
commit protocols only ever move whole buffers, so a store never interprets
payloads — type information rides along for activation-time checking.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.errors import ObjectNotFound
from repro.util.uid import Uid


@dataclass(frozen=True)
class StoredState:
    """An opaque, immutable object state as kept by a store."""

    object_uid: Uid
    type_name: str
    payload: bytes


class ObjectStore(ABC):
    """Uid -> committed state, with a shadow slot per uid."""

    # -- committed states ---------------------------------------------------

    @abstractmethod
    def read_committed(self, object_uid: Uid) -> StoredState:
        """Return the committed state; raise :class:`ObjectNotFound` if absent."""

    @abstractmethod
    def write_committed(self, state: StoredState) -> None:
        """Install a committed state, replacing any previous one."""

    @abstractmethod
    def remove(self, object_uid: Uid) -> bool:
        """Delete committed (and shadow) state; True if something existed."""

    @abstractmethod
    def contains(self, object_uid: Uid) -> bool:
        ...

    @abstractmethod
    def uids(self) -> Iterable[Uid]:
        """All uids with a committed state."""

    # -- shadow (uncommitted) states -------------------------------------------

    @abstractmethod
    def write_shadow(self, state: StoredState) -> None:
        """Stage an uncommitted state next to the committed one."""

    @abstractmethod
    def read_shadow(self, object_uid: Uid) -> Optional[StoredState]:
        ...

    @abstractmethod
    def commit_shadow(self, object_uid: Uid) -> bool:
        """Promote the shadow to committed; True if a shadow existed."""

    @abstractmethod
    def discard_shadow(self, object_uid: Uid) -> bool:
        """Drop the shadow; True if one existed."""


class DictBackedStore(ObjectStore):
    """Shared dict-backed implementation; subclasses define crash behaviour."""

    def __init__(self):
        self._committed: Dict[Uid, StoredState] = {}
        self._shadows: Dict[Uid, StoredState] = {}

    def read_committed(self, object_uid: Uid) -> StoredState:
        try:
            return self._committed[object_uid]
        except KeyError:
            raise ObjectNotFound(f"no committed state for {object_uid}") from None

    def write_committed(self, state: StoredState) -> None:
        self._committed[state.object_uid] = state

    def remove(self, object_uid: Uid) -> bool:
        existed = object_uid in self._committed
        self._committed.pop(object_uid, None)
        self._shadows.pop(object_uid, None)
        return existed

    def contains(self, object_uid: Uid) -> bool:
        return object_uid in self._committed

    def uids(self) -> Iterable[Uid]:
        return sorted(self._committed)

    def write_shadow(self, state: StoredState) -> None:
        self._shadows[state.object_uid] = state

    def read_shadow(self, object_uid: Uid) -> Optional[StoredState]:
        return self._shadows.get(object_uid)

    def commit_shadow(self, object_uid: Uid) -> bool:
        shadow = self._shadows.pop(object_uid, None)
        if shadow is None:
            return False
        self._committed[object_uid] = shadow
        return True

    def discard_shadow(self, object_uid: Uid) -> bool:
        return self._shadows.pop(object_uid, None) is not None
