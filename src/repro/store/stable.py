"""Stable store: survives node crashes.

The paper assumes stable storage "can survive node crashes with high
probability" (§2); the simulation makes that probability one.  Writes are
atomic at whole-state granularity (no torn states), which is the standard
stable-storage abstraction the commit protocols are built against.
"""

from __future__ import annotations

from repro.store.interface import DictBackedStore


class StableStore(DictBackedStore):
    """A diskfull node's object store; unaffected by crashes.

    Shadow states also live on disk (Arjuna writes shadows into the object
    store before commit), so a crash between prepare and decision leaves
    the shadow intact for recovery to promote or discard.
    """

    def crash(self) -> None:
        """Node crash: stable contents are unaffected."""

    def snapshot_counts(self) -> dict:
        """Debug/metrics helper: how many committed and shadow states exist."""
        return {"committed": len(self._committed), "shadows": len(self._shadows)}
