"""Write-ahead log on stable storage.

The commit protocols append typed records; recovery scans the log from the
start.  Appends are atomic (a record is either wholly present or absent).
The log lives conceptually on the same stable medium as the
:class:`~repro.store.stable.StableStore`, so it too survives crashes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class LogRecord:
    """One appended record: a kind tag plus an opaque payload dict."""

    lsn: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)


class WriteAheadLog:
    """Append-only record log with scan and checkpoint-truncation."""

    def __init__(self):
        self._records: List[LogRecord] = []
        self._lsn = itertools.count(1)

    def append(self, kind: str, **payload: Any) -> LogRecord:
        """Append a record; returns it (with its log sequence number)."""
        record = LogRecord(lsn=next(self._lsn), kind=kind, payload=dict(payload))
        self._records.append(record)
        return record

    def records(self, kind: Optional[str] = None) -> Iterator[LogRecord]:
        """Scan records in append order, optionally filtered by kind."""
        for record in self._records:
            if kind is None or record.kind == kind:
                yield record

    def last(self, kind: Optional[str] = None,
             where: Optional[Callable[[LogRecord], bool]] = None) -> Optional[LogRecord]:
        """Most recent record matching the filters, or None."""
        for record in reversed(self._records):
            if kind is not None and record.kind != kind:
                continue
            if where is not None and not where(record):
                continue
            return record
        return None

    def truncate_before(self, lsn: int) -> int:
        """Checkpoint: drop records with lsn < ``lsn``; returns count dropped."""
        before = len(self._records)
        self._records = [r for r in self._records if r.lsn >= lsn]
        return before - len(self._records)

    def summary(self) -> Dict[str, Any]:
        """Read-only log shape for introspection: depth, lsn bounds, kinds.

        ``depth`` counts live records, ``first_lsn``/``last_lsn`` bound the
        undecided suffix a checkpoint kept (0 when empty), and ``kinds``
        histograms the record mix — enough to spot a log that stopped
        truncating without shipping the payloads anywhere.
        """
        kinds: Dict[str, int] = {}
        for record in self._records:
            kinds[record.kind] = kinds.get(record.kind, 0) + 1
        return {
            "depth": len(self._records),
            "first_lsn": self._records[0].lsn if self._records else 0,
            "last_lsn": self._records[-1].lsn if self._records else 0,
            "kinds": kinds,
        }

    def __len__(self) -> int:
        return len(self._records)
