"""Object stores and stable storage (§2's storage model).

- :class:`VolatileStore` models a diskless node's memory: wiped by a crash.
- :class:`StableStore` models stable storage: survives crashes with
  probability one in the simulation.
- Both support *shadow* (uncommitted) states so a two-phase-commit
  participant can install new states during prepare and atomically promote
  or discard them on the decision.
- :class:`WriteAheadLog` is an append-only record log on stable storage used
  by the commit protocols for crash recovery.
"""

from repro.store.interface import ObjectStore, StoredState
from repro.store.memory import VolatileStore
from repro.store.stable import StableStore
from repro.store.wal import LogRecord, WriteAheadLog

__all__ = [
    "ObjectStore",
    "StoredState",
    "VolatileStore",
    "StableStore",
    "LogRecord",
    "WriteAheadLog",
]
