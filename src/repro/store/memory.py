"""Volatile store: everything is lost on a crash."""

from __future__ import annotations

from repro.store.interface import DictBackedStore


class VolatileStore(DictBackedStore):
    """A diskless node's object store (§2): wiped entirely by a node crash."""

    def crash(self) -> None:
        """Simulate the node crash: all committed and shadow states vanish."""
        self._committed.clear()
        self._shadows.clear()
