"""Bridge from the runtime observer interface onto an Observability hub.

Works against anything with the observer contract of
:meth:`repro.runtime.runtime.LocalRuntime.add_observer` — the local runtime
and the cluster client both fire ``on_action_created`` /
``on_action_terminated`` / ``on_lock_granted``, and both hand over objects
carrying ``uid``, ``name``, ``parent``, ``colours`` and ``status``.

The bridge turns those callbacks into per-colour commit/abort counters,
lock-grant counters, and one span per action (parent/child structure
mirrors action nesting).  The span of a live action is published on the
action object as ``_obs_span`` so deeper instrumentation (RPC spans in the
cluster client) can parent onto it.
"""

from __future__ import annotations

from typing import Optional

from repro.actions.status import ActionStatus
from repro.obs.hub import Observability, colour_names


class ObservabilityBridge:
    """A runtime/cluster-client observer feeding an Observability hub."""

    def __init__(self, hub: Observability, node: str = "local"):
        self.hub = hub
        self.node = node

    # -- observer interface ---------------------------------------------------

    def on_action_created(self, action) -> None:
        parent_span = getattr(action.parent, "_obs_span", None) \
            if action.parent is not None else None
        span = self.hub.span(
            f"action:{action.name}", parent=parent_span, kind="action",
            node=getattr(action, "home", "") or self.node,
            colours=colour_names(action.colours),
            action=str(action.uid),
        )
        action._obs_span = span
        self.hub.count("actions_started_total", node=self.node)
        self.hub.emit(
            "action.begin", action=str(action.uid), name=action.name,
            parent=(str(action.parent.uid) if action.parent is not None
                    else ""),
            colours=colour_names(action.colours),
            node=getattr(action, "home", "") or self.node,
        )

    def on_action_terminated(self, action) -> None:
        outcome = ("committed" if action.status is ActionStatus.COMMITTED
                   else "aborted")
        for colour in action.colours:
            self.hub.count(f"actions_{outcome}_total",
                           colour=str(colour), node=self.node)
        span = getattr(action, "_obs_span", None)
        if span is not None:
            span.set(outcome=outcome)
            span.finish()
        self.hub.emit("action.end", action=str(action.uid),
                      name=action.name, outcome=outcome,
                      colours=colour_names(action.colours),
                      node=getattr(action, "home", "") or self.node)

    def on_lock_granted(self, action, object_uid, mode, colour) -> None:
        """Counter + span event only: the bus-level ``lock.granted`` event
        now originates at the lock registry itself (with owner and node
        labels), which also covers grants no observer sees."""
        mode_label = getattr(mode, "value", None) or str(mode)
        self.hub.count("lock_grants_total", mode=mode_label, node=self.node)
        span: Optional[object] = getattr(action, "_obs_span", None)
        if span is not None:
            span.event("lock.granted", object=str(object_uid),
                       mode=mode_label, colour=str(colour))
