"""Seeded demo cluster for the ``top`` console and the introspection tests.

Builds the chaos-mix shape — three nodes, accounts on two of them, a
transfer workload coordinated from ``beta`` — attaches a
:class:`~repro.obs.introspect.ClusterInspector`, and optionally injects
one of two faults:

* ``partition`` — cut ``beta``/``gamma`` right after a transfer's commit
  decision is logged but before phase two can reach ``gamma``; the probe
  (vantage ``alpha``, which still reaches everyone) then catches ``gamma``
  holding the decided transaction prepared — ``finished-txn-in-flight``
  drift — until the partition heals and the reaper completes the fanout.
* ``restart`` — crash and restart ``gamma`` under a live action that
  already touched it; the probe sees the bumped epoch disagree with the
  epoch the action recorded at first contact — ``epoch-drift``.

The classic presumed-abort protocol is pinned (``fast_paths=False``,
``commute=False``) so the coordinator itself logs the commit decision;
delegated decisions would be excluded from the finished-txn cross-check.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkConfig
from repro.sim.kernel import Timeout

ARMS = ("fault-free", "partition", "restart")
_NODES = ("alpha", "beta", "gamma")
_TRANSFERS = 6
_AMOUNT = 5
_INITIAL = 100


def _run_until(cluster: Cluster, predicate: Callable[[], bool],
               step: float = 0.25, limit: float = 300.0) -> bool:
    """Advance the sim in sub-delay slices until ``predicate`` holds."""
    deadline = cluster.kernel.now + limit
    while not predicate() and cluster.kernel.now < deadline:
        cluster.run(until=cluster.kernel.now + step)
    return predicate()


def run_demo(seed: int = 0, arm: str = "fault-free",
             interval: float = 10.0) -> Dict[str, Any]:
    """Run one demo arm to completion; returns cluster + inspector + stats.

    The returned inspector holds the periodic snapshot ring (``interval``
    sim-ticks apart) plus explicit probes taken at the interesting
    instants: after the base workload, inside the fault window, and after
    recovery.
    """
    if arm not in ARMS:
        raise ValueError(f"unknown arm {arm!r}; pick one of {ARMS}")
    cluster = Cluster(seed=seed, config=NetworkConfig(),
                      fast_paths=False, commute=False)
    for name in _NODES:
        cluster.add_node(name)
    client = cluster.client("beta")
    inspector = cluster.attach_introspection(interval=interval)
    refs: Dict[str, Any] = {}
    stats = {"committed": 0, "failed": 0}

    def setup():
        refs["A"] = yield from client.create("beta", "account",
                                             owner="A", balance=_INITIAL)
        refs["B"] = yield from client.create("gamma", "account",
                                             owner="B", balance=0)

    cluster.run_process("beta", setup())

    def transfer(index: int):
        action = client.top_level(f"xfer{index}")
        try:
            yield from client.invoke(action, refs["A"], "withdraw", _AMOUNT)
            yield from client.invoke(action, refs["B"], "deposit", _AMOUNT)
            yield from client.commit(action)
            stats["committed"] += 1
        except Exception:
            stats["failed"] += 1
            if not action.status.terminated:
                yield from client.abort(action)

    def base_workload():
        for index in range(_TRANSFERS):
            yield from transfer(index)
            yield Timeout(5.0)

    cluster.run_process("beta", base_workload())
    inspector.probe_once()

    if arm == "partition":
        before = set(client.txn_log)

        def decided() -> bool:
            return any(txn_id not in before
                       for txn_id, entry in client.txn_log.items()
                       if entry["state"] in ("decided", "ended"))

        cluster.spawn("beta", transfer(_TRANSFERS), name="partitioned-xfer")
        # cut the link within one polling slice of the decision log write:
        # the phase-two messages to gamma are still in flight (network
        # delay >= 0.5) and get dropped at delivery time
        _run_until(cluster, decided)
        cluster.network.partition("beta", "gamma")
        # let the decision outlive the propagation grace, plus the fanout
        # retries, so the next probe sees unambiguous drift
        cluster.run(until=cluster.kernel.now
                    + inspector.decision_grace + 30.0)
        inspector.probe_once()
        cluster.network.heal_all()
        cluster.run(until=cluster.kernel.now + 120.0)
    elif arm == "restart":
        action = client.top_level("held-open")
        cluster.run_process(
            "beta", client.invoke(action, refs["B"], "deposit", 1))
        cluster.crash("gamma")
        cluster.run(until=cluster.kernel.now + 5.0)
        inspector.probe_once()          # gamma down: stalled, unreachable
        cluster.restart("gamma")
        cluster.run(until=cluster.kernel.now + 5.0)
        inspector.probe_once()          # epoch moved under the live action
        cluster.run_process("beta", client.abort(action))
        cluster.run(until=cluster.kernel.now + 60.0)

    inspector.probe_once()
    return {"cluster": cluster, "inspector": inspector, "client": client,
            "refs": refs, "stats": stats}
