"""Live cluster introspection: health probes, snapshots, drift detection.

A :class:`ClusterInspector` looks at a running cluster from the outside,
through the same at-most-once RPC plane the workload uses: it fans a
``status_query`` out to every server (one batched probe per node, from an
observer vantage on the first live node), stitches the per-server answers
into one :data:`ClusterSnapshot`, and derives a health verdict per server
and for the cluster.

Two things make it more than a pretty printer:

* **Drift detection** — every snapshot is cross-checked against the
  coordinator-side view kept by the cluster's clients (live actions with
  their first-contact epochs, the transaction decision log, the reaper
  backlog).  A server whose epoch moved under a live action, or that still
  holds a transaction prepared long after its coordinator decided it, is
  reported as a structured :class:`Drift` record.  Drift is an expected
  symptom of injected faults, so it is kept separate from the invariant
  auditor's findings (chaos suites hard-fail on those) and rendered as
  auditor-style findings only on demand (:meth:`ClusterInspector.findings`).
* **Non-disruption** — ``status_query`` answers synchronously off live
  structures without taking locks, and probes are plain RPCs: observing a
  cluster mid-protocol never blocks, aborts or reorders the workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.obs.audit.findings import INTROSPECT_DRIFT, Finding
from repro.sim.kernel import settle_all

#: a server's reported epoch differs from the epoch a live action recorded
#: at first contact — the server restarted underneath the action, whose
#: locks and mirrors there died with the old epoch.
EPOCH_DRIFT = "epoch-drift"
#: a server still carries a transaction as prepared/in-doubt although its
#: coordinator decided it longer ago than the decision-propagation grace —
#: phase two is not reaching the participant (partition, lost fanout).
FINISHED_IN_FLIGHT = "finished-txn-in-flight"

#: health verdicts, in increasing order of badness.
HEALTHY, DEGRADED, STALLED = "healthy", "degraded", "stalled"
_RANK = {HEALTHY: 0, DEGRADED: 1, STALLED: 2}


@dataclass(frozen=True)
class Drift:
    """One observed disagreement between a server and the coordinator view."""

    kind: str
    node: str
    message: str
    tick: float = 0.0
    txn: str = ""
    action: str = ""

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "node": self.node,
                               "message": self.message, "tick": self.tick}
        if self.txn:
            out["txn"] = self.txn
        if self.action:
            out["action"] = self.action
        return out

    def to_finding(self) -> Finding:
        """Render as an auditor-style finding (kind ``introspection-drift``).

        The sub-kind rides in the message; drift findings never join the
        auditor's own list — see the note on
        :data:`~repro.obs.audit.findings.INTROSPECT_DRIFT`.
        """
        return Finding(kind=INTROSPECT_DRIFT,
                       message=f"{self.kind}: {self.message}",
                       tick=self.tick, node=self.node, txn=self.txn,
                       action=self.action)

    @property
    def key(self) -> Tuple[str, str, str, str]:
        return (self.kind, self.node, self.txn, self.action)


@dataclass
class ServerHealth:
    """Verdict plus the causes that produced it, for one server."""

    verdict: str = HEALTHY
    causes: List[str] = field(default_factory=list)

    def worsen(self, verdict: str, cause: str) -> None:
        self.causes.append(cause)
        if _RANK[verdict] > _RANK[self.verdict]:
            self.verdict = verdict

    def to_dict(self) -> Dict[str, Any]:
        return {"verdict": self.verdict, "causes": list(self.causes)}


class ClusterInspector:
    """Probes a live cluster and stitches the answers into snapshots.

    Attach via :meth:`~repro.cluster.cluster.Cluster.attach_introspection`
    (periodic, on the sim clock) or drive manually with :meth:`probe_once`.
    Snapshots, drift records and probe counters are all JSON-able
    (:meth:`dump`) and ride along in ``Observability.save`` dumps under
    ``extra["introspection"]`` — what ``python -m repro.obs.top`` consumes.
    """

    def __init__(self, cluster, probe_timeout: float = 3.0,
                 queue_depth_threshold: int = 8,
                 in_doubt_age_threshold: float = 50.0,
                 max_snapshots: int = 32,
                 decision_grace: Optional[float] = None):
        self.cluster = cluster
        self.obs = cluster.obs
        self.obs.inspector = self
        self.probe_timeout = probe_timeout
        self.queue_depth_threshold = queue_depth_threshold
        self.in_doubt_age_threshold = in_doubt_age_threshold
        self.max_snapshots = max_snapshots
        #: how long a decided transaction may legitimately linger prepared
        #: at a participant: the probe can interleave between the
        #: coordinator's decision log write and phase-two delivery, so
        #: anything younger than two RPC rounds is not drift yet.
        self.decision_grace = (decision_grace if decision_grace is not None
                               else 2.0 * cluster.rpc_timeout)
        self.snapshots: List[Dict[str, Any]] = []
        self.drift: List[Drift] = []
        self._seen_drift: Set[Tuple[str, str, str, str]] = set()
        self.probes = 0
        self._probing = False
        self._timer = None

    # -- probing -------------------------------------------------------------

    def attach(self, interval: float = 10.0) -> "ClusterInspector":
        """Start a periodic probe on the sim clock (daemon; fires at once).

        The timer only *starts* probes: an overlap guard skips a tick while
        the previous probe's RPCs are still in flight, so a slow/partitioned
        cluster is never hammered with stacked probes.
        """
        self._timer = self.cluster.kernel.every(interval, self._fire,
                                                immediate=True)
        return self

    def detach(self) -> None:
        """Stop the periodic probe (snapshots and drift are retained)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _fire(self) -> None:
        if self._probing:
            return
        self._probing = True

        def body():
            try:
                yield from self.probe()
            finally:
                self._probing = False

        self.cluster.kernel.spawn(body(), name="introspect-probe")

    def probe(self) -> Generator[Any, Any, Dict[str, Any]]:
        """Generator: one full probe round; returns the stitched snapshot.

        Every configured node is asked concurrently (a one-element
        ``rpc_batch`` from the first live node's transport, short timeout,
        one retry); nodes that do not answer appear as ``None`` statuses
        and are verdicted ``stalled: unreachable``.
        """
        kernel = self.cluster.kernel
        targets = sorted(self.cluster.nodes)
        statuses: Dict[str, Optional[Dict[str, Any]]] = {
            name: None for name in targets}
        home = next((name for name in targets
                     if self.cluster.nodes[name].alive), None)
        if home is not None:
            transport = self.cluster.transports[home]

            def ask(target: str):
                outcomes = yield from transport.call_many(
                    target, [("status_query", {})],
                    timeout=self.probe_timeout, retries=1,
                    completion_timeout=4.0 * self.probe_timeout)
                ok, value = outcomes[0]
                if not ok:
                    raise value
                return value["status"]

            handles = [kernel.spawn(ask(t), name=f"introspect-probe@{t}")
                       for t in targets]
            outcomes = yield settle_all(kernel,
                                        [h.join() for h in handles])
            for target, (ok, value) in zip(targets, outcomes):
                statuses[target] = value if ok else None
        return self._assemble(statuses)

    def probe_once(self, limit: float = 500.0) -> Dict[str, Any]:
        """Run one probe round to completion on an otherwise idle kernel."""
        handle = self.cluster.kernel.spawn(self.probe(),
                                           name="introspect-once")
        self.cluster.kernel.run_until_settled(handle.join(), limit=limit)
        return handle.result

    # -- stitching -----------------------------------------------------------

    def _coordinator_view(self) -> Dict[str, Any]:
        """Merge every client's coordinator-side view into one image."""
        live: Dict[str, Dict[str, int]] = {}
        txn_states: Dict[str, Dict[str, Any]] = {}
        backlog: Dict[str, int] = {}
        for client in getattr(self.cluster, "clients", []):
            for action in client.live_actions.values():
                live[str(action.uid)] = {
                    node: epoch
                    for node, epoch in action.server_epochs.items()}
            for txn_id, entry in client.txn_log.items():
                txn_states[txn_id] = entry
            for node, count in client.reaper_backlog.items():
                backlog[node] = backlog.get(node, 0) + count
        return {"live_actions": live, "txn_states": txn_states,
                "reaper_backlog": backlog}

    def _note_drift(self, drift: Drift) -> bool:
        """Record ``drift`` once; counts + bus event only on first sight."""
        if drift.key in self._seen_drift:
            return False
        self._seen_drift.add(drift.key)
        self.drift.append(drift)
        self.obs.count("introspect_drift_total", kind=drift.kind)
        self.obs.emit("introspect.drift", drift_kind=drift.kind,
                      node=drift.node, txn=drift.txn, action=drift.action)
        return True

    def _check_drift(self, statuses: Dict[str, Optional[Dict[str, Any]]],
                     view: Dict[str, Any], now: float) -> List[Drift]:
        fresh: List[Drift] = []
        # epoch drift: a reachable server's epoch moved under a live action
        for action_uid, epochs in view["live_actions"].items():
            for node, recorded in epochs.items():
                status = statuses.get(node)
                if status is None or status["epoch"] == recorded:
                    continue
                drift = Drift(
                    kind=EPOCH_DRIFT, node=node, tick=now,
                    action=action_uid,
                    message=(f"server {node} reports epoch "
                             f"{status['epoch']} but live action "
                             f"{action_uid} first met it at epoch "
                             f"{recorded}"))
                if self._note_drift(drift):
                    fresh.append(drift)
        # finished-txn-in-flight: a participant still carries a txn the
        # coordinator decided more than decision_grace ago
        for node, status in statuses.items():
            if status is None:
                continue
            for entry in status["in_flight"]:
                txn_id = entry["txn"]
                noted = view["txn_states"].get(txn_id)
                if noted is None or noted["state"] == "delegated":
                    continue
                age = now - noted["tick"]
                if age <= self.decision_grace:
                    continue
                drift = Drift(
                    kind=FINISHED_IN_FLIGHT, node=node, tick=now,
                    txn=txn_id,
                    message=(f"server {node} holds {txn_id} "
                             f"{entry['phase']} although its coordinator "
                             f"{noted['state']} it {age:g} ticks ago"))
                if self._note_drift(drift):
                    fresh.append(drift)
        return fresh

    def _health(self, status: Optional[Dict[str, Any]],
                now: float) -> ServerHealth:
        health = ServerHealth()
        if status is None:
            health.worsen(STALLED, "unreachable")
            return health
        queued = status["locks"]["queued"]
        if queued >= self.queue_depth_threshold:
            health.worsen(DEGRADED, f"lock-queue-depth:{queued}")
        oldest_in_doubt = max(
            (entry["age"] for entry in status["in_flight"]
             if entry["phase"] == "in-doubt"), default=0.0)
        if oldest_in_doubt > self.in_doubt_age_threshold:
            health.worsen(STALLED, f"in-doubt-age:{oldest_in_doubt:g}")
        return health

    def _assemble(self, statuses: Dict[str, Optional[Dict[str, Any]]]
                  ) -> Dict[str, Any]:
        now = self.cluster.kernel.now
        view = self._coordinator_view()
        fresh = self._check_drift(statuses, view, now)
        health: Dict[str, ServerHealth] = {}
        for name in statuses:
            health[name] = self._health(statuses[name], now)
            # drift against this node this round degrades it even when its
            # own numbers look clean: somebody's view of it is stale
            if any(d.node == name for d in fresh):
                health[name].worsen(DEGRADED, "drift")
        overall = HEALTHY
        for entry in health.values():
            if _RANK[entry.verdict] > _RANK[overall]:
                overall = entry.verdict
        waits_for: List[Dict[str, str]] = []
        for name in sorted(statuses):
            status = statuses[name]
            if status is None:
                continue
            for edge in status["locks"]["waits_for"]:
                waits_for.append(dict(edge, node=name))
        snapshot = {
            "tick": now,
            "overall": overall,
            "servers": statuses,
            "health": {name: health[name].to_dict() for name in health},
            "waits_for": waits_for,
            "drift": [d.to_dict() for d in fresh],
            "coordinator": {
                "clients": len(getattr(self.cluster, "clients", [])),
                "live_actions": len(view["live_actions"]),
                "txns_tracked": len(view["txn_states"]),
                "reaper_backlog": view["reaper_backlog"],
            },
        }
        for name, entry in health.items():
            self.obs.metrics.gauge("cluster_health", node=name).set(
                float(_RANK[entry.verdict]))
        self.obs.emit("introspect.probe", overall=overall,
                      reachable=sum(1 for s in statuses.values()
                                    if s is not None),
                      nodes=len(statuses), drift=len(fresh))
        self.probes += 1
        self.snapshots.append(snapshot)
        if len(self.snapshots) > self.max_snapshots:
            del self.snapshots[:len(self.snapshots) - self.max_snapshots]
        return snapshot

    # -- export --------------------------------------------------------------

    @property
    def last(self) -> Optional[Dict[str, Any]]:
        """The most recent snapshot (``None`` before the first probe)."""
        return self.snapshots[-1] if self.snapshots else None

    def findings(self) -> List[Finding]:
        """Drift rendered as auditor-style findings (auditor stays clean)."""
        return [d.to_finding() for d in self.drift]

    def dump(self) -> Dict[str, Any]:
        """JSON-able document: probe count, drift records, snapshot ring."""
        return {
            "probes": self.probes,
            "drift": [d.to_dict() for d in self.drift],
            "snapshots": [dict(s) for s in self.snapshots],
            "overall": self.last["overall"] if self.last else "unknown",
        }
