"""CLI: the live-cluster operator console (``repro.obs.top``).

Usage::

    python -m repro.obs.top                      # seeded demo cluster, text
    python -m repro.obs.top --snapshot --json    # one machine-readable frame
    python -m repro.obs.top --arm partition      # inject drift, exit 2
    python -m repro.obs.top --watch --frames 4   # frame-by-frame console
    python -m repro.obs.top dump.json --snapshot # inspect a saved dump

With a ``dump.json`` argument the console replays the ``introspection``
section a :class:`~repro.obs.introspect.ClusterInspector` embedded into an
``Observability.save`` dump; without one it builds the seeded demo cluster
(``--seed``/``--arm``) and probes it live.  ``--watch`` renders the
periodic snapshot ring frame by frame instead of just the latest state.

Exit codes follow the obs-CLI contract: 0 = clean (no drift, nothing
stalled), 1 = unusable input, 2 = drift recorded or a server left stalled.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.obs.introspect.render import render_drift, render_snapshot


def _load(path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        return None
    if not isinstance(raw, dict):
        print(f"error: {path}: expected a JSON object "
              f"(got {type(raw).__name__})", file=sys.stderr)
        return None
    return raw


def _exit_code(doc: Dict[str, Any]) -> int:
    snapshots = doc.get("snapshots") or []
    last = snapshots[-1] if snapshots else {}
    if doc.get("drift") or last.get("overall") == "stalled":
        return 2
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.top",
        description="Live cluster introspection console: per-server health, "
                    "hot objects, in-flight transactions, waits-for, drift.",
    )
    parser.add_argument("path", nargs="?", default=None,
                        help="obs dump with an embedded introspection "
                             "section; omit to probe the seeded demo cluster")
    parser.add_argument("--seed", type=int, default=0,
                        help="demo-cluster seed (default 0)")
    parser.add_argument("--arm", default="fault-free",
                        choices=("fault-free", "partition", "restart"),
                        help="demo fault arm (default fault-free)")
    parser.add_argument("--interval", type=float, default=10.0,
                        help="periodic probe interval in sim ticks")
    parser.add_argument("--snapshot", action="store_true",
                        help="print only the latest snapshot")
    parser.add_argument("--watch", action="store_true",
                        help="render the snapshot ring frame by frame")
    parser.add_argument("--frames", type=int, default=4, metavar="N",
                        help="frames to render with --watch (default 4)")
    parser.add_argument("--json", action="store_true",
                        help="print the result as JSON")
    args = parser.parse_args(argv)

    if args.path is not None:
        raw = _load(args.path)
        if raw is None:
            return 1
        extra = raw.get("extra") if isinstance(raw.get("extra"), dict) \
            else {}
        doc = extra.get("introspection")
        if not isinstance(doc, dict):
            print(f"{args.path}: no introspection section — the run had no "
                  f"ClusterInspector attached (cluster.attach_introspection)")
            return 0
    else:
        from repro.obs.introspect.demo import run_demo

        doc = run_demo(seed=args.seed, arm=args.arm,
                       interval=args.interval)["inspector"].dump()

    snapshots = doc.get("snapshots") or []
    if not snapshots:
        print("no snapshots recorded (the run ended before the first probe)")
        return _exit_code(doc)

    if args.json:
        payload: Any = snapshots[-1] if args.snapshot else doc
        print(json.dumps(payload, indent=2, sort_keys=True))
        return _exit_code(doc)

    if args.watch:
        for index, snapshot in enumerate(snapshots[-args.frames:]):
            if index:
                print()
            print(f"--- frame {index + 1} ---")
            for line in render_snapshot(snapshot):
                print(line)
    else:
        for line in render_snapshot(snapshots[-1]):
            print(line)
    if not args.snapshot:
        print()
        for line in render_drift(doc.get("drift") or []):
            print(line)
    return _exit_code(doc)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
