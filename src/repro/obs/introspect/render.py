"""Text rendering for introspection snapshots (the ``top`` console frames).

Pure functions from a snapshot document (as produced by
:meth:`~repro.obs.introspect.ClusterInspector.probe` or stored under
``extra["introspection"]["snapshots"]`` in an obs dump) to lists of lines;
the CLI prints them, tests assert on them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

_MARK = {"healthy": "ok", "degraded": "WARN", "stalled": "STALL"}


def _fmt_row(cells: List[str], widths: List[int]) -> str:
    return "  ".join(cell.ljust(width)
                     for cell, width in zip(cells, widths)).rstrip()


def _table(header: List[str], rows: List[List[str]]) -> List[str]:
    widths = [max(len(header[i]), *(len(row[i]) for row in rows))
              if rows else len(header[i]) for i in range(len(header))]
    lines = [_fmt_row(header, widths),
             _fmt_row(["-" * w for w in widths], widths)]
    lines.extend(_fmt_row(row, widths) for row in rows)
    return lines


def hottest_objects(snapshot: Dict[str, Any],
                    count: int = 5) -> List[Tuple[str, str, int, int]]:
    """Objects with the most lock activity: (node, object, held, queued)."""
    entries = []
    for name, status in sorted(snapshot["servers"].items()):
        if status is None:
            continue
        for image in status["locks"]["objects"]:
            held, queued = len(image["holders"]), len(image["queued"])
            if held or queued:
                entries.append((name, image["object"], held, queued))
    entries.sort(key=lambda e: (-(e[2] + 2 * e[3]), e[1]))
    return entries[:count]


def hottest_colours(snapshot: Dict[str, Any],
                    count: int = 5) -> List[Tuple[str, int]]:
    """Colours by number of lock records (held + queued) cluster-wide."""
    tally: Dict[str, int] = {}
    for status in snapshot["servers"].values():
        if status is None:
            continue
        for image in status["locks"]["objects"]:
            for record in image["holders"] + image["queued"]:
                colour = record.get("colour") or ""
                if colour:
                    tally[colour] = tally.get(colour, 0) + 1
    return sorted(tally.items(), key=lambda kv: (-kv[1], kv[0]))[:count]


def oldest_in_flight(snapshot: Dict[str, Any],
                     count: int = 5) -> List[Dict[str, Any]]:
    """In-flight transaction entries cluster-wide, oldest first."""
    entries = []
    for name, status in sorted(snapshot["servers"].items()):
        if status is None:
            continue
        for entry in status["in_flight"]:
            entries.append(dict(entry, node=name))
    entries.sort(key=lambda e: (-e["age"], e["txn"]))
    return entries[:count]


def render_snapshot(snapshot: Dict[str, Any], count: int = 5) -> List[str]:
    """One console frame: health table, hot spots, waits-for, drift."""
    lines = [f"cluster introspection @ tick {snapshot['tick']:g} — "
             f"overall {snapshot['overall'].upper()}"]
    rows = []
    for name in sorted(snapshot["servers"]):
        status = snapshot["servers"][name]
        health = snapshot["health"][name]
        causes = ",".join(health["causes"]) or "-"
        if status is None:
            rows.append([name, _MARK[health["verdict"]], causes,
                         "-", "-", "-", "-", "-", "-"])
            continue
        locks = status["locks"]
        rows.append([
            name, _MARK[health["verdict"]], causes, str(status["epoch"]),
            f"{status['wal']['depth']}",
            f"{locks['held']}/{locks['queued']}",
            str(len(status["in_flight"])), str(len(status["mirrors"])),
            str(status["pending_rpcs"]),
        ])
    lines.append("")
    lines.extend(_table(["node", "health", "causes", "epoch", "wal",
                         "locks h/q", "in-flight", "mirrors", "rpcs"], rows))
    backlog = snapshot["coordinator"]["reaper_backlog"]
    lines.append("")
    lines.append(
        f"coordinator view: {snapshot['coordinator']['live_actions']} live "
        f"action(s), {snapshot['coordinator']['txns_tracked']} txn(s) "
        f"tracked, reapers " + (
            ", ".join(f"{node}:{n}" for node, n in sorted(backlog.items()))
            or "none"))

    hot = hottest_objects(snapshot, count)
    lines.append("")
    lines.append("hottest objects (held/queued):")
    if hot:
        lines.extend(f"  {obj} @ {node}: {held}/{queued}"
                     for node, obj, held, queued in hot)
    else:
        lines.append("  none")
    colours = hottest_colours(snapshot, count)
    if colours:
        lines.append("hottest colours: " + ", ".join(
            f"{colour} ({n})" for colour, n in colours))

    oldest = oldest_in_flight(snapshot, count)
    lines.append("")
    lines.append("oldest in-flight transactions:")
    if oldest:
        lines.extend(
            f"  {e['txn']} @ {e['node']}: {e['phase']}, age {e['age']:g}"
            for e in oldest)
    else:
        lines.append("  none")

    lines.append("")
    lines.append("waits-for:")
    if snapshot["waits_for"]:
        lines.extend(
            f"  {edge['waiter']} -> {edge['holder']} "
            f"on {edge['object']} @ {edge['node']}"
            for edge in snapshot["waits_for"])
    else:
        lines.append("  no waiting")

    if snapshot["drift"]:
        lines.append("")
        lines.append("DRIFT:")
        lines.extend(f"  [{d['kind']}] {d['message']}"
                     for d in snapshot["drift"])
    return lines


def render_drift(drift: List[Dict[str, Any]]) -> List[str]:
    """All recorded drift, one line each (for the non-watch summary)."""
    if not drift:
        return ["no drift recorded"]
    lines = [f"{len(drift)} drift record(s):"]
    lines.extend(f"  [{d['kind']}] tick {d['tick']:g}: {d['message']}"
                 for d in drift)
    return lines
