"""Live cluster introspection: health probes, snapshots, operator console.

The fifth observability layer.  The other four answer questions about a
*finished* run (report/audit/perf/why over a saved dump); this one answers
"what is the cluster doing *right now*": every server serves a read-only
``status_query`` RPC off its live structures, and a
:class:`ClusterInspector` stitches the answers into cluster snapshots with
per-server health verdicts and coordinator-vs-server drift detection.
``python -m repro.obs.top`` is the console on top.
"""

from repro.obs.introspect.inspector import (
    DEGRADED,
    EPOCH_DRIFT,
    FINISHED_IN_FLIGHT,
    HEALTHY,
    STALLED,
    ClusterInspector,
    Drift,
    ServerHealth,
)
from repro.obs.introspect.render import (
    hottest_colours,
    hottest_objects,
    oldest_in_flight,
    render_drift,
    render_snapshot,
)

__all__ = [
    "ClusterInspector",
    "Drift",
    "ServerHealth",
    "HEALTHY",
    "DEGRADED",
    "STALLED",
    "EPOCH_DRIFT",
    "FINISHED_IN_FLIGHT",
    "render_snapshot",
    "render_drift",
    "hottest_objects",
    "hottest_colours",
    "oldest_in_flight",
]
