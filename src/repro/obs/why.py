"""``python -m repro.obs.why`` — alias for ``python -m repro.obs.postmortem``.

The ISSUE-facing name of the postmortem CLI; both entry points run the
same :func:`~repro.obs.postmortem.__main__.main`.
"""

from repro.obs.postmortem.__main__ import main

__all__ = ["main"]

if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    import sys

    sys.exit(main())
