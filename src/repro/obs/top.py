"""``python -m repro.obs.top`` — alias for ``python -m repro.obs.introspect``.

The operator-facing name of the live-introspection console; both entry
points run the same :func:`~repro.obs.introspect.__main__.main`.
"""

from repro.obs.introspect.__main__ import main

__all__ = ["main"]

if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    import sys

    sys.exit(main())
