"""Labelled metrics: counters, gauges, and histograms.

A :class:`MetricsRegistry` owns every instrument of one observed system
(a runtime, a cluster, a benchmark run).  Instruments are identified by a
name plus a label set — ``registry.counter("actions_committed_total",
colour="c1")`` — so the same logical metric fans out per colour, node,
message kind or action structure without pre-registration.

Everything is thread-safe (the local runtime is multi-threaded); in the
simulated cluster the registry is also deterministic: nothing here reads
wall-clock time or randomness, timestamps come from the owner's
``tick_source`` (usually ``lambda: kernel.now``).
"""

from __future__ import annotations

import random
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

#: labels are carried as a sorted tuple of (key, value) pairs — hashable,
#: deterministic, JSON-friendly.
LabelSet = Tuple[Tuple[str, str], ...]

#: label *value* that high-cardinality series fold into once a metric hits
#: its per-metric series cap.  The label keys are preserved so per-key
#: aggregations (e.g. summing a counter across every ``colour``) still see
#: the folded series.
OVERFLOW_LABEL = "__overflow__"


def _labelset(labels: Dict[str, Any]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter decrement ({amount}) not allowed")
        self.value += amount

    def summary(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down (queue depths, live objects)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def summary(self) -> Dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """Sampled distribution with exact count/sum/min/max and percentiles.

    Retains up to ``max_samples`` raw samples for percentile queries.  The
    aggregate statistics stay exact beyond that; the retained set is then a
    uniform *reservoir* over the whole stream (Vitter's Algorithm R, driven
    by a fixed-seed PRNG so the same observation sequence always keeps the
    same samples), and ``truncated`` flags the summary as approximate.
    Memory is therefore bounded for arbitrarily long runs without biasing
    percentiles toward the warm-up prefix.
    """

    __slots__ = ("count", "total", "min", "max", "samples", "max_samples",
                 "_rng")

    def __init__(self, max_samples: int = 4096):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples: List[float] = []
        self.max_samples = max_samples
        self._rng = random.Random(0x5EED)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self.samples) < self.max_samples:
            self.samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.max_samples:
                self.samples[slot] = value

    def percentile(self, p: float) -> Optional[float]:
        """Linear-interpolated percentile over the retained samples."""
        if not self.samples:
            return None
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} outside [0, 100]")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] + (ordered[high] - ordered[low]) * fraction

    @property
    def mean(self) -> Optional[float]:
        return (self.total / self.count) if self.count else None

    def summary(self) -> Dict[str, Any]:
        summary = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }
        if self.count > len(self.samples):
            summary["truncated"] = True
        return summary


class MetricsRegistry:
    """All instruments of one observed system, keyed by (name, labels)."""

    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self, tick_source: Optional[Callable[[], float]] = None,
                 max_series_per_metric: Optional[int] = None):
        if max_series_per_metric is not None and max_series_per_metric < 1:
            raise ValueError(
                f"max_series_per_metric must be >= 1, got "
                f"{max_series_per_metric}")
        self._tick_source = tick_source
        self._mutex = threading.Lock()
        self.max_series_per_metric = max_series_per_metric
        #: kind -> name -> labelset -> instrument
        self._instruments: Dict[str, Dict[str, Dict[LabelSet, Any]]] = {
            kind: {} for kind in self._KINDS
        }
        #: (kind, name) -> how many label sets were folded into overflow
        self._folded: Dict[Tuple[str, str], int] = {}

    def now(self) -> float:
        """The registry's clock (simulated time when given a tick source)."""
        if self._tick_source is not None:
            return self._tick_source()
        return 0.0

    # -- instrument access ---------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get("histogram", name, labels)

    def _get(self, kind: str, name: str, labels: Dict[str, Any]):
        key = _labelset(labels)
        with self._mutex:
            per_name = self._instruments[kind].setdefault(name, {})
            instrument = per_name.get(key)
            if instrument is None:
                cap = self.max_series_per_metric
                if cap is not None and key and len(per_name) >= cap:
                    # fold new label sets into one overflow series per label
                    # *shape*, keeping keys so cross-label sums stay exact.
                    key = tuple((k, OVERFLOW_LABEL) for k, _ in key)
                    instrument = per_name.get(key)
                    self._folded[(kind, name)] = (
                        self._folded.get((kind, name), 0) + 1)
                if instrument is None:
                    instrument = self._KINDS[kind]()
                    per_name[key] = instrument
            return instrument

    # -- queries ---------------------------------------------------------------

    def value(self, name: str, **labels: Any) -> float:
        """Current value of a counter or gauge (0.0 if never touched)."""
        key = _labelset(labels)
        with self._mutex:
            for kind in ("counter", "gauge"):
                instrument = self._instruments[kind].get(name, {}).get(key)
                if instrument is not None:
                    return instrument.value
        return 0.0

    def series(self, name: str) -> List[Tuple[Dict[str, str], Any]]:
        """Every (labels, instrument) pair recorded under ``name``."""
        with self._mutex:
            found: List[Tuple[Dict[str, str], Any]] = []
            for per_kind in self._instruments.values():
                for key, instrument in per_kind.get(name, {}).items():
                    found.append((dict(key), instrument))
            return found

    def dump(self) -> Dict[str, List[Dict[str, Any]]]:
        """JSON-able snapshot of every instrument, deterministically ordered."""
        with self._mutex:
            out: Dict[str, List[Dict[str, Any]]] = {}
            for kind, per_kind in self._instruments.items():
                rows: List[Dict[str, Any]] = []
                for name in sorted(per_kind):
                    for key in sorted(per_kind[name]):
                        entry = {"name": name, "labels": dict(key)}
                        entry.update(per_kind[name][key].summary())
                        rows.append(entry)
                out[f"{kind}s"] = rows
            # synthetic accounting rows: how many label sets each capped
            # metric folded into its overflow series (absent when no cap or
            # no overflow, keeping uncapped dumps byte-identical).
            for (kind, name), folds in sorted(self._folded.items()):
                out["counters"].append({
                    "name": "metrics_series_folded_total",
                    "labels": {"kind": kind, "metric": name},
                    "value": float(folds),
                })
            return out

    def clear(self) -> None:
        with self._mutex:
            for per_kind in self._instruments.values():
                per_kind.clear()
            self._folded.clear()

    def series_count(self) -> int:
        """Total number of live instruments across every metric."""
        with self._mutex:
            return sum(len(per_name)
                       for per_kind in self._instruments.values()
                       for per_name in per_kind.values())


def _row_key(row: Dict[str, Any]) -> Tuple[str, LabelSet]:
    return row["name"], _labelset(row.get("labels", {}))


def dump_delta(current: Dict[str, List[Dict[str, Any]]],
               baseline: Dict[str, List[Dict[str, Any]]],
               ) -> Dict[str, List[Dict[str, Any]]]:
    """The change between two :meth:`MetricsRegistry.dump` snapshots.

    This is snapshot-and-diff rather than snapshot-and-reset: the live
    registry is never mutated (resetting would corrupt consumers that track
    cumulative values, like the time-series sampler), yet summing the deltas
    of consecutive segments telescopes back to the final cumulative dump.

    Counters and gauges carry ``value`` differences; histograms carry
    ``count``/``sum`` differences with a recomputed ``mean`` (percentiles
    are cumulative-reservoir artefacts and are omitted, exactly as the
    multi-dump merge in ``repro.obs.report`` drops them).  Rows that did
    not change within the window are omitted.
    """
    out: Dict[str, List[Dict[str, Any]]] = {}
    for kind in ("counters", "gauges", "histograms"):
        base_rows = {_row_key(row): row for row in baseline.get(kind, [])}
        rows: List[Dict[str, Any]] = []
        for row in current.get(kind, []):
            before = base_rows.get(_row_key(row))
            if kind == "histograms":
                count = row["count"] - (before["count"] if before else 0)
                if count <= 0:
                    continue
                total = row["sum"] - (before["sum"] if before else 0.0)
                rows.append({
                    "name": row["name"], "labels": dict(row["labels"]),
                    "count": count, "sum": total,
                    "min": row["min"], "max": row["max"],
                    "mean": total / count,
                })
            else:
                value = row["value"] - (before["value"] if before else 0.0)
                if value == 0.0 and before is not None:
                    continue
                rows.append({"name": row["name"],
                             "labels": dict(row["labels"]), "value": value})
        out[kind] = rows
    return out
