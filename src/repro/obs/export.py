"""Exporters: Chrome trace-event JSON, plain-text reports, JSON dumps.

``chrome_trace`` emits the Trace Event Format understood by
``chrome://tracing`` and Perfetto: one complete ("X") event per finished
span, grouped into one "process" per simulated node, with span/parent ids
in ``args`` so the tree survives the round-trip.  ``save_trace`` /
``load_trace`` persist a whole observation (spans + metrics) as JSON for
the ``python -m repro.obs.report`` CLI and the benchmark trajectories.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer

#: simulated time is unit-less; one tick maps to 1 ms in exported traces so
#: Perfetto's axis shows readable numbers (ts/dur are microseconds).
TICKS_TO_MICROS = 1000.0


def _span_dicts(spans: Union[Tracer, Iterable[Any]]) -> List[Dict[str, Any]]:
    if isinstance(spans, Tracer):
        spans = spans.snapshot()
    out: List[Dict[str, Any]] = []
    for span in spans:
        out.append(span.to_dict() if isinstance(span, Span) else dict(span))
    return out


def chrome_trace(spans: Union[Tracer, Iterable[Any]],
                 tick_scale: float = TICKS_TO_MICROS) -> Dict[str, Any]:
    """Chrome trace-event JSON for the finished spans of ``spans``."""
    records = [s for s in _span_dicts(spans) if s["end"] is not None]
    pids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for record in records:
        node = record["node"] or "repro"
        pid = pids.setdefault(node, len(pids) + 1)
        events.append({
            "name": record["name"],
            "cat": record["kind"],
            "ph": "X",
            "ts": record["start"] * tick_scale,
            "dur": (record["end"] - record["start"]) * tick_scale,
            "pid": pid,
            "tid": 1,
            "args": {
                "trace_id": record["trace_id"],
                "span_id": record["span_id"],
                "parent_id": record["parent_id"],
                **record["attrs"],
            },
        })
        for event in record["events"]:
            events.append({
                "name": event["name"],
                "cat": record["kind"],
                "ph": "i",
                "s": "t",
                "ts": event["tick"] * tick_scale,
                "pid": pid,
                "tid": 1,
                "args": dict(event["attrs"]),
            })
    metadata = [
        {"name": "process_name", "ph": "M", "pid": pid, "tid": 1,
         "args": {"name": node}}
        for node, pid in sorted(pids.items(), key=lambda kv: kv[1])
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def span_tree(spans: Union[Tracer, Iterable[Any]],
              trace_id: Optional[str] = None) -> str:
    """ASCII rendering of span parent/child trees, one line per span."""
    records = _span_dicts(spans)
    if trace_id is not None:
        records = [r for r in records if r["trace_id"] == trace_id]
    if not records:
        return "(no spans)"
    by_parent: Dict[Optional[str], List[Dict[str, Any]]] = {}
    known = {r["span_id"] for r in records}
    for record in records:
        parent = record["parent_id"] if record["parent_id"] in known else None
        by_parent.setdefault(parent, []).append(record)
    for children in by_parent.values():
        children.sort(key=lambda r: (r["start"], r["span_id"]))
    lines: List[str] = []

    def walk(record: Dict[str, Any], depth: int) -> None:
        end = record["end"]
        duration = "open" if end is None else f"{end - record['start']:g}"
        node = f" @{record['node']}" if record["node"] else ""
        lines.append(f"{'  ' * depth}{record['name']}{node} "
                     f"[{record['kind']}] t={record['start']:g} dur={duration}")
        for child in by_parent.get(record["span_id"], []):
            walk(child, depth + 1)

    for root in by_parent.get(None, []):
        walk(root, 0)
    return "\n".join(lines)


def span_timeline(spans: Union[Tracer, Iterable[Any]], width: int = 60,
                  trace_id: Optional[str] = None) -> str:
    """Paper-style ASCII timeline of finished spans on a shared time axis."""
    records = [r for r in _span_dicts(spans) if r["end"] is not None]
    if trace_id is not None:
        records = [r for r in records if r["trace_id"] == trace_id]
    if not records:
        return "(empty trace)"
    first = min(r["start"] for r in records)
    last = max(r["end"] for r in records)
    scale = max(last - first, 1e-9) / max(1, width - 1)
    depths: Dict[str, int] = {}
    by_id = {r["span_id"]: r for r in records}

    def depth_of(record: Dict[str, Any]) -> int:
        cached = depths.get(record["span_id"])
        if cached is not None:
            return cached
        parent = by_id.get(record["parent_id"])
        depth = 0 if parent is None else depth_of(parent) + 1
        depths[record["span_id"]] = depth
        return depth

    rows = []
    for record in sorted(records, key=lambda r: (r["start"], r["span_id"])):
        label = "  " * depth_of(record) + record["name"]
        if record["node"]:
            label += f" @{record['node']}"
        rows.append((label, record["start"], record["end"]))
    label_width = max(len(label) for label, _, _ in rows)
    lines = []
    for label, start, end in rows:
        start_col = int((start - first) / scale)
        end_col = max(int((end - first) / scale), start_col + 1)
        bar = " " * start_col + "├" + "─" * max(0, end_col - start_col - 1) + "┤"
        lines.append(f"{label:<{label_width}}  {bar}")
    lines.append(" " * (label_width + 2) + f"{first:g}"
                 + "." * int((last - first) / scale) + f" t={last:g}")
    return "\n".join(lines)


def text_report(dump: Union[MetricsRegistry, Dict[str, Any]]) -> str:
    """Aligned plain-text rendering of a metrics dump."""
    if isinstance(dump, MetricsRegistry):
        dump = dump.dump()
    lines: List[str] = []

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:g}"
        return str(value)

    for section in ("counters", "gauges", "histograms"):
        rows = dump.get(section, [])
        if not rows:
            continue
        lines.append(f"== {section} ==")
        for row in rows:
            labels = ",".join(f"{k}={v}" for k, v in sorted(row["labels"].items()))
            head = f"{row['name']}{{{labels}}}" if labels else row["name"]
            if section == "histograms":
                body = "  ".join(
                    f"{key}={fmt(row[key])}"
                    for key in ("count", "sum", "min", "max", "mean", "p50", "p95")
                    if row.get(key) is not None
                )
            else:
                body = fmt(row["value"])
            lines.append(f"  {head:<56} {body}")
        lines.append("")
    return "\n".join(lines).rstrip() or "(no metrics)"


def save_trace(path: str, tracer: Optional[Tracer] = None,
               metrics: Optional[Union[MetricsRegistry, Dict[str, Any]]] = None,
               extra: Optional[Dict[str, Any]] = None,
               events: Optional[List[Dict[str, Any]]] = None) -> Dict[str, Any]:
    """Persist spans/metrics/bus-events as one JSON document; returns it."""
    document: Dict[str, Any] = {"format": "repro-obs/1"}
    if tracer is not None:
        document["spans"] = tracer.to_dicts()
    if metrics is not None:
        document["metrics"] = (
            metrics.dump() if isinstance(metrics, MetricsRegistry) else metrics
        )
    if events is not None:
        document["events"] = events
    if extra:
        document["extra"] = extra
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
    return document


def load_trace(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
