"""Span-based distributed tracing.

A :class:`Span` is one timed unit of work (an action's lifetime, one RPC,
one server-side handler execution).  Spans form trees via ``parent_id`` and
share a ``trace_id`` — one trace per top-level action, stitched across
nodes by piggybacking a :class:`SpanContext` on cluster message payloads
(see :meth:`Tracer.inject` / :meth:`Tracer.extract`; the transport layer
carries it under the ``"_trace"`` payload key).

Ids are allocated from deterministic counters, never randomness, so traces
of a seeded cluster simulation are reproducible bit-for-bit.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

#: payload key the transport uses to carry a span context across the wire.
TRACE_KEY = "_trace"


@dataclass(frozen=True)
class SpanContext:
    """The portable identity of a span: enough to parent a remote child."""

    trace_id: str
    span_id: str

    def to_wire(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @staticmethod
    def from_wire(raw: Optional[Dict[str, Any]]) -> Optional["SpanContext"]:
        if not raw:
            return None
        return SpanContext(str(raw["trace_id"]), str(raw["span_id"]))


class Span:
    """One timed unit of work inside a trace."""

    __slots__ = ("tracer", "trace_id", "span_id", "parent_id", "name",
                 "kind", "node", "start", "end", "attrs", "events")

    def __init__(self, tracer: "Tracer", trace_id: str, span_id: str,
                 parent_id: Optional[str], name: str, kind: str,
                 node: str, start: float):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind              # "action" | "client" | "server" | "internal"
        self.node = node
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = {}
        self.events: List[Tuple[float, str, Dict[str, Any]]] = []

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs: Any) -> None:
        """A point-in-time annotation inside the span (e.g. a retransmit)."""
        self.events.append((self.tracer.now(), name, attrs))

    def finish(self, at: Optional[float] = None) -> "Span":
        """Idempotently close the span."""
        if self.end is None:
            self.end = at if at is not None else self.tracer.now()
            self.tracer._note_finished()
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
            "events": [
                {"tick": tick, "name": name, "attrs": dict(attrs)}
                for tick, name, attrs in self.events
            ],
        }

    def __repr__(self) -> str:
        state = "open" if self.end is None else f"{self.duration:g}"
        return f"<Span {self.name} [{self.span_id}] {state}>"


class Tracer:
    """Creates spans and keeps every span of the observed system.

    ``tick_source`` provides timestamps (``lambda: kernel.now`` for the
    cluster; a logical counter otherwise).  The tracer is shared across
    simulated nodes — each span records which node it ran on — which is
    what a collector would see after export in a real deployment.

    ``max_finished_spans`` bounds retention for long soaks: once the number
    of *finished* spans exceeds the cap by half a cap (amortised batches, so
    finish stays O(1)), the oldest finished spans are evicted ring-style and
    counted in ``dropped`` / reported via ``on_drop``.  Runs that stay under
    the cap keep the span list — and therefore every dump — byte-identical
    to an unbounded tracer; eviction order is deterministic (insertion
    order), never randomised.
    """

    def __init__(self, tick_source: Optional[Callable[[], float]] = None,
                 max_finished_spans: Optional[int] = None,
                 on_drop: Optional[Callable[[int], None]] = None):
        if max_finished_spans is not None and max_finished_spans < 1:
            raise ValueError(
                f"max_finished_spans must be >= 1, got {max_finished_spans}")
        self._tick_source = tick_source
        self._logical = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._mutex = threading.Lock()
        self.spans: List[Span] = []
        self.max_finished_spans = max_finished_spans
        self.on_drop = on_drop
        self.dropped = 0
        self._finished_count = 0

    def now(self) -> float:
        if self._tick_source is not None:
            return self._tick_source()
        return float(next(self._logical))

    # -- span lifecycle ------------------------------------------------------

    def start_span(self, name: str, parent: Optional[Any] = None,
                   kind: str = "internal", node: str = "",
                   **attrs: Any) -> Span:
        """Open a span; ``parent`` is a Span, a SpanContext, or None.

        Without a parent the span roots a fresh trace.
        """
        parent_ctx: Optional[SpanContext] = None
        if isinstance(parent, Span):
            parent_ctx = parent.context
        elif isinstance(parent, SpanContext):
            parent_ctx = parent
        with self._mutex:
            if parent_ctx is not None:
                trace_id = parent_ctx.trace_id
                parent_id: Optional[str] = parent_ctx.span_id
            else:
                trace_id = f"t{next(self._trace_ids)}"
                parent_id = None
            span = Span(self, trace_id, f"s{next(self._span_ids)}",
                        parent_id, name, kind, node, self.now())
            self.spans.append(span)
        if attrs:
            span.set(**attrs)
        return span

    # -- bounded retention ---------------------------------------------------

    def _note_finished(self) -> None:
        """Called by :meth:`Span.finish`; evicts in amortised batches."""
        drop_count = 0
        with self._mutex:
            self._finished_count += 1
            cap = self.max_finished_spans
            if cap is not None:
                excess = self._finished_count - cap
                # batch evictions so each finish is amortised O(1), at the
                # cost of briefly retaining up to 1.5x the cap.
                if excess >= max(1, cap // 2):
                    drop_count = self._evict_locked(excess)
        if drop_count and self.on_drop is not None:
            self.on_drop(drop_count)

    def _evict_locked(self, count: int) -> int:
        """Drop the ``count`` oldest finished spans.  Caller holds the lock."""
        kept: List[Span] = []
        dropped = 0
        for span in self.spans:
            if dropped < count and span.finished:
                dropped += 1
                continue
            kept.append(span)
        self.spans = kept
        self._finished_count -= dropped
        self.dropped += dropped
        return dropped

    def drain_finished(self) -> List[Span]:
        """Remove and return every finished span (open spans stay).

        Segment rotation uses this to stream spans out while a soak is
        still running, keeping in-memory retention proportional to one
        segment rather than the whole horizon.
        """
        with self._mutex:
            finished = [span for span in self.spans if span.finished]
            self.spans = [span for span in self.spans if not span.finished]
            self._finished_count = 0
            return finished

    # -- context propagation -------------------------------------------------

    @staticmethod
    def inject(span: Optional[Span], payload: Dict[str, Any]) -> Dict[str, Any]:
        """Attach ``span``'s context to an outgoing message payload."""
        if span is not None:
            payload[TRACE_KEY] = span.context.to_wire()
        return payload

    @staticmethod
    def extract(payload: Dict[str, Any]) -> Optional[SpanContext]:
        """Recover the sender's span context from a message payload."""
        return SpanContext.from_wire(payload.get(TRACE_KEY))

    # -- queries -----------------------------------------------------------------

    def finished_spans(self) -> List[Span]:
        with self._mutex:
            return [span for span in self.spans if span.finished]

    def trace(self, trace_id: str) -> List[Span]:
        with self._mutex:
            return [span for span in self.spans if span.trace_id == trace_id]

    def children_of(self, span: Span) -> List[Span]:
        with self._mutex:
            return [s for s in self.spans
                    if s.trace_id == span.trace_id
                    and s.parent_id == span.span_id]

    def snapshot(self) -> List[Span]:
        with self._mutex:
            return list(self.spans)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.snapshot()]

    def clear(self) -> None:
        with self._mutex:
            self.spans.clear()
            self._finished_count = 0
