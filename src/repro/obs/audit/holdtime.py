"""Per-(object, colour) lock hold times, measured grant to release.

Replaces the old server-side approximation (mirror lifetime) with the real
thing: a bus subscriber that clocks every ``lock.granted`` and observes the
elapsed ticks into a ``lock_hold_time`` histogram labelled by node, colour
and object when the matching ``lock.released`` arrives.  Commit-time
inheritance moves the clock to the inheriting owner without restarting it
(the object stays pinned across the hand-off, which is exactly the hold
the paper's glued/serializing schemes pay for).  A ``node.restart`` drops
the node's open clocks — its volatile lock tables died with it.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

from repro.obs.bus import ObsEvent


class LockHoldTracker:
    """Bus subscriber turning grant/release pairs into hold-time samples."""

    def __init__(self, metrics):
        self.metrics = metrics
        self._mutex = threading.Lock()
        #: (node, owner, object, colour) -> grant tick (earliest wins)
        self._since: Dict[Tuple[str, str, str, str], float] = {}

    def consume(self, event: ObsEvent) -> None:
        kind = event.kind
        if kind == "lock.granted":
            self._on_granted(event)
        elif kind == "lock.released":
            self._on_released(event)
        elif kind == "lock.inherited":
            self._on_inherited(event)
        elif kind == "node.restart":
            self._on_restart(event)

    def _key(self, event: ObsEvent, owner_label: str = "owner"):
        return (str(event.label("node", "")),
                str(event.label(owner_label, "")),
                str(event.label("object", "")),
                str(event.label("colour", "")))

    def _on_granted(self, event: ObsEvent) -> None:
        with self._mutex:
            self._since.setdefault(self._key(event), event.tick)

    def _on_released(self, event: ObsEvent) -> None:
        with self._mutex:
            started = self._since.pop(self._key(event), None)
        if started is None:
            return
        node, _owner, obj, colour = self._key(event)
        self.metrics.histogram("lock_hold_time", node=node, colour=colour,
                               object=obj).observe(event.tick - started)

    def _on_inherited(self, event: ObsEvent) -> None:
        with self._mutex:
            started = self._since.pop(self._key(event), None)
            if started is None:
                started = event.tick
            dest_key = self._key(event, owner_label="to")
            existing = self._since.get(dest_key)
            if existing is None or started < existing:
                self._since[dest_key] = started

    def _on_restart(self, event: ObsEvent) -> None:
        node = str(event.label("node", ""))
        with self._mutex:
            for key in [k for k in self._since if k[0] == node]:
                del self._since[key]
