"""Online invariant auditing over the observability event bus.

Every :class:`~repro.obs.hub.Observability` hub owns an
:class:`InvariantAuditor` (and a :class:`LockHoldTracker`) subscribed to
its bus, so any instrumented run — a test, a chaos schedule, a benchmark —
is continuously checked against the paper's per-colour invariants.  Use
``hub.auditor.report()`` for the findings, ``python -m repro.obs.audit``
to replay a saved dump, and
:func:`repro.obs.audit.testing.install_online_audit` to turn findings
into hard test failures.
"""

from repro.obs.audit.auditor import InvariantAuditor
from repro.obs.audit.findings import ALL_KINDS, Finding
from repro.obs.audit.graph import SerializationGraph
from repro.obs.audit.holdtime import LockHoldTracker

__all__ = [
    "ALL_KINDS",
    "Finding",
    "InvariantAuditor",
    "LockHoldTracker",
    "SerializationGraph",
]
