"""Test-suite integration: make auditor findings hard failures.

:func:`install_online_audit` is a context manager (used by an autouse
fixture in ``tests/conftest.py``) that tracks every Observability hub
created inside it and auto-attaches a hub to every LocalRuntime that
would otherwise run dark.  On exit it collects the findings of every
hub's auditor; any finding raises ``AssertionError`` — and when
``REPRO_OBS_DUMP`` names a directory, the offending hubs' full dumps
(spans + metrics + event log) are saved there first so the failure can
be replayed with ``python -m repro.obs.audit``, each with a sibling
``*.why.txt`` abort-attribution report (the ``python -m repro.obs.why
--aborts`` view) so the artifact answers *why* without a local replay.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import List


@contextmanager
def install_online_audit(dump_dir=None):
    from repro.obs.hub import Observability
    from repro.runtime.runtime import LocalRuntime

    hubs: List[Observability] = []
    original_hub_init = Observability.__init__
    original_runtime_init = LocalRuntime.__init__

    def recording_hub_init(self, *args, **kwargs):
        original_hub_init(self, *args, **kwargs)
        hubs.append(self)

    def audited_runtime_init(self, *args, **kwargs):
        original_runtime_init(self, *args, **kwargs)
        if self.obs is None:
            self.attach_observability(Observability())

    Observability.__init__ = recording_hub_init
    LocalRuntime.__init__ = audited_runtime_init
    try:
        yield hubs
    finally:
        Observability.__init__ = original_hub_init
        LocalRuntime.__init__ = original_runtime_init
        _assert_clean(hubs, dump_dir)


def _assert_clean(hubs, dump_dir=None) -> None:
    guilty = []
    for hub in hubs:
        found = hub.auditor.report()
        if found:
            guilty.append((hub, found))
    if not guilty:
        return
    target = dump_dir or os.environ.get("REPRO_OBS_DUMP")
    saved = []
    if target:
        os.makedirs(target, exist_ok=True)
        for index, (hub, _found) in enumerate(guilty):
            path = os.path.join(target, f"audit-violation-{index}.trace.json")
            try:
                hub.save(path)
            except OSError:
                continue
            saved.append(path)
            why = _why_report(hub)
            if why:
                why_path = os.path.join(target,
                                        f"audit-violation-{index}.why.txt")
                try:
                    with open(why_path, "w", encoding="utf-8") as handle:
                        handle.write(why + "\n")
                except OSError:
                    continue
                saved.append(why_path)
    lines = [
        f"online invariant auditor: "
        f"{sum(len(found) for _, found in guilty)} finding(s) "
        f"across {len(guilty)} hub(s)"
    ]
    for _hub, found in guilty:
        lines.extend(f"  {finding}" for finding in found[:20])
        if len(found) > 20:
            lines.append(f"  ... and {len(found) - 20} more")
    if saved:
        lines.append("dumps: " + ", ".join(saved))
    raise AssertionError("\n".join(lines))


def _why_report(hub) -> str:
    """The ``why --aborts`` view of a hub's retained events (best effort)."""
    try:
        from repro.obs.bus import ObsEvent
        from repro.obs.postmortem.engine import PostmortemEngine
        from repro.obs.postmortem.render import abort_report

        engine = PostmortemEngine.replay(
            ObsEvent(tick=float(entry.get("tick", 0.0)),
                     kind=str(entry.get("kind", "")),
                     labels=dict(entry.get("labels") or {}))
            for entry in hub.auditor.event_dicts())
        lines, _gaps = abort_report(list(engine.records),
                                    metrics_doc=hub.metrics.dump())
        return "\n".join(lines)
    except Exception:  # diagnosis must never mask the real failure
        return ""
